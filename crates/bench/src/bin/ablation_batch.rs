//! Ablation: batch-pipelined inference recovers the CSs that
//! partition-capped layers leave idle (Sec. III-A's "finer granularity"
//! applied across the batch dimension).
//!
//! Engine-ported: each batch size simulates as a labelled `arch-sim`
//! stage, `--json <path>` archives a deterministic
//! [`m3d_core::engine::ExperimentReport`], and `--trace-json <path>`
//! writes the per-stage span trace. `--quick` sweeps batches 1–8 on
//! 4-CS chips instead of 1–32 on the paper's 8.

use m3d_arch::{batch_speedup, models, simulate_batch, ChipConfig};
use m3d_bench::{header, rule, x, RunArgs};
use m3d_core::engine::{CacheStats, Pipeline, Stage};
use m3d_core::{ExperimentRecord, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = RunArgs::parse();
    let cs_count = if args.quick { 4 } else { 8 };
    let batches: &[u32] = if args.quick {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    header(
        "Ablation — batch pipelining across the 8 M3D CSs",
        "extension of Sec. III-A (per-CS granularity) to batched edge inference",
    );
    let base = ChipConfig::baseline_2d();
    let m3d = ChipConfig::m3d(cs_count);
    let resnet = models::resnet18();
    let mut pipe = Pipeline::new();
    println!(
        "{:>7} {:>18} {:>16} {:>14}",
        "batch", "cycles/image (M)", "energy/image(mJ)", "speedup vs 2D"
    );
    let mut rows = Vec::new();
    for &b in batches {
        let (perf, speedup) = pipe.stage(Stage::ArchSim, &format!("batch{b}"), |_| {
            (
                simulate_batch(&m3d, &resnet, b),
                batch_speedup(&base, &m3d, &resnet, b),
            )
        });
        println!(
            "{:>7} {:>18.3} {:>16.2} {:>14}",
            b,
            perf.cycles_per_image / 1e6,
            perf.energy_per_image_pj() / 1e9,
            x(speedup)
        );
        rows.push((
            format!("batch{b}"),
            vec![
                ("cycles_per_image_m".to_owned(), perf.cycles_per_image / 1e6),
                (
                    "energy_per_image_mj".to_owned(),
                    perf.energy_per_image_pj() / 1e9,
                ),
                ("speedup".to_owned(), speedup),
            ],
        ));
    }
    rule(72);
    println!("batch 1 reproduces Table I (5.7x); larger batches fill the CSs that");
    println!("K-tile-capped layers leave idle, approaching the 8x roofline.");

    let record = pipe.stage(Stage::Report, "", |_| {
        let mut rec = ExperimentRecord::new(
            "ablation_batch",
            "batch-pipelining ablation across the M3D CSs",
        );
        if let Some((_, values)) = rows.first() {
            if let Some((_, v)) = values.iter().find(|(n, _)| n == "speedup") {
                rec = rec.metric(Metric::new("batch1_speedup", *v));
            }
        }
        if let Some((_, values)) = rows.last() {
            if let Some((_, v)) = values.iter().find(|(n, _)| n == "speedup") {
                rec = rec.metric(Metric::new("max_batch_speedup", *v));
            }
        }
        for (label, values) in rows {
            rec = rec.row(label, values);
        }
        rec
    });
    args.finalize(record, &pipe, CacheStats::default())?;
    Ok(())
}
