//! Regenerates Fig. 8: M3D EDP benefit as a function of memory bandwidth
//! and parallel-CS scaling, for compute-bound and memory-bound
//! workloads, including the two Observation-5 worked examples.

use m3d_bench::{header, rule, x};
use m3d_core::explore::{bandwidth_cs_grid, intensity_workload};
use m3d_core::framework::{workload_edp_benefit, ChipParams};

const FACTORS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

fn print_grid(label: &str, ops_per_bit: f64) {
    let base = ChipParams::baseline_2d();
    let w = intensity_workload(ops_per_bit);
    let grid = bandwidth_cs_grid(&base, &w, &FACTORS, &FACTORS);
    println!("\n{label} ({ops_per_bit} ops per memory bit): EDP benefit");
    print!("{:>10}", "bw \\ cs");
    for cf in FACTORS {
        print!(" {cf:>7.0}x");
    }
    println!();
    for bf in FACTORS {
        print!("{bf:>9.0}x");
        for p in grid.iter().filter(|p| p.bw_factor == bf) {
            print!(" {:>8}", x(p.edp_benefit));
        }
        println!();
    }
}

fn main() {
    header(
        "Fig. 8 — EDP benefit vs bandwidth and parallel-CS scaling",
        "Srimani et al., DATE 2023, Fig. 8 + Observation 5",
    );
    print_grid("compute-bound", 16.0);
    print_grid("memory-bound", 1.0 / 16.0);

    rule(72);
    println!("Observation 5 worked examples:");
    // (a) compute-bound: 2× CSs, unchanged bandwidth → ~2.1×.
    let base = ChipParams::baseline_2d();
    let w = intensity_workload(16.0);
    let two_cs = ChipParams { n_cs: 2, ..base };
    let a = workload_edp_benefit(&base, &two_cs, std::slice::from_ref(&w));
    println!("  16 ops/bit, 2x CSs @ same bandwidth → {} (paper: 2.1x)", x(a));
    // (b) memory-bound: from the 8-CS M3D point, halve CSs at the same
    // total port width (2× per-CS bandwidth) → ~2.1×.
    let m3d8 = ChipParams::m3d(8);
    let wm = intensity_workload(1.0 / 16.0);
    let fewer_faster = ChipParams { n_cs: 4, ..m3d8 };
    let b = workload_edp_benefit(&m3d8, &fewer_faster, std::slice::from_ref(&wm));
    println!("  1/16 ops/bit, 0.5x CSs @ 2x per-CS bandwidth → {} (paper: 2.1x)", x(b));
}
