//! Regenerates Fig. 8: EDP benefit vs memory bandwidth and parallel-CS
//! scaling (+ Observation 5 worked examples).
//!
//! Thin driver over the registered `fig8_bw_cs` case: run with
//! `--quick`, `--set key=value`, `--json`, `--trace-json`,
//! `--metrics-json` and `--metrics-text` (see
//! [`m3d_bench::cli`]).

use m3d_bench::cli::case_main;
use m3d_bench::RunArgs;

fn main() {
    case_main("fig8_bw_cs", RunArgs::parse());
}
