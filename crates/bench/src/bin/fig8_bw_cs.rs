//! Regenerates Fig. 8: M3D EDP benefit as a function of memory bandwidth
//! and parallel-CS scaling, for compute-bound and memory-bound
//! workloads, including the two Observation-5 worked examples.
//!
//! The grids run through the engine's parallel sweep executor
//! (`M3D_JOBS`); pass `--json <path>` to archive the result as an
//! [`m3d_core::engine::ExperimentReport`].

use m3d_bench::{header, rule, x, RunArgs};
use m3d_core::engine::{CacheStats, Pipeline, Stage};
use m3d_core::explore::{bandwidth_cs_grid, intensity_workload, GridPoint};
use m3d_core::framework::{workload_edp_benefit, ChipParams};
use m3d_core::{ExperimentRecord, Metric};

const FACTORS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

fn print_grid(label: &str, ops_per_bit: f64, grid: &[GridPoint]) {
    println!("\n{label} ({ops_per_bit} ops per memory bit): EDP benefit");
    print!("{:>10}", "bw \\ cs");
    for cf in FACTORS {
        print!(" {cf:>7.0}x");
    }
    println!();
    for bf in FACTORS {
        print!("{bf:>9.0}x");
        for p in grid.iter().filter(|p| p.bw_factor == bf) {
            print!(" {:>8}", x(p.edp_benefit));
        }
        println!();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = RunArgs::parse();
    header(
        "Fig. 8 — EDP benefit vs bandwidth and parallel-CS scaling",
        "Srimani et al., DATE 2023, Fig. 8 + Observation 5",
    );
    let base = ChipParams::baseline_2d();
    let mut pipe = Pipeline::new();
    let compute = pipe.stage(Stage::ArchSim, "compute-bound", |_| {
        bandwidth_cs_grid(&base, &intensity_workload(16.0), &FACTORS, &FACTORS)
    });
    let memory = pipe.stage(Stage::ArchSim, "memory-bound", |_| {
        bandwidth_cs_grid(&base, &intensity_workload(1.0 / 16.0), &FACTORS, &FACTORS)
    });
    print_grid("compute-bound", 16.0, &compute);
    print_grid("memory-bound", 1.0 / 16.0, &memory);

    rule(72);
    println!("Observation 5 worked examples:");
    // (a) compute-bound: 2× CSs, unchanged bandwidth → ~2.1×.
    let w = intensity_workload(16.0);
    let two_cs = ChipParams { n_cs: 2, ..base };
    let a = workload_edp_benefit(&base, &two_cs, std::slice::from_ref(&w));
    println!(
        "  16 ops/bit, 2x CSs @ same bandwidth → {} (paper: 2.1x)",
        x(a)
    );
    // (b) memory-bound: from the 8-CS M3D point, halve CSs at the same
    // total port width (2× per-CS bandwidth) → ~2.1×.
    let m3d8 = ChipParams::m3d(8);
    let wm = intensity_workload(1.0 / 16.0);
    let fewer_faster = ChipParams { n_cs: 4, ..m3d8 };
    let b = workload_edp_benefit(&m3d8, &fewer_faster, std::slice::from_ref(&wm));
    println!(
        "  1/16 ops/bit, 0.5x CSs @ 2x per-CS bandwidth → {} (paper: 2.1x)",
        x(b)
    );

    let record = pipe.stage(Stage::Report, "", |_| {
        let mut rec = ExperimentRecord::new("fig8", "Fig. 8 bandwidth × CS grid + Observation 5")
            .metric(Metric::with_paper("obs5_compute_bound_2x_cs", a, 2.1))
            .metric(Metric::with_paper("obs5_memory_bound_2x_bw", b, 2.1));
        for (label, grid) in [("compute-bound", &compute), ("memory-bound", &memory)] {
            for p in grid.iter() {
                rec = rec.row(
                    format!("{label} bw={:.0}x cs={:.0}x", p.bw_factor, p.cs_factor),
                    vec![("edp_benefit".into(), p.edp_benefit)],
                );
            }
        }
        rec
    });
    args.finalize(record, &pipe, CacheStats::default())?;
    Ok(())
}
