//! Observation 10 as a registered case: the eq. (17) analytic
//! temperature rise of stacked M3D tier pairs vs the voxelized RC-grid
//! solve, with tier caps at both fidelities and a transient excursion.
//!
//! Heat sources come from the physical design: the M3D sign-off flow's
//! placed per-block power-density grid is resampled onto each thermal
//! grid and rescaled to the per-pair budget under sweep, so hotspots
//! land where the placer put the logic.

use m3d_arch::trace::Phase;
use m3d_core::cases::BaselineAreas;
use m3d_core::engine::{par_map, FetchOpts, Stage};
use m3d_core::thermal::{ThermalModel, TierThermalModel};
use m3d_pd::FlowConfig;
use m3d_tech::LayerStack;
use m3d_thermal::{
    step_phases, GridConfig, LumpedGridModel, PhaseInterval, PowerMap, SolverConfig,
    TransientConfig,
};
use serde::Value;

use crate::cases::case_cs;
use crate::registry::{obj, reject_unknown, Case, CaseCtx, CaseError, CaseOutcome};

/// Per-(power, tier-count) comparison point.
struct RisePoint {
    power_w: f64,
    tiers: u32,
    rise_grid_k: f64,
    rise_eq17_k: f64,
}

/// `obs10_thermal` — Observation 10: thermal limits on interleaved M3D
/// tiers under a ≈ 60 K budget, eq. 17 vs the RC grid.
pub struct Obs10ThermalCase;

impl Case for Obs10ThermalCase {
    fn name(&self) -> &'static str {
        "obs10_thermal"
    }

    fn summary(&self) -> &'static str {
        "Obs. 10 thermal tier cap: eq. 17 vs voxelized RC grid"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let powers: Vec<f64> = if quick {
            vec![5.0, 20.0]
        } else {
            vec![2.0, 5.0, 10.0, 20.0]
        };
        let max_pairs: u32 = if quick { 4 } else { 8 };
        let n_lat: usize = if quick { 4 } else { 8 };
        let budget_k = 60.0;
        let die_mm2 = BaselineAreas::case_study_64mb().total_mm2();
        let solver = SolverConfig::default();
        let before = (ctx.flows.stats(), ctx.thermals.stats());

        let stack = ctx.stage(Stage::Tech, "", |_| LayerStack::m3d_130nm());
        let grid_for = |tiers: u32| {
            GridConfig::from_stack(&stack, die_mm2, n_lat, n_lat, tiers, 1.0, budget_k)
                .map_err(CaseError::internal)
        };

        // The sign-off flow's placed per-block power map: its lateral
        // distribution shapes every deposit below (rescaled per sweep
        // point), replacing a uniform sheet.
        let density = ctx.stage(Stage::PdFlow, "m3d", |sctx| {
            let mut cfg = FlowConfig::m3d(if quick { 2 } else { 8 }).with_cs(case_cs(quick));
            if quick {
                cfg = cfg.quick();
            }
            let fetch = ctx
                .flows
                .fetch(&cfg, FetchOpts::artifacts())
                .map_err(CaseError::internal)?;
            if fetch.reused() {
                sctx.mark_cache_hit();
            } else if let Some(sub) = ctx.flows.sub_span(&cfg) {
                sctx.child_span((*sub).clone());
            }
            let res = fetch.artifacts.expect("artifact-level fetch");
            Ok::<_, CaseError>(res.1.power.density_grid.clone())
        })?;
        // Placed deposit at the sweep's per-pair budget: the flow's
        // lateral hotspot pattern, rescaled so the stack dissipates `p`
        // W per pair.
        let power_for = |g: &GridConfig, p: f64, tiers: u32| {
            PowerMap::from_density_grid(g, &density)
                .map(|placed| {
                    let total = placed.total_w();
                    placed.scaled(p * f64::from(tiers) / total)
                })
                .map_err(CaseError::internal)
        };

        // The power sweep: independent per-pair budgets fan across
        // workers; the cache key includes the deposited power, so points
        // never alias.
        let rises: Vec<Vec<RisePoint>> = ctx.stage(Stage::Thermal, "steady", |_| {
            par_map(&powers, |&p| {
                (1..=max_pairs)
                    .map(|tiers| {
                        let g = grid_for(tiers)?;
                        let sol = ctx
                            .thermals
                            .solve(&g, &power_for(&g, p, tiers)?, &solver)
                            .map_err(CaseError::internal)?;
                        if !sol.converged {
                            return Err(CaseError::internal("SOR solve did not converge"));
                        }
                        Ok(RisePoint {
                            power_w: p,
                            tiers,
                            rise_grid_k: sol.peak_rise_k,
                            rise_eq17_k: ThermalModel::conventional(p).temperature_rise(tiers),
                        })
                    })
                    .collect::<Result<Vec<_>, CaseError>>()
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
        })?;

        // Tier caps at both fidelities, read off the sweep's own rises.
        let caps: Vec<(f64, u32, Option<u32>)> = powers
            .iter()
            .zip(&rises)
            .map(|(&p, per_power)| {
                let grid_cap = per_power
                    .iter()
                    .take_while(|pt| pt.rise_grid_k <= budget_k)
                    .last()
                    .map_or(0, |pt| pt.tiers);
                (p, grid_cap, ThermalModel::conventional(p).max_tiers().ok())
            })
            .collect();

        // Limiting-case validation: the single-lateral-cell chain must
        // reproduce eq. 17 within 2 %.
        let max_rel_err = ctx.stage(Stage::Thermal, "lumped-agreement", |_| {
            powers
                .iter()
                .flat_map(|&p| {
                    let lumped = LumpedGridModel::new(ThermalModel::conventional(p));
                    (1..=max_pairs).map(move |tiers| {
                        let grid_rise = lumped.temperature_rise(tiers);
                        let analytic = ThermalModel::conventional(p).temperature_rise(tiers);
                        (grid_rise - analytic).abs() / analytic
                    })
                })
                .fold(0.0f64, f64::max)
        });
        if max_rel_err >= 0.02 {
            return Err(CaseError::internal(format!(
                "lumped 1x1 grid deviates {max_rel_err:.4} from eq. 17 (acceptance: < 2 %)"
            )));
        }

        // A coarse transient: weight-load / stream / fill-drain / idle
        // at 5 W per pair on a 2-pair stack.
        let transient = ctx.stage(Stage::Thermal, "transient", |_| {
            let g = GridConfig::from_stack(&stack, die_mm2, 4, 4, 2, 1.0, budget_k)
                .map_err(CaseError::internal)?;
            let base = power_for(&g, 5.0, 2)?;
            let phases: Vec<PhaseInterval> = [
                (Phase::WeightLoad, 2.0e-4),
                (Phase::Stream, 6.0e-4),
                (Phase::FillDrain, 1.0e-4),
                (Phase::Idle, 4.0e-4),
            ]
            .iter()
            .map(|&(phase, duration_s)| PhaseInterval { phase, duration_s })
            .collect();
            step_phases(&g, &base, &phases, &TransientConfig::default())
                .map_err(CaseError::internal)
        })?;

        let after = (ctx.flows.stats(), ctx.thermals.stats());
        let all_cached = after.0.misses == before.0.misses && after.1.misses == before.1.misses;
        let result = obj(vec![
            ("budget_k", Value::F64(budget_k)),
            ("die_mm2", Value::F64(die_mm2)),
            ("lumped_max_rel_err", Value::F64(max_rel_err)),
            ("transient_max_peak_k", Value::F64(transient.max_peak_k)),
            (
                "caps",
                Value::Array(
                    caps.iter()
                        .map(|&(p, grid_cap, analytic_cap)| {
                            obj(vec![
                                ("label", Value::Str(format!("{p:.0}w"))),
                                ("power_w", Value::F64(p)),
                                ("cap_grid", Value::U64(u64::from(grid_cap))),
                                ("cap_eq17", Value::U64(analytic_cap.map_or(0, u64::from))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rises",
                Value::Array(
                    rises
                        .iter()
                        .flatten()
                        .map(|pt| {
                            obj(vec![
                                (
                                    "label",
                                    Value::Str(format!("p={}w tiers={}", pt.power_w, pt.tiers)),
                                ),
                                ("power_w", Value::F64(pt.power_w)),
                                ("tiers", Value::U64(u64::from(pt.tiers))),
                                ("rise_grid_k", Value::F64(pt.rise_grid_k)),
                                ("rise_eq17_k", Value::F64(pt.rise_eq17_k)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        Ok(CaseOutcome {
            result,
            cache_hit: all_cached,
            coalesced: false,
        })
    }
}
