//! The `ingest` case: an externally-authored netlist — EDIF 2.0.0 or
//! structural Verilog — flattened by `m3d-ingest` and implemented
//! through the full RTL-to-GDS flow.
//!
//! The flow-cache key is derived from the [`StableHash`] of the
//! *flattened* netlist (via `FlowConfig`'s `NetlistSource::External`),
//! so the same design uploaded twice — whatever its id, whitespace or
//! upload path — coalesces in flight and replays from
//! `FlowCache`/`M3D_CACHE_DIR` like any generated configuration.
//!
//! Validation parses and elaborates the source in full, so the service
//! answers malformed designs with a `bad-request` carrying `line N,
//! column M` before the request ever occupies a queue slot or worker.

use std::sync::Arc;

use m3d_core::engine::Stage;
use m3d_core::obs::{Recorder, SpanNode};
use m3d_ingest::{ingest, Format, IngestReport};
use m3d_pd::FlowConfig;
use m3d_tech::StableHash;
use serde::Value;

use crate::cases::{case_cs, flows::staged_report};
use crate::registry::{
    field, obj, reject_unknown, Case, CaseCtx, CaseError, CaseOutcome, ParamField,
};

/// Largest accepted source payload in bytes: bounds the parse work a
/// single (pre-queue) validation can burn and keeps NDJSON request
/// lines reasonable.
pub const MAX_SOURCE_BYTES: usize = 1 << 20;

/// The design ingested when no `source`/`file` parameter is given: the
/// checked-in hierarchical 4-bit adder example.
const DEFAULT_SOURCE: &str = include_str!("../../../../examples/adder4.edif");

/// `ingest` — flatten an uploaded netlist and run it through the flow.
pub struct IngestCase;

/// Typed parameters of [`IngestCase`].
#[derive(Debug, Clone, PartialEq)]
pub struct IngestParams {
    /// The netlist source text (inline, from `file`, or the built-in
    /// example).
    pub source: String,
    /// Format selector (`auto` sniffs: EDIF opens with `(`).
    pub format: Format,
    /// Reduced-effort flow.
    pub quick: bool,
}

impl IngestParams {
    /// Parses and range-checks the wire params, resolving `file` paths
    /// to their contents.
    ///
    /// # Errors
    ///
    /// [`m3d_core::ErrorCode::BadRequest`]-coded on malformed or
    /// oversized values, unreadable files, or unknown format names.
    pub fn parse(quick: bool, params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["source", "file", "format"])?;
        let text = |key: &str| -> Result<Option<String>, CaseError> {
            match field(params, key) {
                None => Ok(None),
                Some(Value::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(CaseError::bad_request(format!(
                    "parameter `{key}` must be a string"
                ))),
            }
        };
        let source = match (text("source")?, text("file")?) {
            (Some(_), Some(_)) => {
                return Err(CaseError::bad_request(
                    "parameters `source` and `file` are mutually exclusive",
                ));
            }
            (Some(inline), None) => inline,
            (None, Some(path)) => std::fs::read_to_string(&path).map_err(|e| {
                CaseError::bad_request(format!("cannot read `file` = `{path}`: {e}"))
            })?,
            (None, None) => DEFAULT_SOURCE.to_owned(),
        };
        if source.len() > MAX_SOURCE_BYTES {
            return Err(CaseError::bad_request(format!(
                "source payload is {} bytes; the limit is {MAX_SOURCE_BYTES}",
                source.len()
            )));
        }
        let format = match text("format")? {
            None => Format::Auto,
            Some(name) => Format::from_name(&name).ok_or_else(|| {
                CaseError::bad_request(format!(
                    "parameter `format` must be one of: auto, edif, verilog (got `{name}`)"
                ))
            })?,
        };
        Ok(Self {
            source,
            format,
            quick,
        })
    }

    /// Parses and flattens the source, timing the front-end into the
    /// process metrics (`ingest.parse_ns` — wall-clock, so it never
    /// appears in the deterministic trace).
    fn flatten(&self) -> Result<IngestReport, CaseError> {
        let start = std::time::Instant::now();
        let out =
            ingest(&self.source, self.format).map_err(|e| CaseError::bad_request(e.to_string()))?;
        // The floorplanner refuses non-lint-clean netlists; surfacing
        // the issues here keeps them bad-requests (caught pre-queue)
        // instead of internal flow failures.
        let issues = out.netlist.lint();
        if !issues.is_empty() {
            return Err(CaseError::bad_request(format!(
                "design fails netlist lint: {}",
                issues.join("; ")
            )));
        }
        let rec = Recorder::global();
        rec.incr("ingest.runs", 1);
        rec.incr(
            "ingest.parse_ns",
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        rec.incr("ingest.cells", out.netlist.cell_count() as u64);
        rec.incr("ingest.nets", out.netlist.nets().len() as u64);
        Ok(out)
    }
}

impl Case for IngestCase {
    fn name(&self) -> &'static str {
        "ingest"
    }

    fn summary(&self) -> &'static str {
        "flatten an uploaded EDIF/Verilog netlist and run the RTL-to-GDS flow"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[
            ParamField {
                name: "source",
                default: "examples/adder4.edif (embedded)",
            },
            ParamField {
                name: "file",
                default: "unset",
            },
            ParamField {
                name: "format",
                default: "auto",
            },
        ]
    }

    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError> {
        // Full parse + elaboration: bounded by MAX_SOURCE_BYTES, and it
        // means a malformed design is refused before enqueue with the
        // exact `line N, column M` diagnostic the run would hit.
        IngestParams::parse(quick, params)?.flatten().map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = IngestParams::parse(quick, params)?;
        let ingested = ctx.stage(Stage::Netlist, "ingest", |sctx| {
            let out = p.flatten()?;
            // Deterministic front-end counters for the trace: shape
            // only, no timings.
            let mut span = SpanNode::new("parse");
            span.counter("ingest.cells", out.netlist.cell_count() as u64);
            span.counter("ingest.nets", out.netlist.nets().len() as u64);
            span.counter("ingest.macros", out.netlist.macros().len() as u64);
            span.counter("ingest.flatten_depth", u64::from(out.flatten_depth));
            sctx.child_span(span);
            Ok::<_, CaseError>(out)
        })?;
        let netlist = Arc::new(ingested.netlist);
        let content_key = netlist.stable_key();
        let mut cfg = FlowConfig::baseline_2d()
            .with_cs(case_cs(quick))
            .with_external_netlist(Arc::clone(&netlist));
        if quick {
            cfg = cfg.quick();
        }
        let (r, hit) = ctx.stage(Stage::PdFlow, "ingest", |sctx| {
            staged_report(ctx.flows, sctx, &cfg)
        })?;
        Ok(CaseOutcome {
            result: obj(vec![
                ("design", Value::Str(r.design.clone())),
                ("format", Value::Str(ingested.format.to_owned())),
                ("ingest_cells", Value::U64(netlist.cell_count() as u64)),
                ("ingest_nets", Value::U64(netlist.nets().len() as u64)),
                ("ingest_macros", Value::U64(netlist.macros().len() as u64)),
                (
                    "flatten_depth",
                    Value::U64(u64::from(ingested.flatten_depth)),
                ),
                ("content_key", Value::Str(format!("{content_key:016x}"))),
                ("die_mm2", Value::F64(r.die_mm2)),
                ("cell_count", Value::U64(r.cell_count as u64)),
                ("wirelength_m", Value::F64(r.wirelength_m)),
                ("critical_path_ns", Value::F64(r.critical_path_ns)),
                ("timing_met", Value::Bool(r.timing_met)),
                ("total_power_mw", Value::F64(r.total_power_mw)),
            ]),
            cache_hit: hit,
            coalesced: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(fields: Vec<(&str, Value)>) -> Value {
        obj(fields)
    }

    #[test]
    fn default_params_resolve_to_the_embedded_example() {
        let p = IngestParams::parse(true, &Value::Null).unwrap();
        assert_eq!(p.source, DEFAULT_SOURCE);
        assert_eq!(p.format, Format::Auto);
        let flat = p.flatten().unwrap();
        assert_eq!(flat.netlist.name, "adder4");
        assert_eq!(flat.flatten_depth, 2);
    }

    #[test]
    fn inline_source_and_file_are_mutually_exclusive() {
        let e = IngestParams::parse(
            false,
            &params(vec![
                ("source", Value::Str("(edif x)".into())),
                ("file", Value::Str("x.edif".into())),
            ]),
        )
        .unwrap_err();
        assert!(e.message.contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn oversized_payloads_are_capped() {
        let big = "x".repeat(MAX_SOURCE_BYTES + 1);
        let e = IngestParams::parse(false, &params(vec![("source", Value::Str(big))])).unwrap_err();
        assert_eq!(e.code, m3d_core::ErrorCode::BadRequest);
        assert!(e.message.contains("limit"), "{e}");
    }

    #[test]
    fn malformed_edif_validates_as_bad_request_with_position() {
        let e = IngestCase
            .validate(
                true,
                &params(vec![("source", Value::Str("(edif broken".into()))]),
            )
            .unwrap_err();
        assert_eq!(e.code, m3d_core::ErrorCode::BadRequest);
        assert!(e.message.contains("line 1, column 1"), "{e}");
    }

    #[test]
    fn lint_failures_are_bad_requests() {
        // Parses and elaborates, but net `na` has no driver — the
        // floorplanner would refuse it, so validation must.
        let src = "(edif d (library L (cell top (view v \
                   (interface (port y (direction OUTPUT))) \
                   (contents (instance u1 (cellRef INV_X1)) \
                   (net na (joined (portRef A (instanceRef u1)))) \
                   (net ny (joined (portRef Y (instanceRef u1)) (portRef y))))))))";
        let e = IngestCase
            .validate(true, &params(vec![("source", Value::Str(src.into()))]))
            .unwrap_err();
        assert_eq!(e.code, m3d_core::ErrorCode::BadRequest);
        assert!(e.message.contains("lint"), "{e}");
        assert!(e.message.contains("undriven"), "{e}");
    }

    #[test]
    fn unknown_format_names_are_rejected() {
        let e = IngestParams::parse(false, &params(vec![("format", Value::Str("vhdl".into()))]))
            .unwrap_err();
        assert!(e.message.contains("vhdl"), "{e}");
    }
}
