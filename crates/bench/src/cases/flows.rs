//! Cases that run the RTL-to-GDS flow: Fig. 2, the under-array
//! congestion ablation, the multi-corner sign-off, and the prior-work
//! folding baseline.

use std::sync::Arc;

use m3d_core::engine::{corner_sweep, par_map, FetchOpts, FlowCache, FlowFetch, Stage, StageCtx};
use m3d_pd::{analyze_congestion, fold_two_tier, Clustering, FlowConfig, FlowReport};
use m3d_tech::{Corner, Pdk};
use serde::Value;

use crate::cases::case_cs;
use crate::registry::{
    field, obj, param_u64, reject_unknown, Case, CaseCtx, CaseError, CaseOutcome, ParamField,
};

/// Runs `cfg` through the flow cache under an active stage: provenance
/// marks the stage, a fresh compute attaches the flow's sub-spans.
pub(crate) fn staged_report(
    flows: &FlowCache,
    sctx: &mut StageCtx,
    cfg: &FlowConfig,
) -> Result<(Arc<FlowReport>, bool), CaseError> {
    let fetch = flows
        .fetch(cfg, FetchOpts::report())
        .map_err(CaseError::internal)?;
    let hit = fetch.reused();
    if hit {
        sctx.mark_cache_hit();
    } else if let Some(sub) = flows.sub_span(cfg) {
        sctx.child_span((*sub).clone());
    }
    Ok((fetch.report, hit))
}

// --- fig2_physical_design -----------------------------------------------

/// `fig2_physical_design` — Fig. 2: post-route 2D baseline vs the
/// iso-footprint M3D SoC, plus the Observation-2 power-density check.
pub struct Fig2PhysicalDesignCase;

impl Case for Fig2PhysicalDesignCase {
    fn name(&self) -> &'static str {
        "fig2_physical_design"
    }

    fn summary(&self) -> &'static str {
        "Fig. 2 post-route 2D vs iso-footprint M3D physical design + Observation 2"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let cs = case_cs(quick);
        let prep = |c: FlowConfig| if quick { c.quick() } else { c };
        let (r2d, hit2d) = ctx.stage(Stage::PdFlow, "2d", |sctx| {
            staged_report(
                ctx.flows,
                sctx,
                &prep(FlowConfig::baseline_2d().with_cs(cs)),
            )
        })?;
        let n = 1 + r2d.extra_cs_capacity.max(if quick { 1 } else { 7 });
        let (r3d, hit3d) = ctx.stage(Stage::PdFlow, "m3d", |sctx| {
            staged_report(
                ctx.flows,
                sctx,
                &prep(FlowConfig::m3d(n).with_cs(cs)).with_die(r2d.die),
            )
        })?;
        let design = |label: &str, r: &FlowReport| {
            obj(vec![
                ("design", Value::Str(label.to_owned())),
                ("cs_count", Value::U64(u64::from(r.cs_count))),
                ("die_mm2", Value::F64(r.die_mm2)),
                ("cell_count", Value::U64(r.cell_count as u64)),
                ("wirelength_m", Value::F64(r.wirelength_m)),
                ("critical_path_ns", Value::F64(r.critical_path_ns)),
                ("total_power_mw", Value::F64(r.total_power_mw)),
            ])
        };
        Ok(CaseOutcome {
            result: obj(vec![
                ("m3d_cs_count", Value::U64(u64::from(r3d.cs_count))),
                ("upper_tier_fraction", Value::F64(r3d.upper_tier_fraction)),
                (
                    "cs_stack_density_increase",
                    Value::F64(r3d.cs_stack_density_increase),
                ),
                (
                    "designs",
                    Value::Array(vec![design("2d", &r2d), design("m3d", &r3d)]),
                ),
            ]),
            cache_hit: hit2d && hit3d,
            coalesced: false,
        })
    }
}

// --- ablation_congestion ------------------------------------------------

/// `ablation_congestion` — per-region routing-track utilisation of the
/// implemented M3D design: the physical basis of the 0.5 under-array
/// availability derate.
pub struct AblationCongestionCase;

impl Case for AblationCongestionCase {
    fn name(&self) -> &'static str {
        "ablation_congestion"
    }

    fn summary(&self) -> &'static str {
        "under-array routing congestion (the 0.5 availability derate)"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let cs = case_cs(quick);
        let prep = |c: FlowConfig| if quick { c.quick() } else { c };
        let (res2d, hit2d) = ctx.stage(Stage::PdFlow, "2d", |sctx| {
            let cfg = prep(FlowConfig::baseline_2d().with_cs(cs));
            let fetch = ctx
                .flows
                .fetch(&cfg, FetchOpts::artifacts())
                .map_err(CaseError::internal)?;
            let hit = fetch.reused();
            if hit {
                sctx.mark_cache_hit();
            } else if let Some(sub) = ctx.flows.sub_span(&cfg) {
                sctx.child_span((*sub).clone());
            }
            let res = fetch.artifacts.expect("artifact-level fetch");
            Ok::<_, CaseError>((res, hit))
        })?;
        let r2d = &res2d.0;
        let n = 1 + r2d.extra_cs_capacity.max(if quick { 1 } else { 7 });
        let m3d_cfg = prep(FlowConfig::m3d(n).with_cs(cs)).with_die(r2d.die);
        let pdk = m3d_cfg.pdk.clone();
        let (res3d, hit3d) = ctx.stage(Stage::PdFlow, "m3d", |sctx| {
            let fetch = ctx
                .flows
                .fetch(&m3d_cfg, FetchOpts::artifacts())
                .map_err(CaseError::internal)?;
            let hit = fetch.reused();
            if hit {
                sctx.mark_cache_hit();
            } else if let Some(sub) = ctx.flows.sub_span(&m3d_cfg) {
                sctx.child_span((*sub).clone());
            }
            let res = fetch.artifacts.expect("artifact-level fetch");
            Ok::<_, CaseError>((res, hit))
        })?;
        let a = &res3d.1;
        let c = ctx.stage(Stage::PdFlow, "congestion", |_| {
            analyze_congestion(
                &a.netlist,
                &a.placement,
                &a.routing,
                &a.floorplan,
                &pdk,
                1000.0,
            )
        });
        let ratio = if c.free_region_utilization > 0.0 {
            c.under_array_utilization / c.free_region_utilization
        } else {
            0.0
        };
        Ok(CaseOutcome {
            result: obj(vec![
                ("nx", Value::U64(c.nx as u64)),
                ("ny", Value::U64(c.ny as u64)),
                ("tile_um", Value::F64(c.tile_um)),
                (
                    "free_region_utilization",
                    Value::F64(c.free_region_utilization),
                ),
                (
                    "under_array_utilization",
                    Value::F64(c.under_array_utilization),
                ),
                ("max_utilization", Value::F64(c.max_utilization)),
                ("overflow_tiles", Value::U64(c.overflow_tiles as u64)),
                ("under_over_free_ratio", Value::F64(ratio)),
            ]),
            cache_hit: hit2d && hit3d,
            coalesced: false,
        })
    }
}

// --- corners_signoff ----------------------------------------------------

/// `corners_signoff` — multi-corner (SS/TT/FF) sign-off of the 2D
/// baseline through the engine's [`corner_sweep`]: setup must close at
/// SS, leakage is reported at FF. Corners cache independently and fan
/// across the parallel executor.
pub struct CornersSignoffCase;

/// Typed parameters of [`CornersSignoffCase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CornersSignoffParams {
    /// The corners to sign off, in report order.
    pub corners: Vec<Corner>,
}

impl CornersSignoffParams {
    /// Parses and validates the wire params.
    ///
    /// # Errors
    ///
    /// [`m3d_core::ErrorCode::BadRequest`]-coded on unknown corner names
    /// or a malformed `corners` value.
    pub fn parse(params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["corners"])?;
        let spec = match field(params, "corners") {
            None => "ss,tt,ff".to_owned(),
            Some(Value::Str(s)) => s.clone(),
            Some(_) => {
                return Err(CaseError::bad_request(
                    "parameter `corners` must be a comma-separated string like \"ss,tt,ff\"",
                ))
            }
        };
        let corners = spec
            .split(',')
            .map(|name| {
                Corner::from_name(name).ok_or_else(|| {
                    CaseError::bad_request(format!(
                        "unknown corner `{}` (expected ss, tt or ff)",
                        name.trim()
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { corners })
    }
}

impl Case for CornersSignoffCase {
    fn name(&self) -> &'static str {
        "corners_signoff"
    }

    fn summary(&self) -> &'static str {
        "SS/TT/FF multi-corner sign-off of the 2D baseline (shared flow cache)"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[ParamField {
            name: "corners",
            default: "ss,tt,ff",
        }]
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        CornersSignoffParams::parse(params).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = CornersSignoffParams::parse(params)?;
        let mut cfg = FlowConfig::baseline_2d().with_cs(case_cs(quick));
        if quick {
            cfg = cfg.quick();
        }
        let runs = ctx.stage(Stage::PdFlow, "corners", |sctx| {
            let runs = corner_sweep(ctx.flows, &cfg, &p.corners).map_err(CaseError::internal)?;
            for run in &runs {
                sctx.child_span(run.span_node());
            }
            if runs.iter().all(|r| r.fetch.cache_hit) {
                sctx.mark_cache_hit();
            }
            Ok::<_, CaseError>(runs)
        })?;
        Ok(CaseOutcome {
            result: obj(vec![(
                "corners",
                Value::Array(
                    runs.iter()
                        .map(|run| {
                            obj(vec![
                                ("corner", Value::Str(run.corner.name().to_owned())),
                                ("critical_path_ns", Value::F64(run.report.critical_path_ns)),
                                ("timing_met", Value::Bool(run.report.timing_met)),
                                ("cell_leakage_mw", Value::F64(run.report.cell_leakage_mw)),
                                ("total_power_mw", Value::F64(run.report.total_power_mw)),
                            ])
                        })
                        .collect(),
                ),
            )]),
            cache_hit: runs.iter().all(|r| r.fetch.cache_hit),
            coalesced: runs.iter().any(|r| r.fetch.coalesced),
        })
    }
}

// --- flow_sensitivity ---------------------------------------------------

/// `flow_sensitivity` — sign-off sensitivity of the 2D baseline to the
/// signal-activity assumption: one placement, a grid of activity
/// factors, every point a full sign-off evaluation.
///
/// All grid points share a placement key (activity only shapes the
/// post-placement phases), so this sweep is the cache's warm-start
/// showcase: after the first point anneals, every later point re-seeds
/// from it and re-evaluates route/STA/power incrementally. Warm and
/// cold runs are byte-identical by construction, so the payload and
/// trace do not depend on `M3D_JOBS` or on which seeds were available —
/// `scripts/tier1.sh` gates on exactly that.
pub struct FlowSensitivityCase;

/// Typed parameters of [`FlowSensitivityCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSensitivityParams {
    /// Grid points.
    pub points: u32,
    /// First activity factor, in percent.
    pub activity_lo_pct: u32,
    /// Grid step, in percent.
    pub activity_step_pct: u32,
}

impl FlowSensitivityParams {
    /// Parses and range-checks the wire params.
    ///
    /// # Errors
    ///
    /// [`m3d_core::ErrorCode::BadRequest`]-coded on malformed or
    /// out-of-range values.
    pub fn parse(quick: bool, params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["points", "activity_lo_pct", "activity_step_pct"])?;
        let points = u32::try_from(param_u64(params, "points", if quick { 3 } else { 6 }, 32)?)
            .expect("bounded")
            .max(1);
        let lo = u32::try_from(param_u64(params, "activity_lo_pct", 10, 80)?).expect("bounded");
        let step = u32::try_from(param_u64(params, "activity_step_pct", 5, 50)?).expect("bounded");
        if lo == 0 || step == 0 {
            return Err(CaseError::bad_request(
                "`activity_lo_pct` and `activity_step_pct` must be positive",
            ));
        }
        if lo + (points - 1) * step > 100 {
            return Err(CaseError::bad_request(
                "activity grid exceeds 100 % at its top point",
            ));
        }
        Ok(Self {
            points,
            activity_lo_pct: lo,
            activity_step_pct: step,
        })
    }

    /// The swept activity factors, in grid order.
    fn grid(self) -> Vec<f64> {
        (0..self.points)
            .map(|i| f64::from(self.activity_lo_pct + i * self.activity_step_pct) / 100.0)
            .collect()
    }
}

impl Case for FlowSensitivityCase {
    fn name(&self) -> &'static str {
        "flow_sensitivity"
    }

    fn summary(&self) -> &'static str {
        "activity-factor sensitivity sweep (one placement, warm-started sign-off grid)"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[
            ParamField {
                name: "points",
                default: "3 (quick) / 6",
            },
            ParamField {
                name: "activity_lo_pct",
                default: "10",
            },
            ParamField {
                name: "activity_step_pct",
                default: "5",
            },
        ]
    }

    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError> {
        FlowSensitivityParams::parse(quick, params).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = FlowSensitivityParams::parse(quick, params)?;
        let mut base = FlowConfig::baseline_2d().with_cs(case_cs(quick));
        if quick {
            base = base.quick();
        }
        let cfgs: Vec<FlowConfig> = p
            .grid()
            .into_iter()
            .map(|activity| {
                let mut cfg = base.clone();
                cfg.activity = activity;
                cfg
            })
            .collect();
        let fetches = ctx.stage(Stage::PdFlow, "sweep", |sctx| {
            let fetches = par_map(&cfgs, |cfg| ctx.flows.fetch(cfg, FetchOpts::report()))
                .into_iter()
                .collect::<Result<Vec<_>, _>>()
                .map_err(CaseError::internal)?;
            // Sub-spans attach in grid order — never completion order —
            // and carry no per-point provenance, so the trace is
            // byte-identical across `M3D_JOBS` and across warm-start
            // seed availability (warm == cold by construction).
            for cfg in &cfgs {
                if let Some(sub) = ctx.flows.sub_span(cfg) {
                    sctx.child_span((*sub).clone());
                }
            }
            if fetches.iter().all(FlowFetch::reused) {
                sctx.mark_cache_hit();
            }
            Ok::<_, CaseError>(fetches)
        })?;
        let points: Vec<Value> = cfgs
            .iter()
            .zip(&fetches)
            .map(|(cfg, fetch)| {
                let r = &*fetch.report;
                obj(vec![
                    ("activity", Value::F64(cfg.activity)),
                    ("wirelength_m", Value::F64(r.wirelength_m)),
                    ("critical_path_ns", Value::F64(r.critical_path_ns)),
                    ("timing_met", Value::Bool(r.timing_met)),
                    ("total_power_mw", Value::F64(r.total_power_mw)),
                ])
            })
            .collect();
        let power = |f: &FlowFetch| f.report.total_power_mw;
        let first = fetches.first().map(power).unwrap_or_default();
        let last = fetches.last().map(power).unwrap_or_default();
        Ok(CaseOutcome {
            result: obj(vec![
                ("points", Value::U64(u64::from(p.points))),
                (
                    "power_swing_ratio",
                    Value::F64(if first > 0.0 { last / first } else { 0.0 }),
                ),
                ("grid", Value::Array(points)),
            ]),
            cache_hit: fetches.iter().all(FlowFetch::reused),
            coalesced: fetches.iter().any(|f| f.coalesced),
        })
    }
}

// --- folding_ablation ---------------------------------------------------

/// `folding_ablation` — the prior-work approach the paper contrasts
/// against: folding the existing 2D design across two device tiers with
/// min-cut partitioning (≈ 1.1–1.4× EDP vs the paper's 5.7×).
pub struct FoldingAblationCase;

impl Case for FoldingAblationCase {
    fn name(&self) -> &'static str {
        "folding_ablation"
    }

    fn summary(&self) -> &'static str {
        "prior-work two-tier folding baseline (min-cut partitioning)"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[ParamField {
            name: "seed",
            default: "2023",
        }]
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &["seed"])?;
        param_u64(params, "seed", 2023, u64::MAX).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, _quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &["seed"])?;
        let seed = param_u64(params, "seed", 2023, u64::MAX)?;
        let clustering = ctx.stage(Stage::Netlist, "", |_| {
            let cfg = m3d_netlist::SocConfig {
                cs: m3d_netlist::CsConfig {
                    rows: 8,
                    cols: 8,
                    pe: m3d_netlist::PeConfig::default(),
                    global_buffer_kb: 256,
                    local_buffer_kb: 16,
                },
                ..m3d_netlist::SocConfig::baseline_2d()
            };
            let mut nl = m3d_netlist::Netlist::new("fold_target");
            m3d_netlist::accelerator_soc(&mut nl, &cfg).map_err(CaseError::internal)?;
            Clustering::build(&nl, &Pdk::m3d_130nm()).map_err(CaseError::internal)
        })?;
        let fold = ctx.stage(Stage::PdFlow, "fold", |_| fold_two_tier(&clustering, seed));
        // EDP estimate for folding: wire-capacitance energy scales with
        // WL; delay improves with the shorter critical wires. Wire
        // energy ≈ 40 % of total, wire delay ≈ 30 % of the path.
        let wl = fold.wirelength_ratio;
        let energy_ratio = 1.0 / (0.6 + 0.4 * wl);
        let speedup = 1.0 / (0.7 + 0.3 * wl);
        Ok(CaseOutcome::fresh(obj(vec![
            ("clusters", Value::U64(clustering.clusters.len() as u64)),
            ("total_nets", Value::U64(fold.total_nets as u64)),
            ("cut_nets", Value::U64(fold.cut_nets as u64)),
            ("cut_fraction", Value::F64(fold.cut_fraction())),
            ("tier0_mm2", Value::F64(fold.tier_area[0] / 1e6)),
            ("tier1_mm2", Value::F64(fold.tier_area[1] / 1e6)),
            ("footprint_ratio", Value::F64(fold.footprint_ratio)),
            ("wirelength_ratio", Value::F64(wl)),
            ("speedup", Value::F64(speedup)),
            ("energy_ratio", Value::F64(energy_ratio)),
            ("edp_benefit", Value::F64(energy_ratio * speedup)),
        ])))
    }
}
