//! Cases evaluated on the architecture models: Table I, Figs. 5/7/8,
//! the dataflow/precision/batch ablations, the MobileNet coverage
//! extension, and the technology-node projection.

use m3d_arch::{
    batch_speedup, compare, map_workload, models, simulate, simulate_batch, table2_architectures,
    ChipConfig, CsGeometry, Dataflow, MapperChip,
};
use m3d_core::design_point::{case_study_design_point, DesignPoint, CASE_STUDY_CS_DEMAND_MM2};
use m3d_core::engine::{par_map, Stage};
use m3d_core::framework::{evaluate_workload, ChipParams, WorkloadPoint};
use m3d_tech::{projection_ladder, IlvSpec, Pdk, RramCellModel, RramMacro, SelectorTech};
use serde::Value;

use crate::registry::{
    obj, param_u64, reject_unknown, Case, CaseCtx, CaseError, CaseOutcome, ParamField,
};

// --- table1_resnet18 ----------------------------------------------------

/// `table1_resnet18` — Table I: per-layer speedup, energy and EDP
/// benefit of the iso-footprint M3D accelerator on ResNet-18.
pub struct Table1Resnet18Case;

/// Typed parameters of [`Table1Resnet18Case`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Params {
    /// M3D computing sub-systems compared against the 2D baseline.
    pub n_cs: u32,
}

impl Table1Params {
    /// Parses and range-checks the wire params.
    ///
    /// # Errors
    ///
    /// [`m3d_core::ErrorCode::BadRequest`]-coded on malformed or
    /// out-of-range values.
    pub fn parse(quick: bool, params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["n_cs"])?;
        Ok(Self {
            n_cs: u32::try_from(param_u64(params, "n_cs", if quick { 4 } else { 8 }, 64)?)
                .expect("bounded")
                .max(1),
        })
    }
}

impl Case for Table1Resnet18Case {
    fn name(&self) -> &'static str {
        "table1_resnet18"
    }

    fn summary(&self) -> &'static str {
        "Table I ResNet-18 per-layer M3D benefits"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[ParamField {
            name: "n_cs",
            default: "4 (quick) / 8",
        }]
    }

    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError> {
        Table1Params::parse(quick, params).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = Table1Params::parse(quick, params)?;
        let table = ctx.stage(Stage::ArchSim, "", |_| {
            compare(
                &ChipConfig::baseline_2d(),
                &ChipConfig::m3d(p.n_cs),
                &models::resnet18(),
            )
        });
        Ok(CaseOutcome::fresh(obj(vec![
            ("total_speedup", Value::F64(table.total.speedup)),
            ("total_energy_ratio", Value::F64(table.total.energy_ratio)),
            ("total_edp_benefit", Value::F64(table.total.edp_benefit)),
            (
                "layers",
                Value::Array(
                    table
                        .rows
                        .iter()
                        .map(|row| {
                            obj(vec![
                                ("name", Value::Str(row.name.clone())),
                                ("speedup", Value::F64(row.speedup)),
                                ("energy_ratio", Value::F64(row.energy_ratio)),
                                ("edp_benefit", Value::F64(row.edp_benefit)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])))
    }
}

// --- fig5_models --------------------------------------------------------

/// `fig5_models` — Fig. 5: M3D benefits across the AI/ML evaluation
/// models (paper band: 5.7×–7.5× EDP at ≈ 0.99× energy).
pub struct Fig5ModelsCase;

impl Case for Fig5ModelsCase {
    fn name(&self) -> &'static str {
        "fig5_models"
    }

    fn summary(&self) -> &'static str {
        "Fig. 5 M3D benefits across AI/ML models"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, _quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let (base, m3d) = ctx.stage(Stage::Tech, "", |_| {
            (ChipConfig::baseline_2d(), ChipConfig::m3d(8))
        });
        let comparisons = ctx.stage(Stage::ArchSim, "", |_| {
            models::evaluation_models()
                .into_iter()
                .map(|w| compare(&base, &m3d, &w))
                .collect::<Vec<_>>()
        });
        let min_edp = comparisons
            .iter()
            .map(|c| c.total.edp_benefit)
            .fold(f64::INFINITY, f64::min);
        Ok(CaseOutcome::fresh(obj(vec![
            ("min_edp_benefit", Value::F64(min_edp)),
            (
                "models",
                Value::Array(
                    comparisons
                        .iter()
                        .map(|c| {
                            obj(vec![
                                ("name", Value::Str(c.workload.clone())),
                                ("speedup", Value::F64(c.total.speedup)),
                                ("energy_ratio", Value::F64(c.total.energy_ratio)),
                                ("edp_benefit", Value::F64(c.total.edp_benefit)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])))
    }
}

// --- fig7_architectures -------------------------------------------------

/// `fig7_architectures` — Fig. 7: the six Table-II architectures on
/// AlexNet, analytical framework vs the ZigZag-style mapper (must agree
/// within ≈ 10 %).
pub struct Fig7ArchitecturesCase;

struct ArchRow {
    name: String,
    n_cs: u32,
    zz_speedup: f64,
    zz_energy: f64,
    zz_edp: f64,
    model_edp: f64,
    gap: f64,
}

impl Case for Fig7ArchitecturesCase {
    fn name(&self) -> &'static str {
        "fig7_architectures"
    }

    fn summary(&self) -> &'static str {
        "Fig. 7 Table-II architectures: analytical model vs mapper"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, _quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let (pdk, rram, alexnet) = ctx.stage(Stage::Tech, "", |_| {
            let rram = RramMacro::with_capacity_mb(256, 1, 256, SelectorTech::SiFet)
                .map_err(CaseError::internal)?;
            Ok::<_, CaseError>((Pdk::m3d_130nm(), rram, models::alexnet()))
        })?;
        let archs = table2_architectures();
        let rows = ctx.stage(Stage::ArchSim, "", |_| {
            par_map(&archs, |arch| -> Result<ArchRow, CaseError> {
                let dp = DesignPoint::derive(&pdk, &rram, arch.cs_demand_mm2())
                    .map_err(CaseError::internal)?;
                let zz2 = map_workload(&MapperChip::from_arch(arch, 1), &alexnet);
                let zz3 = map_workload(&MapperChip::from_arch(arch, dp.n_cs), &alexnet);
                let zz_speedup = zz2.cycles as f64 / zz3.cycles as f64;
                let zz_energy = zz2.energy_pj / zz3.energy_pj;
                let zz_edp = zz_speedup * zz_energy;
                let spatial_k = arch.spatial.k.max(1);
                let points: Vec<WorkloadPoint> = alexnet
                    .layers
                    .iter()
                    .map(|l| WorkloadPoint::from_layer(l, 8, spatial_k))
                    .collect();
                // The mapper models a banked-weight design, so the
                // analytical points use partitioned-traffic semantics.
                let base = ChipParams {
                    peak_ops_per_cs: arch.spatial.pes() as f64,
                    ..ChipParams::baseline_2d()
                }
                .partitioned();
                let m3d = ChipParams {
                    n_cs: dp.n_cs,
                    bandwidth: base.bandwidth * f64::from(dp.n_cs),
                    ..base
                };
                let a2 = evaluate_workload(&base, &points);
                let a3 = evaluate_workload(&m3d, &points);
                let model_edp = (a2.cycles / a3.cycles) * (a2.energy_pj / a3.energy_pj);
                Ok(ArchRow {
                    name: arch.name.clone(),
                    n_cs: dp.n_cs,
                    zz_speedup,
                    zz_energy,
                    zz_edp,
                    model_edp,
                    gap: (model_edp - zz_edp).abs() / zz_edp,
                })
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
        })?;
        let worst_gap = rows.iter().map(|r| r.gap).fold(0.0f64, f64::max);
        Ok(CaseOutcome::fresh(obj(vec![
            ("worst_gap", Value::F64(worst_gap)),
            (
                "architectures",
                Value::Array(
                    rows.iter()
                        .map(|r| {
                            obj(vec![
                                ("name", Value::Str(r.name.clone())),
                                ("n_cs", Value::U64(u64::from(r.n_cs))),
                                ("zz_speedup", Value::F64(r.zz_speedup)),
                                ("zz_energy", Value::F64(r.zz_energy)),
                                ("zz_edp", Value::F64(r.zz_edp)),
                                ("model_edp", Value::F64(r.model_edp)),
                                ("gap", Value::F64(r.gap)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])))
    }
}

// --- fig8_bw_cs ---------------------------------------------------------

/// `fig8_bw_cs` — Fig. 8: EDP benefit vs memory bandwidth and
/// parallel-CS scaling for compute- and memory-bound workloads, plus the
/// Observation-5 worked examples.
pub struct Fig8BwCsCase;

const FIG8_FACTORS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

impl Case for Fig8BwCsCase {
    fn name(&self) -> &'static str {
        "fig8_bw_cs"
    }

    fn summary(&self) -> &'static str {
        "Fig. 8 bandwidth × CS grid + Observation 5"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, _quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        use m3d_core::explore::{bandwidth_cs_grid, intensity_workload};
        use m3d_core::framework::workload_edp_benefit;
        reject_unknown(params, &[])?;
        let base = ChipParams::baseline_2d();
        let compute = ctx.stage(Stage::ArchSim, "compute-bound", |_| {
            bandwidth_cs_grid(
                &base,
                &intensity_workload(16.0),
                &FIG8_FACTORS,
                &FIG8_FACTORS,
            )
        });
        let memory = ctx.stage(Stage::ArchSim, "memory-bound", |_| {
            bandwidth_cs_grid(
                &base,
                &intensity_workload(1.0 / 16.0),
                &FIG8_FACTORS,
                &FIG8_FACTORS,
            )
        });
        let (a, b) = ctx.stage(Stage::ArchSim, "obs5", |_| {
            // (a) compute-bound: 2× CSs at unchanged bandwidth.
            let w = intensity_workload(16.0);
            let two_cs = ChipParams { n_cs: 2, ..base };
            let a = workload_edp_benefit(&base, &two_cs, std::slice::from_ref(&w));
            // (b) memory-bound: from the 8-CS point, halve CSs at the
            // same total port width.
            let m3d8 = ChipParams::m3d(8);
            let wm = intensity_workload(1.0 / 16.0);
            let fewer_faster = ChipParams { n_cs: 4, ..m3d8 };
            let b = workload_edp_benefit(&m3d8, &fewer_faster, std::slice::from_ref(&wm));
            (a, b)
        });
        let mut grid = Vec::new();
        for (label, points) in [("compute-bound", &compute), ("memory-bound", &memory)] {
            for p in points.iter() {
                grid.push(obj(vec![
                    (
                        "point",
                        Value::Str(format!(
                            "{label} bw={:.0}x cs={:.0}x",
                            p.bw_factor, p.cs_factor
                        )),
                    ),
                    ("edp_benefit", Value::F64(p.edp_benefit)),
                ]));
            }
        }
        Ok(CaseOutcome::fresh(obj(vec![
            ("obs5_compute_bound_2x_cs", Value::F64(a)),
            ("obs5_memory_bound_2x_bw", Value::F64(b)),
            ("grid", Value::Array(grid)),
        ])))
    }
}

// --- ablation_dataflow --------------------------------------------------

/// `ablation_dataflow` — why the accelerator is weight-stationary:
/// output-stationary execution re-streams weights from the RRAM per
/// output tile; the M3D benefit survives either dataflow.
pub struct AblationDataflowCase;

impl Case for AblationDataflowCase {
    fn name(&self) -> &'static str {
        "ablation_dataflow"
    }

    fn summary(&self) -> &'static str {
        "weight- vs output-stationary dataflow ablation"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let cs_count = if quick { 4 } else { 8 };
        let resnet = models::resnet18();
        let mut configs = Vec::new();
        for (tag, chip) in [
            ("2d-ws", ChipConfig::baseline_2d()),
            (
                "2d-os",
                ChipConfig::baseline_2d().with_dataflow(Dataflow::OutputStationary),
            ),
            ("m3d-ws", ChipConfig::m3d(cs_count)),
            (
                "m3d-os",
                ChipConfig::m3d(cs_count).with_dataflow(Dataflow::OutputStationary),
            ),
        ] {
            let perf = ctx.stage(Stage::ArchSim, tag, |_| simulate(&chip, &resnet));
            let weight_mb: f64 = perf.layers.iter().map(|l| l.energy.weight_pj).sum::<f64>()
                / chip.energy.rram_read_pj_per_bit
                / 1.0e6;
            configs.push(obj(vec![
                ("name", Value::Str(tag.to_owned())),
                ("cycles_m", Value::F64(perf.total_cycles as f64 / 1e6)),
                ("energy_mj", Value::F64(perf.total_energy_pj / 1e9)),
                ("rram_weight_mb", Value::F64(weight_mb)),
            ]));
        }
        let (ws, os) = ctx.stage(Stage::ArchSim, "edp-compare", |_| {
            let ws = compare(
                &ChipConfig::baseline_2d(),
                &ChipConfig::m3d(cs_count),
                &resnet,
            );
            let os = compare(
                &ChipConfig::baseline_2d().with_dataflow(Dataflow::OutputStationary),
                &ChipConfig::m3d(cs_count).with_dataflow(Dataflow::OutputStationary),
                &resnet,
            );
            (ws, os)
        });
        Ok(CaseOutcome::fresh(obj(vec![
            ("ws_edp_benefit", Value::F64(ws.total.edp_benefit)),
            ("os_edp_benefit", Value::F64(os.total.edp_benefit)),
            ("configs", Value::Array(configs)),
        ])))
    }
}

// --- ablation_precision -------------------------------------------------

/// `ablation_precision` — 4/8/16-bit weights on the M3D design point,
/// with the RRAM-capacity feedback on the design point itself.
pub struct AblationPrecisionCase;

impl Case for AblationPrecisionCase {
    fn name(&self) -> &'static str {
        "ablation_precision"
    }

    fn summary(&self) -> &'static str {
        "weight-precision ablation with RRAM-capacity feedback"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let cs_count = if quick { 4 } else { 8 };
        let resnet = models::resnet18();
        let mut precisions = Vec::new();
        for bits in [4u32, 8, 16] {
            let c = ctx.stage(Stage::ArchSim, &format!("{bits}bit"), |_| {
                let geom = CsGeometry {
                    weight_bits: bits,
                    ..CsGeometry::default()
                };
                let base = ChipConfig {
                    geometry: geom,
                    ..ChipConfig::baseline_2d()
                };
                let m3d = ChipConfig {
                    geometry: geom,
                    ..ChipConfig::m3d(cs_count)
                };
                compare(&base, &m3d, &resnet)
            });
            precisions.push(obj(vec![
                ("name", Value::Str(format!("{bits}bit"))),
                (
                    "model_mb",
                    Value::F64(resnet.model_bytes(bits) as f64 / 1e6),
                ),
                ("speedup", Value::F64(c.total.speedup)),
                ("energy_ratio", Value::F64(c.total.energy_ratio)),
                ("edp_benefit", Value::F64(c.total.edp_benefit)),
            ]));
        }
        let capacity = ctx.stage(Stage::ArchSim, "capacity", |_| {
            let pdk = Pdk::m3d_130nm();
            let mut out = Vec::new();
            for mb in [32u64, 64] {
                out.push((
                    mb,
                    case_study_design_point(&pdk, mb)
                        .map_err(CaseError::internal)?
                        .n_cs,
                ));
            }
            Ok::<_, CaseError>(out)
        })?;
        let n_cs_at = |want: u64| {
            capacity
                .iter()
                .find(|(mb, _)| *mb == want)
                .map_or(0, |&(_, n)| u64::from(n))
        };
        Ok(CaseOutcome::fresh(obj(vec![
            ("n_cs_at_32mb", Value::U64(n_cs_at(32))),
            ("n_cs_at_64mb", Value::U64(n_cs_at(64))),
            ("precisions", Value::Array(precisions)),
        ])))
    }
}

// --- ablation_batch -----------------------------------------------------

/// `ablation_batch` — batch-pipelined inference recovers the CSs that
/// partition-capped layers leave idle.
pub struct AblationBatchCase;

impl Case for AblationBatchCase {
    fn name(&self) -> &'static str {
        "ablation_batch"
    }

    fn summary(&self) -> &'static str {
        "batch-pipelining ablation across the M3D CSs"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let cs_count = if quick { 4 } else { 8 };
        let batches: &[u32] = if quick {
            &[1, 2, 4, 8]
        } else {
            &[1, 2, 4, 8, 16, 32]
        };
        let base = ChipConfig::baseline_2d();
        let m3d = ChipConfig::m3d(cs_count);
        let resnet = models::resnet18();
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        for &b in batches {
            let (perf, speedup) = ctx.stage(Stage::ArchSim, &format!("batch{b}"), |_| {
                (
                    simulate_batch(&m3d, &resnet, b),
                    batch_speedup(&base, &m3d, &resnet, b),
                )
            });
            speedups.push(speedup);
            rows.push(obj(vec![
                ("name", Value::Str(format!("batch{b}"))),
                (
                    "cycles_per_image_m",
                    Value::F64(perf.cycles_per_image / 1e6),
                ),
                (
                    "energy_per_image_mj",
                    Value::F64(perf.energy_per_image_pj() / 1e9),
                ),
                ("speedup", Value::F64(speedup)),
            ]));
        }
        Ok(CaseOutcome::fresh(obj(vec![
            (
                "batch1_speedup",
                Value::F64(speedups.first().copied().unwrap_or(0.0)),
            ),
            (
                "max_batch_speedup",
                Value::F64(speedups.last().copied().unwrap_or(0.0)),
            ),
            ("batches", Value::Array(rows)),
        ])))
    }
}

// --- extension_mobilenet ------------------------------------------------

/// `extension_mobilenet` — coverage extension: MobileNetV1 (a
/// depthwise-separable workload outside the paper's evaluation set) on
/// the M3D design point, aggregated by layer class.
pub struct ExtensionMobilenetCase;

impl Case for ExtensionMobilenetCase {
    fn name(&self) -> &'static str {
        "extension_mobilenet"
    }

    fn summary(&self) -> &'static str {
        "MobileNetV1 stress coverage on the M3D design point"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, _quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let cmp = ctx.stage(Stage::ArchSim, "", |_| {
            compare(
                &ChipConfig::baseline_2d(),
                &ChipConfig::m3d(8),
                &models::mobilenet_v1(),
            )
        });
        let class_of = |name: &str| {
            if name.starts_with("DW") {
                "depthwise"
            } else if name.starts_with("PW") {
                "pointwise"
            } else {
                "other"
            }
        };
        let classes = ["depthwise", "pointwise", "other"]
            .iter()
            .map(|&class| {
                let rows: Vec<_> = cmp
                    .rows
                    .iter()
                    .filter(|r| class_of(&r.name) == class)
                    .collect();
                let (min, max) = if rows.is_empty() {
                    (0.0, 0.0)
                } else {
                    (
                        rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min),
                        rows.iter().map(|r| r.speedup).fold(0.0, f64::max),
                    )
                };
                obj(vec![
                    ("name", Value::Str(class.to_owned())),
                    ("layers", Value::U64(rows.len() as u64)),
                    ("min_speedup", Value::F64(min)),
                    ("max_speedup", Value::F64(max)),
                ])
            })
            .collect();
        Ok(CaseOutcome::fresh(obj(vec![
            ("total_speedup", Value::F64(cmp.total.speedup)),
            ("total_edp_benefit", Value::F64(cmp.total.edp_benefit)),
            ("classes", Value::Array(classes)),
        ])))
    }
}

// --- projection_nodes ---------------------------------------------------

/// `projection_nodes` — the M3D design point projected across
/// technology nodes: logic shrinks quadratically, selectors roughly
/// linearly, ILVs barely — the freed-area ratio explodes at advanced
/// nodes.
pub struct ProjectionNodesCase;

struct NodePoint {
    node_nm: u32,
    per_bit_um2: f64,
    array_mm2: f64,
    cs_mm2: f64,
    via_limited: bool,
    n_cs: u32,
}

impl Case for ProjectionNodesCase {
    fn name(&self) -> &'static str {
        "projection_nodes"
    }

    fn summary(&self) -> &'static str {
        "technology-node projection of the M3D design point"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let base = ChipConfig::baseline_2d();
        let resnet = models::resnet18();
        let points = ctx.stage(Stage::Tech, "", |_| {
            let cell = RramCellModel::foundry_130nm();
            let ilv = IlvSpec::ultra_dense_130nm();
            let bits = 64u64 * 1024 * 1024 * 8;
            let ladder = projection_ladder();
            let last = ladder.len().saturating_sub(1);
            ladder
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !quick || *i == 0 || *i == last)
                .map(|(_, s)| {
                    let per_bit = s.rram_area_per_bit(&cell, &ilv);
                    let array_mm2 = per_bit.value() * bits as f64 / 1e6;
                    let cs_mm2 = CASE_STUDY_CS_DEMAND_MM2 * s.logic_area;
                    // Same derivation as the 130 nm design point; the
                    // interface reserve is logic and scales with the
                    // node.
                    let reserve = 10.0 * s.logic_area;
                    let freed = ((array_mm2 - reserve).max(0.0)) * 0.5;
                    let n_cs = (1 + (freed / cs_mm2) as u32).min(64);
                    NodePoint {
                        node_nm: s.node_nm,
                        per_bit_um2: per_bit.value(),
                        array_mm2,
                        cs_mm2,
                        via_limited: s.via_limited(&cell, &ilv),
                        n_cs,
                    }
                })
                .collect::<Vec<_>>()
        });
        let mut rows = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for p in &points {
            let label = format!("{}nm", p.node_nm);
            let cmp = ctx.stage(Stage::ArchSim, &label, |_| {
                compare(&base, &ChipConfig::m3d(p.n_cs), &resnet)
            });
            best = best.max(cmp.total.edp_benefit);
            rows.push(obj(vec![
                ("label", Value::Str(label)),
                ("cell_um2", Value::F64(p.per_bit_um2)),
                ("array_mm2", Value::F64(p.array_mm2)),
                ("cs_mm2", Value::F64(p.cs_mm2)),
                ("via_limited", Value::U64(u64::from(p.via_limited))),
                ("n_cs", Value::U64(u64::from(p.n_cs))),
                ("edp_benefit", Value::F64(cmp.total.edp_benefit)),
            ]));
        }
        Ok(CaseOutcome::fresh(obj(vec![
            ("nodes", Value::U64(rows.len() as u64)),
            ("best_edp_benefit", Value::F64(best)),
            ("points", Value::Array(rows)),
        ])))
    }
}
