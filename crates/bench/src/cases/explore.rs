//! Cases over the analytical exploration framework: the Fig. 10
//! selector-width relaxation, Observations 3 and 8, the upper-tier-logic
//! forward projection (Case 4), and the Monte-Carlo sensitivity study.

use m3d_arch::{compare, models, ChipConfig};
use m3d_core::cases::{case1_sweep, case2_via_pitch, case4_upper_logic, BaselineAreas};
use m3d_core::design_point::case_study_design_point;
use m3d_core::engine::{par_map, Stage};
use m3d_core::explore::sram_baseline_design_point;
use m3d_core::framework::{workload_edp_benefit, ChipParams, MemoryTraffic, WorkloadPoint};
use m3d_core::sensitivity::{edp_benefit_sensitivity, Perturbation, SensitivityResult};
use m3d_tech::{IlvSpec, Pdk, RramCellModel};
use serde::Value;

use crate::registry::{
    obj, param_u64, reject_unknown, resnet_points, Case, CaseCtx, CaseError, CaseOutcome,
    ParamField,
};

// --- fig10_relaxation ---------------------------------------------------

/// `fig10_relaxation` — Fig. 10b–c: parallel-CS counts and EDP benefit
/// under relaxed selector widths δ (Case 1, Observation 7).
pub struct Fig10RelaxationCase;

impl Case for Fig10RelaxationCase {
    fn name(&self) -> &'static str {
        "fig10_relaxation"
    }

    fn summary(&self) -> &'static str {
        "Fig. 10b-c selector-width relaxation (Case 1, Obs. 7)"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let areas = BaselineAreas::case_study_64mb();
        let base = ChipParams::baseline_2d();
        let workload = resnet_points();
        let deltas: &[f64] = if quick {
            &[1.0, 1.6, 2.0, 2.5]
        } else {
            &[1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0, 2.2, 2.5]
        };
        let pts = ctx
            .stage(Stage::ArchSim, "", |_| {
                case1_sweep(&areas, &base, &workload, deltas)
            })
            .map_err(CaseError::internal)?;
        Ok(CaseOutcome::fresh(obj(vec![
            (
                "nominal_edp_benefit",
                Value::F64(pts.first().map_or(0.0, |p| p.edp_benefit)),
            ),
            (
                "edp_benefit_at_max_delta",
                Value::F64(pts.last().map_or(0.0, |p| p.edp_benefit)),
            ),
            (
                "points",
                Value::Array(
                    pts.iter()
                        .map(|p| {
                            obj(vec![
                                ("label", Value::Str(format!("delta={:.1}", p.delta))),
                                ("delta", Value::F64(p.delta)),
                                ("n_3d", Value::U64(u64::from(p.n_3d))),
                                ("n_2d", Value::U64(u64::from(p.n_2d))),
                                ("edp_benefit", Value::F64(p.edp_benefit)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])))
    }
}

// --- obs3_sram_baseline -------------------------------------------------

/// `obs3_sram_baseline` — Observation 3: with a 2× less dense non-BEOL
/// baseline memory the iso-footprint M3D design hosts 16 CSs instead of
/// 8, so the RRAM baseline is the conservative comparison.
pub struct Obs3SramBaselineCase;

impl Case for Obs3SramBaselineCase {
    fn name(&self) -> &'static str {
        "obs3_sram_baseline"
    }

    fn summary(&self) -> &'static str {
        "Obs. 3 SRAM-density 2D baseline lower-bounds the benefit"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, _quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let pdk = Pdk::m3d_130nm();
        let base = ChipConfig::baseline_2d();
        let resnet = models::resnet18();
        let points = ctx.stage(Stage::ArchSim, "density", |_| {
            let mut out = Vec::new();
            for (name, density) in [("rram_beol", 1.0), ("sram_2x", 2.0)] {
                let dp = if density > 1.0 {
                    sram_baseline_design_point(&pdk, 64, density)
                } else {
                    case_study_design_point(&pdk, 64)
                }
                .map_err(CaseError::internal)?;
                let c = compare(&base, &dp.m3d_chip_config(), &resnet);
                out.push((name, dp.n_cs, c.total.speedup, c.total.edp_benefit));
            }
            Ok::<_, CaseError>(out)
        })?;
        Ok(CaseOutcome::fresh(obj(vec![
            ("edp_gain_over_rram", Value::F64(points[1].3 / points[0].3)),
            (
                "points",
                Value::Array(
                    points
                        .iter()
                        .map(|&(name, n_cs, speedup, edp)| {
                            obj(vec![
                                ("name", Value::Str(name.to_owned())),
                                ("n_cs", Value::U64(u64::from(n_cs))),
                                ("speedup", Value::F64(speedup)),
                                ("edp_benefit", Value::F64(edp)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])))
    }
}

// --- obs8_via_pitch -----------------------------------------------------

/// `obs8_via_pitch` — Observation 8: EDP benefit vs ILV pitch (Case 2);
/// fine-pitch ILVs preserve benefits, coarse 3D vias erode them.
pub struct Obs8ViaPitchCase;

impl Case for Obs8ViaPitchCase {
    fn name(&self) -> &'static str {
        "obs8_via_pitch"
    }

    fn summary(&self) -> &'static str {
        "Obs. 8 ILV-pitch sensitivity (Case 2)"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let areas = BaselineAreas::case_study_64mb();
        let base = ChipParams::baseline_2d();
        let cell = RramCellModel::foundry_130nm();
        let ilv = IlvSpec::ultra_dense_130nm();
        let workload = resnet_points();
        let scales: &[f64] = if quick {
            &[1.0, 1.3, 1.6, 2.0]
        } else {
            &[1.0, 1.1, 1.2, 1.3, 1.4, 1.6, 1.8, 2.0, 2.5]
        };
        let points = ctx.stage(Stage::ArchSim, "pitch-sweep", |_| {
            par_map(scales, |&scale| {
                case2_via_pitch(&areas, &base, &workload, &cell, &ilv, scale)
                    .map(|p| (scale, p.n_3d, p.edp_benefit))
                    .map_err(CaseError::internal)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
        })?;
        Ok(CaseOutcome::fresh(obj(vec![
            (
                "via_pitch_crossover",
                Value::F64(cell.via_pitch_crossover(&ilv, 1.0)),
            ),
            (
                "points",
                Value::Array(
                    points
                        .iter()
                        .map(|&(scale, n_3d, edp)| {
                            obj(vec![
                                ("label", Value::Str(format!("x{scale:.1}"))),
                                ("pitch_scale", Value::F64(scale)),
                                ("n_3d", Value::U64(u64::from(n_3d))),
                                ("edp_benefit", Value::F64(edp)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])))
    }
}

// --- future_upper_logic -------------------------------------------------

/// `future_upper_logic` — Case 4: full CMOS logic on the upper M3D
/// layers (the paper's conclusion point 2), swept over upper-tier
/// area/performance relaxation factors.
pub struct FutureUpperLogicCase;

const UPPER_DELTAS: [(f64, f64); 4] = [(1.0, 1.0), (1.3, 1.3), (1.6, 1.6), (2.5, 2.0)];

impl Case for FutureUpperLogicCase {
    fn name(&self) -> &'static str {
        "future_upper_logic"
    }

    fn summary(&self) -> &'static str {
        "Case 4 upper-tier CMOS logic forward projection"
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        reject_unknown(params, &[])
    }

    fn run(&self, ctx: &CaseCtx, _quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        reject_unknown(params, &[])?;
        let areas = BaselineAreas::case_study_64mb();
        let base = ChipParams::baseline_2d();
        let workload = resnet_points();
        let (selector_only, rows) = ctx.stage(Stage::ArchSim, "", |_| {
            // Sec.-II selector-only reference under the same banked
            // semantics.
            let p3 = ChipParams {
                n_cs: 8,
                bandwidth: base.bandwidth * 8.0,
                traffic: MemoryTraffic::Partitioned,
                idle_gated: true,
                ..base
            };
            let selector_only = workload_edp_benefit(&base, &p3, &workload);
            let rows = UPPER_DELTAS
                .iter()
                .map(|&(da, dp)| {
                    case4_upper_logic(&areas, &base, &workload, da, dp)
                        .map(|p| (da, dp, p))
                        .map_err(CaseError::internal)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok::<_, CaseError>((selector_only, rows))
        })?;
        Ok(CaseOutcome::fresh(obj(vec![
            ("selector_only_edp", Value::F64(selector_only)),
            (
                "points",
                Value::Array(
                    rows.iter()
                        .map(|(da, dp, p)| {
                            obj(vec![
                                ("label", Value::Str(format!("da={da} dp={dp}"))),
                                ("delta_area", Value::F64(*da)),
                                ("delta_perf", Value::F64(*dp)),
                                ("n_si", Value::U64(u64::from(p.n_si))),
                                ("n_upper", Value::U64(u64::from(p.n_upper))),
                                ("n_effective", Value::F64(p.n_effective)),
                                ("edp_benefit", Value::F64(p.edp_benefit)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])))
    }
}

// --- sensitivity_analysis -----------------------------------------------

/// `sensitivity_analysis` — Monte-Carlo robustness of the headline EDP
/// benefit under ±20 % coherent perturbation of the technology
/// constants, per evaluation model.
pub struct SensitivityAnalysisCase;

/// Typed parameters of [`SensitivityAnalysisCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensitivityAnalysisParams {
    /// Monte-Carlo samples per workload.
    pub samples: u32,
    /// Deterministic perturbation seed.
    pub seed: u64,
}

impl SensitivityAnalysisParams {
    /// Parses and range-checks the wire params.
    ///
    /// # Errors
    ///
    /// [`m3d_core::ErrorCode::BadRequest`]-coded on malformed or
    /// out-of-range values.
    pub fn parse(quick: bool, params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["samples", "seed"])?;
        Ok(Self {
            samples: u32::try_from(param_u64(
                params,
                "samples",
                if quick { 200 } else { 2000 },
                50_000,
            )?)
            .expect("bounded")
            .max(1),
            seed: param_u64(params, "seed", 2023, u64::MAX)?,
        })
    }
}

impl Case for SensitivityAnalysisCase {
    fn name(&self) -> &'static str {
        "sensitivity_analysis"
    }

    fn summary(&self) -> &'static str {
        "±20 % Monte-Carlo robustness of the EDP benefit"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[
            ParamField {
                name: "samples",
                default: "200 (quick) / 2000",
            },
            ParamField {
                name: "seed",
                default: "2023",
            },
        ]
    }

    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError> {
        SensitivityAnalysisParams::parse(quick, params).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = SensitivityAnalysisParams::parse(quick, params)?;
        let base = ChipParams::baseline_2d();
        let m3d = ChipParams::m3d(8);
        let results = ctx.stage(Stage::ArchSim, "", |_| {
            models::evaluation_models()
                .into_iter()
                .map(|w| {
                    let points: Vec<WorkloadPoint> = w
                        .layers
                        .iter()
                        .map(|l| WorkloadPoint::from_layer(l, 8, 16))
                        .collect();
                    let r = edp_benefit_sensitivity(
                        &base,
                        &m3d,
                        &points,
                        &Perturbation::twenty_percent(),
                        p.samples as usize,
                        p.seed,
                    )
                    .map_err(CaseError::internal)?;
                    Ok::<(String, SensitivityResult), CaseError>((w.name.clone(), r))
                })
                .collect::<Result<Vec<_>, _>>()
        })?;
        Ok(CaseOutcome::fresh(obj(vec![
            ("samples", Value::U64(u64::from(p.samples))),
            ("seed", Value::U64(p.seed)),
            (
                "workloads",
                Value::Array(
                    results
                        .iter()
                        .map(|(name, r)| {
                            obj(vec![
                                ("name", Value::Str(name.clone())),
                                ("nominal", Value::F64(r.nominal)),
                                ("mean", Value::F64(r.mean)),
                                ("std_dev", Value::F64(r.std_dev)),
                                ("p5", Value::F64(r.p5)),
                                ("p95", Value::F64(r.p95)),
                                ("min", Value::F64(r.min)),
                                ("max", Value::F64(r.max)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])))
    }
}
