//! The paper experiments as registered [`Case`](crate::registry::Case)
//! impls: every table and figure the binaries in `src/bin/` regenerate
//! lives here, so the registry is the single source of truth for case
//! names, parameter schemas and JSON payloads. The binaries are thin
//! drivers over [`crate::cli::case_main`]; the `m3d-serve` service
//! dispatches the same impls over the wire.
//!
//! Cases run against the shared caches in a
//! [`CaseCtx`](crate::registry::CaseCtx) and report their coarse stages
//! through [`CaseCtx::stage`](crate::registry::CaseCtx::stage), so CLI
//! runs carry the `--trace-json` span tree while service runs execute
//! detached.

mod arch;
mod explore;
mod flows;
mod ingest;
mod thermal;

pub use arch::{
    AblationBatchCase, AblationDataflowCase, AblationPrecisionCase, ExtensionMobilenetCase,
    Fig5ModelsCase, Fig7ArchitecturesCase, Fig8BwCsCase, ProjectionNodesCase, Table1Params,
    Table1Resnet18Case,
};
pub use explore::{
    Fig10RelaxationCase, FutureUpperLogicCase, Obs3SramBaselineCase, Obs8ViaPitchCase,
    SensitivityAnalysisCase, SensitivityAnalysisParams,
};
pub use flows::{
    AblationCongestionCase, CornersSignoffCase, CornersSignoffParams, Fig2PhysicalDesignCase,
    FlowSensitivityCase, FlowSensitivityParams, FoldingAblationCase,
};
pub use ingest::{IngestCase, IngestParams, MAX_SOURCE_BYTES};
pub use thermal::Obs10ThermalCase;

use m3d_netlist::{CsConfig, PeConfig};

/// The scaled-down (quick) vs paper-sized computing sub-system shared by
/// every flow-running experiment.
pub(crate) fn case_cs(quick: bool) -> CsConfig {
    if quick {
        CsConfig {
            rows: 4,
            cols: 4,
            pe: PeConfig::default(),
            global_buffer_kb: 64,
            local_buffer_kb: 8,
        }
    } else {
        CsConfig::default()
    }
}
