//! The experiment case registry: every serveable experiment, by name.
//!
//! The bench binaries and the `m3d-serve` experiment service share this
//! dispatch table. A [`Case`] names one parameterised experiment — a
//! physical-design flow, an exploration sweep, a Monte-Carlo sensitivity
//! run, a thermal tier-cap solve — and runs it against the *shared*
//! process-wide caches in a [`CaseCtx`], so identical configurations are
//! computed once however many callers (CLI invocations, service
//! requests, sweep workers) ask.
//!
//! Each case is one trait impl over a **typed params struct**: the wire
//! [`serde::Value`] is parsed once into the struct (range-checked, with
//! quick-mode defaults), and the execution logic takes the struct — so
//! adding a case is one `impl Case` plus a registry line, and parameter
//! validation cannot drift from execution. Result construction uses
//! fixed field order so a case's payload is **byte-identical** for
//! identical parameters — across runs, worker counts and server
//! instances (an acceptance criterion of the service).

use std::sync::Mutex;

use m3d_arch::models;
use m3d_core::cases::BaselineAreas;
use m3d_core::engine::{FetchOpts, FlowCache, FlowFetch, Pipeline, Stage, StageCtx};
use m3d_core::explore::{capacity_sweep, tier_sweep};
use m3d_core::framework::{ChipParams, WorkloadPoint};
use m3d_core::sensitivity::{edp_benefit_sensitivity, Perturbation};
use m3d_core::thermal::ThermalModel;
use m3d_core::{ErrorCode, TierThermalModel};
use m3d_netlist::CsConfig;
use m3d_pd::FlowConfig;
use m3d_tech::{LayerStack, Pdk};
use m3d_thermal::{GridConfig, PowerMap, SolverConfig, ThermalCache};
use serde::Value;

use crate::cases;

/// Shared evaluation backend a case runs against, optionally carrying a
/// [`Pipeline`] to instrument the run's coarse stages.
pub struct CaseCtx<'a> {
    /// Process-wide flow memo (optionally disk-backed, `M3D_CACHE_DIR`).
    pub flows: &'a FlowCache,
    /// Process-wide steady-solve memo.
    pub thermals: &'a ThermalCache,
    /// Stage instrumentation sink, when the caller collects one (the CLI
    /// driver does; the service runs cases detached).
    pipeline: Option<&'a Mutex<Pipeline>>,
}

impl<'a> CaseCtx<'a> {
    /// A context over the shared caches, with no stage instrumentation.
    pub fn new(flows: &'a FlowCache, thermals: &'a ThermalCache) -> Self {
        Self {
            flows,
            thermals,
            pipeline: None,
        }
    }

    /// Attaches a pipeline: subsequent [`CaseCtx::stage`] calls record
    /// timings and spans on it.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: &'a Mutex<Pipeline>) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Runs `f` as an instrumented `stage` when a pipeline is attached,
    /// or against a detached [`StageCtx`] (marks and spans dropped)
    /// otherwise. Stages must not nest — the pipeline is mutex-guarded.
    pub fn stage<T>(&self, stage: Stage, label: &str, f: impl FnOnce(&mut StageCtx) -> T) -> T {
        match self.pipeline {
            Some(pipe) => pipe
                .lock()
                .expect("pipeline poisoned")
                .stage(stage, label, f),
            None => f(&mut StageCtx::detached()),
        }
    }
}

/// A finished case run.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// Deterministic result payload (byte-identical for identical
    /// parameters).
    pub result: Value,
    /// Satisfied from a shared cache rather than recomputed.
    pub cache_hit: bool,
    /// Joined another caller's in-flight computation.
    pub coalesced: bool,
}

impl CaseOutcome {
    pub(crate) fn fresh(result: Value) -> Self {
        Self {
            result,
            cache_hit: false,
            coalesced: false,
        }
    }
}

/// A case failure, classified by the shared [`ErrorCode`] the service
/// maps onto its wire protocol ([`ErrorCode::BadRequest`] for parameter
/// errors, [`ErrorCode::Internal`] for evaluation failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseError {
    /// Failure category (carries the wire name and numeric status).
    pub code: ErrorCode,
    /// Human-readable cause.
    pub message: String,
}

impl CaseError {
    pub(crate) fn bad_request(message: impl Into<String>) -> Self {
        Self {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }

    pub(crate) fn internal(err: impl std::fmt::Display) -> Self {
        Self {
            code: ErrorCode::Internal,
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for CaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for CaseError {}

/// One declared parameter of a case, for registry-served listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamField {
    /// Wire field name.
    pub name: &'static str,
    /// Human-readable default (quick-mode value where they differ).
    pub default: &'static str,
}

/// One registered experiment: a wire name, a summary, and a run method
/// that parses its typed params from the wire `Value` and executes
/// against the shared caches.
///
/// Implementations are stateless unit structs; per-run state lives in
/// the typed params struct their `run` parses. The same impl serves the
/// CLI binaries, the NDJSON service, and in-process callers.
pub trait Case: Sync {
    /// Wire name (`"pd_flow"`, `"tier_sweep"`, …).
    fn name(&self) -> &'static str;

    /// One-line description for listings.
    fn summary(&self) -> &'static str;

    /// The case's parameter schema, for the `cases` admin listing.
    fn param_fields(&self) -> &'static [ParamField] {
        &[]
    }

    /// Parses `params` without running anything: the cheap front-door
    /// check the service applies before a request occupies a worker.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`]-coded for malformed, unknown or
    /// out-of-range parameters.
    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError>;

    /// Parses `params` (quick-mode defaults when `quick`) and runs the
    /// experiment against the shared caches in `ctx`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`]-coded for malformed or out-of-range
    /// parameters, [`ErrorCode::Internal`]-coded for evaluation
    /// failures.
    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError>;
}

/// The dispatch table, in stable order: the six service primitives
/// first, then the `ingest` workload front door, then the paper
/// experiments in their `EXPERIMENTS.md` order.
pub fn registry() -> &'static [&'static dyn Case] {
    &[
        &PdFlowCase,
        &TierSweepCase,
        &CapacitySweepCase,
        &SensitivityCase,
        &ThermalCapCase,
        &SleepCase,
        &cases::IngestCase,
        &cases::Fig2PhysicalDesignCase,
        &cases::Fig5ModelsCase,
        &cases::Table1Resnet18Case,
        &cases::Fig7ArchitecturesCase,
        &cases::Fig8BwCsCase,
        &cases::Fig10RelaxationCase,
        &cases::Obs3SramBaselineCase,
        &cases::Obs8ViaPitchCase,
        &cases::Obs10ThermalCase,
        &cases::ProjectionNodesCase,
        &cases::AblationDataflowCase,
        &cases::AblationPrecisionCase,
        &cases::AblationBatchCase,
        &cases::AblationCongestionCase,
        &cases::FlowSensitivityCase,
        &cases::SensitivityAnalysisCase,
        &cases::FoldingAblationCase,
        &cases::CornersSignoffCase,
        &cases::ExtensionMobilenetCase,
        &cases::FutureUpperLogicCase,
    ]
}

/// Looks a case up by wire name.
pub fn find(name: &str) -> Option<&'static dyn Case> {
    registry().iter().copied().find(|c| c.name() == name)
}

// --- parameter extraction ----------------------------------------------

pub(crate) fn field<'v>(params: &'v Value, key: &str) -> Option<&'v Value> {
    match params {
        Value::Object(_) => params.get(key),
        _ => None,
    }
}

/// Rejects params that are not `Null`/an object, and object keys outside
/// `allowed` — so typos surface as [`ErrorCode::BadRequest`] on the wire
/// instead of silently running defaults.
pub(crate) fn reject_unknown(params: &Value, allowed: &[&str]) -> Result<(), CaseError> {
    match params {
        Value::Null => Ok(()),
        Value::Object(fields) => {
            for (key, _) in fields {
                if !allowed.contains(&key.as_str()) {
                    return Err(CaseError::bad_request(format!(
                        "unknown parameter `{key}` (expected one of: {})",
                        allowed.join(", ")
                    )));
                }
            }
            Ok(())
        }
        _ => Err(CaseError::bad_request(
            "params must be a JSON object or null",
        )),
    }
}

pub(crate) fn param_u64(
    params: &Value,
    key: &str,
    default: u64,
    max: u64,
) -> Result<u64, CaseError> {
    match field(params, key) {
        None => Ok(default),
        Some(v) => match v.as_u64() {
            Some(u) if u <= max => Ok(u),
            Some(u) => Err(CaseError::bad_request(format!(
                "parameter `{key}` = {u} exceeds the limit {max}"
            ))),
            None => Err(CaseError::bad_request(format!(
                "parameter `{key}` must be a non-negative integer"
            ))),
        },
    }
}

pub(crate) fn param_f64(
    params: &Value,
    key: &str,
    default: f64,
    range: (f64, f64),
) -> Result<f64, CaseError> {
    match field(params, key) {
        None => Ok(default),
        Some(v) => match v.as_f64() {
            Some(f) if f.is_finite() && f >= range.0 && f <= range.1 => Ok(f),
            _ => Err(CaseError::bad_request(format!(
                "parameter `{key}` must be a finite number in [{}, {}]",
                range.0, range.1
            ))),
        },
    }
}

pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

pub(crate) fn resnet_points() -> Vec<WorkloadPoint> {
    models::resnet18()
        .layers
        .iter()
        .map(|l| WorkloadPoint::from_layer(l, 8, 16))
        .collect()
}

// --- pd_flow ------------------------------------------------------------

/// `pd_flow` — one RTL-to-GDS implementation through the shared
/// [`FlowCache`], single-flight coalesced.
pub struct PdFlowCase;

/// Typed parameters of [`PdFlowCase`].
#[derive(Debug, Clone, PartialEq)]
pub struct PdFlowParams {
    /// Computing sub-systems (0 = 2D baseline).
    pub n_cs: u32,
    /// PE array rows.
    pub rows: usize,
    /// PE array columns.
    pub cols: usize,
    /// Global buffer size (0 = the netlist default).
    pub global_buffer_kb: u64,
    /// Switching activity override in percent (≤ 0 = flow default).
    pub activity_pct: f64,
    /// Reduced-effort flow.
    pub quick: bool,
}

impl PdFlowParams {
    /// Parses and range-checks the wire params.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`]-coded on malformed or out-of-range
    /// values.
    pub fn parse(quick: bool, params: &Value) -> Result<Self, CaseError> {
        reject_unknown(
            params,
            &["n_cs", "rows", "cols", "global_buffer_kb", "activity_pct"],
        )?;
        let default_dim = if quick {
            4
        } else {
            CsConfig::default().rows as u64
        };
        Ok(Self {
            n_cs: u32::try_from(param_u64(params, "n_cs", 0, 64)?).expect("bounded"),
            rows: param_u64(params, "rows", default_dim, 64)? as usize,
            cols: param_u64(params, "cols", default_dim, 64)? as usize,
            global_buffer_kb: param_u64(
                params,
                "global_buffer_kb",
                if quick { 64 } else { 0 },
                1 << 20,
            )?,
            activity_pct: param_f64(params, "activity_pct", -1.0, (0.1, 100.0)).or_else(|e| {
                if field(params, "activity_pct").is_none() {
                    Ok(-1.0)
                } else {
                    Err(e)
                }
            })?,
            quick,
        })
    }

    /// The [`FlowConfig`] these parameters denote.
    pub fn flow_config(&self) -> FlowConfig {
        let mut cfg = if self.n_cs == 0 {
            FlowConfig::baseline_2d()
        } else {
            FlowConfig::m3d(self.n_cs)
        };
        let mut cs = CsConfig {
            rows: self.rows,
            cols: self.cols,
            ..CsConfig::default()
        };
        if self.global_buffer_kb > 0 {
            cs.global_buffer_kb = self.global_buffer_kb;
            cs.local_buffer_kb = cs.local_buffer_kb.min(self.global_buffer_kb);
        }
        cfg = cfg.with_cs(cs);
        if self.quick {
            cfg = cfg.quick();
        }
        if self.activity_pct > 0.0 {
            cfg.activity = self.activity_pct / 100.0;
        }
        cfg
    }
}

impl Case for PdFlowCase {
    fn name(&self) -> &'static str {
        "pd_flow"
    }

    fn summary(&self) -> &'static str {
        "RTL-to-GDS flow of one configuration (shared flow cache)"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[
            ParamField {
                name: "n_cs",
                default: "0",
            },
            ParamField {
                name: "rows",
                default: "4",
            },
            ParamField {
                name: "cols",
                default: "4",
            },
            ParamField {
                name: "global_buffer_kb",
                default: "64",
            },
            ParamField {
                name: "activity_pct",
                default: "flow default",
            },
        ]
    }

    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError> {
        PdFlowParams::parse(quick, params).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let cfg = PdFlowParams::parse(quick, params)?.flow_config();
        let fetch: FlowFetch = ctx.stage(Stage::PdFlow, "", |sctx| {
            let out = ctx.flows.fetch(&cfg, FetchOpts::report());
            if let Ok(fetch) = &out {
                sctx.mark(fetch.provenance());
                if !fetch.reused() {
                    if let Some(sub) = ctx.flows.sub_span(&cfg) {
                        sctx.child_span((*sub).clone());
                    }
                }
            }
            out.map_err(CaseError::internal)
        })?;
        let r = &*fetch.report;
        Ok(CaseOutcome {
            result: obj(vec![
                ("design", Value::Str(r.design.clone())),
                ("cs_count", Value::U64(u64::from(r.cs_count))),
                ("die_mm2", Value::F64(r.die_mm2)),
                ("cell_count", Value::U64(r.cell_count as u64)),
                ("wirelength_m", Value::F64(r.wirelength_m)),
                ("signal_ilvs", Value::U64(r.signal_ilvs)),
                ("critical_path_ns", Value::F64(r.critical_path_ns)),
                ("timing_met", Value::Bool(r.timing_met)),
                ("total_power_mw", Value::F64(r.total_power_mw)),
                ("upper_tier_fraction", Value::F64(r.upper_tier_fraction)),
            ]),
            cache_hit: fetch.cache_hit,
            coalesced: fetch.coalesced,
        })
    }
}

// --- tier_sweep ---------------------------------------------------------

/// `tier_sweep` — Fig. 10d: EDP benefit vs interleaved tier pairs over
/// ResNet-18.
pub struct TierSweepCase;

/// Typed parameters of [`TierSweepCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSweepParams {
    /// Largest interleaved pair count explored.
    pub max_pairs: u32,
}

impl TierSweepParams {
    /// Parses and range-checks the wire params.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`]-coded on malformed or out-of-range
    /// values.
    pub fn parse(quick: bool, params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["max_pairs"])?;
        let default_pairs = if quick { 4 } else { 8 };
        Ok(Self {
            max_pairs: u32::try_from(param_u64(params, "max_pairs", default_pairs, 16)?)
                .expect("bounded")
                .max(1),
        })
    }
}

fn tier_points(points: &[m3d_core::cases::TierPoint]) -> Value {
    Value::Array(
        points
            .iter()
            .map(|p| {
                obj(vec![
                    ("tiers", Value::U64(u64::from(p.tiers))),
                    ("n_cs", Value::U64(u64::from(p.n_cs))),
                    ("edp_benefit", Value::F64(p.edp_benefit)),
                ])
            })
            .collect(),
    )
}

impl Case for TierSweepCase {
    fn name(&self) -> &'static str {
        "tier_sweep"
    }

    fn summary(&self) -> &'static str {
        "Fig. 10d interleaved tier-pair exploration sweep"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[ParamField {
            name: "max_pairs",
            default: "4 (quick) / 8",
        }]
    }

    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError> {
        TierSweepParams::parse(quick, params).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = TierSweepParams::parse(quick, params)?;
        let areas = BaselineAreas::case_study_64mb();
        let base = ChipParams::baseline_2d();
        let layer_points = vec![WorkloadPoint::from_layer(
            &m3d_arch::Layer::conv("L4.1 CONV", 512, 512, 3, (7, 7), 1),
            8,
            16,
        )];
        let (whole, layer) = ctx.stage(Stage::ArchSim, "", |_| {
            (
                tier_sweep(&areas, &base, &resnet_points(), p.max_pairs, None),
                tier_sweep(&areas, &base, &layer_points, p.max_pairs, None),
            )
        });
        let last_edp =
            |pts: &[m3d_core::cases::TierPoint]| pts.last().map_or(0.0, |pt| pt.edp_benefit);
        Ok(CaseOutcome::fresh(obj(vec![
            ("max_pairs", Value::U64(u64::from(p.max_pairs))),
            ("plateau_edp_benefit", Value::F64(last_edp(&whole))),
            ("layer_max_edp_benefit", Value::F64(last_edp(&layer))),
            ("points", tier_points(&whole)),
            ("layer_points", tier_points(&layer)),
        ])))
    }
}

// --- capacity_sweep -----------------------------------------------------

/// `capacity_sweep` — Fig. 9: benefits vs baseline RRAM capacity.
pub struct CapacitySweepCase;

/// Typed parameters of [`CapacitySweepCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacitySweepParams {
    /// Ladder ceiling in MB (steps up to it).
    pub max_capacity_mb: u64,
}

impl CapacitySweepParams {
    /// Parses and range-checks the wire params.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`]-coded on malformed or out-of-range
    /// values.
    pub fn parse(quick: bool, params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["max_capacity_mb"])?;
        Ok(Self {
            max_capacity_mb: param_u64(
                params,
                "max_capacity_mb",
                if quick { 32 } else { 128 },
                512,
            )?
            .max(12),
        })
    }

    /// The capacity ladder these parameters denote.
    pub fn ladder(&self) -> Vec<u64> {
        [12u64, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512]
            .into_iter()
            .filter(|&mb| mb <= self.max_capacity_mb)
            .collect()
    }
}

impl Case for CapacitySweepCase {
    fn name(&self) -> &'static str {
        "capacity_sweep"
    }

    fn summary(&self) -> &'static str {
        "Fig. 9 RRAM-capacity ladder"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[ParamField {
            name: "max_capacity_mb",
            default: "32 (quick) / 128",
        }]
    }

    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError> {
        CapacitySweepParams::parse(quick, params).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = CapacitySweepParams::parse(quick, params)?;
        let points = ctx.stage(Stage::ArchSim, "", |_| {
            capacity_sweep(&Pdk::m3d_130nm(), &p.ladder(), &models::resnet18())
                .map_err(CaseError::internal)
        })?;
        let edp_at = |mb: u64| {
            points
                .iter()
                .find(|pt| pt.capacity_mb == mb)
                .map_or(0.0, |pt| pt.edp_benefit)
        };
        Ok(CaseOutcome::fresh(obj(vec![
            ("edp_64mb", Value::F64(edp_at(64))),
            ("edp_128mb", Value::F64(edp_at(128))),
            (
                "points",
                Value::Array(
                    points
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("capacity_mb", Value::U64(p.capacity_mb)),
                                ("n_cs", Value::U64(u64::from(p.n_cs))),
                                ("speedup", Value::F64(p.speedup)),
                                ("edp_benefit", Value::F64(p.edp_benefit)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])))
    }
}

// --- sensitivity --------------------------------------------------------

/// `sensitivity` — seeded ±20 % Monte-Carlo robustness of the ResNet-18
/// EDP benefit.
pub struct SensitivityCase;

/// Typed parameters of [`SensitivityCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensitivityParams {
    /// Monte-Carlo sample count.
    pub samples: usize,
    /// RNG seed (deterministic per seed).
    pub seed: u64,
}

impl SensitivityParams {
    /// Parses and range-checks the wire params.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`]-coded on malformed or out-of-range
    /// values.
    pub fn parse(quick: bool, params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["samples", "seed"])?;
        Ok(Self {
            samples: param_u64(params, "samples", if quick { 100 } else { 1000 }, 50_000)?.max(1)
                as usize,
            seed: param_u64(params, "seed", 2023, u64::MAX)?,
        })
    }
}

impl Case for SensitivityCase {
    fn name(&self) -> &'static str {
        "sensitivity"
    }

    fn summary(&self) -> &'static str {
        "Monte-Carlo EDP-benefit robustness (seeded, deterministic)"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[
            ParamField {
                name: "samples",
                default: "100 (quick) / 1000",
            },
            ParamField {
                name: "seed",
                default: "2023",
            },
        ]
    }

    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError> {
        SensitivityParams::parse(quick, params).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = SensitivityParams::parse(quick, params)?;
        let r = ctx.stage(Stage::ArchSim, "", |_| {
            edp_benefit_sensitivity(
                &ChipParams::baseline_2d(),
                &ChipParams::m3d(8),
                &resnet_points(),
                &Perturbation::twenty_percent(),
                p.samples,
                p.seed,
            )
            .map_err(CaseError::internal)
        })?;
        Ok(CaseOutcome::fresh(obj(vec![
            ("samples", Value::U64(r.samples as u64)),
            ("seed", Value::U64(p.seed)),
            ("nominal", Value::F64(r.nominal)),
            ("mean", Value::F64(r.mean)),
            ("std_dev", Value::F64(r.std_dev)),
            ("p5", Value::F64(r.p5)),
            ("p95", Value::F64(r.p95)),
            ("min", Value::F64(r.min)),
            ("max", Value::F64(r.max)),
        ])))
    }
}

// --- thermal_cap --------------------------------------------------------

/// `thermal_cap` — Obs. 10: RC-grid temperature rise vs stacked tier
/// pairs through the shared [`ThermalCache`], against the eq. 17
/// analytic cap.
pub struct ThermalCapCase;

/// Typed parameters of [`ThermalCapCase`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalCapParams {
    /// Per-tier power (W).
    pub power_w: f64,
    /// Largest stacked pair count explored.
    pub max_pairs: u32,
    /// Lateral grid resolution per axis.
    pub n_lat: usize,
    /// Temperature-rise budget (K).
    pub budget_k: f64,
}

impl ThermalCapParams {
    /// Parses and range-checks the wire params.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`]-coded on malformed or out-of-range
    /// values.
    pub fn parse(quick: bool, params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["power_w", "max_pairs", "n_lat", "budget_k"])?;
        Ok(Self {
            power_w: param_f64(params, "power_w", 5.0, (0.01, 500.0))?,
            max_pairs: u32::try_from(param_u64(
                params,
                "max_pairs",
                if quick { 4 } else { 8 },
                12,
            )?)
            .expect("bounded")
            .max(1),
            n_lat: param_u64(params, "n_lat", if quick { 4 } else { 8 }, 64)?.max(2) as usize,
            budget_k: param_f64(params, "budget_k", 60.0, (1.0, 500.0))?,
        })
    }
}

impl Case for ThermalCapCase {
    fn name(&self) -> &'static str {
        "thermal_cap"
    }

    fn summary(&self) -> &'static str {
        "Obs. 10 RC-grid tier cap (shared thermal cache)"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[
            ParamField {
                name: "power_w",
                default: "5.0",
            },
            ParamField {
                name: "max_pairs",
                default: "4 (quick) / 8",
            },
            ParamField {
                name: "n_lat",
                default: "4 (quick) / 8",
            },
            ParamField {
                name: "budget_k",
                default: "60.0",
            },
        ]
    }

    fn validate(&self, quick: bool, params: &Value) -> Result<(), CaseError> {
        ThermalCapParams::parse(quick, params).map(drop)
    }

    fn run(&self, ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = ThermalCapParams::parse(quick, params)?;
        let stack = LayerStack::m3d_130nm();
        let die_mm2 = BaselineAreas::case_study_64mb().total_mm2();
        let solver = SolverConfig::default();
        let mut rows = Vec::new();
        let mut cache_hit = true;
        let mut grid_cap = 0u32;
        let mut capped = false;
        ctx.stage(Stage::Thermal, "", |_| -> Result<(), CaseError> {
            for tiers in 1..=p.max_pairs {
                let grid = GridConfig::from_stack(
                    &stack, die_mm2, p.n_lat, p.n_lat, tiers, 1.0, p.budget_k,
                )
                .map_err(CaseError::internal)?;
                let before = ctx.thermals.stats().hits;
                let sol = ctx
                    .thermals
                    .solve(&grid, &PowerMap::uniform(&grid, p.power_w), &solver)
                    .map_err(CaseError::internal)?;
                cache_hit &= ctx.thermals.stats().hits > before;
                let rise_eq17 = ThermalModel::conventional(p.power_w).temperature_rise(tiers);
                if sol.peak_rise_k <= p.budget_k && !capped {
                    grid_cap = tiers;
                } else {
                    capped = true;
                }
                rows.push(obj(vec![
                    ("tiers", Value::U64(u64::from(tiers))),
                    ("rise_grid_k", Value::F64(sol.peak_rise_k)),
                    ("rise_eq17_k", Value::F64(rise_eq17)),
                ]));
            }
            Ok(())
        })?;
        let eq17_cap = ThermalModel::conventional(p.power_w)
            .max_tiers()
            .map_or(Value::Null, |c| Value::U64(u64::from(c)));
        Ok(CaseOutcome {
            result: obj(vec![
                ("power_w", Value::F64(p.power_w)),
                ("budget_k", Value::F64(p.budget_k)),
                ("cap_grid", Value::U64(u64::from(grid_cap))),
                ("cap_eq17", eq17_cap),
                ("rises", Value::Array(rows)),
            ]),
            cache_hit,
            coalesced: false,
        })
    }
}

// --- sleep --------------------------------------------------------------

/// `sleep` — stalls a worker deterministically. Exists so load
/// generators and the backpressure tests can occupy the service.
pub struct SleepCase;

/// Typed parameters of [`SleepCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SleepParams {
    /// Stall duration (bounded).
    pub ms: u64,
    /// Distinguishes otherwise-identical requests.
    pub tag: u64,
}

impl SleepParams {
    /// Parses and range-checks the wire params.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`]-coded on malformed or out-of-range
    /// values.
    pub fn parse(params: &Value) -> Result<Self, CaseError> {
        reject_unknown(params, &["ms", "tag"])?;
        Ok(Self {
            ms: param_u64(params, "ms", 10, 5_000)?,
            tag: param_u64(params, "tag", 0, u64::MAX)?,
        })
    }
}

impl Case for SleepCase {
    fn name(&self) -> &'static str {
        "sleep"
    }

    fn summary(&self) -> &'static str {
        "diagnostic stall (load generation and backpressure tests)"
    }

    fn param_fields(&self) -> &'static [ParamField] {
        &[
            ParamField {
                name: "ms",
                default: "10",
            },
            ParamField {
                name: "tag",
                default: "0",
            },
        ]
    }

    fn validate(&self, _quick: bool, params: &Value) -> Result<(), CaseError> {
        SleepParams::parse(params).map(drop)
    }

    fn run(&self, _ctx: &CaseCtx, _quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
        let p = SleepParams::parse(params)?;
        std::thread::sleep(std::time::Duration::from_millis(p.ms));
        Ok(CaseOutcome::fresh(obj(vec![
            ("slept_ms", Value::U64(p.ms)),
            ("tag", Value::U64(p.tag)),
        ])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_caches() -> (FlowCache, ThermalCache) {
        (FlowCache::new(), ThermalCache::new())
    }

    fn run(name: &str, quick: bool, params: Value) -> Result<CaseOutcome, CaseError> {
        let (flows, thermals) = ctx_caches();
        let ctx = CaseCtx::new(&flows, &thermals);
        find(name).expect("registered").run(&ctx, quick, &params)
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = registry().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(find(n).is_some());
            assert!(!find(n).unwrap().summary().is_empty());
        }
        assert!(find("no_such_case").is_none());
    }

    #[test]
    fn tier_sweep_returns_requested_pairs() {
        let out = run("tier_sweep", true, Value::Null).unwrap();
        let points = out.result.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 4, "quick default max_pairs");
        assert!(points[0].get("edp_benefit").unwrap().as_f64().unwrap() > 1.0);
    }

    #[test]
    fn identical_params_produce_identical_payload_bytes() {
        let a = run("sensitivity", true, Value::Null).unwrap();
        let b = run("sensitivity", true, Value::Null).unwrap();
        assert_eq!(
            serde_json::to_string(&a.result).unwrap(),
            serde_json::to_string(&b.result).unwrap()
        );
    }

    #[test]
    fn bad_parameters_are_rejected_not_crashed() {
        let err = run(
            "thermal_cap",
            true,
            obj(vec![("power_w", Value::F64(-3.0))]),
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(err.code.status(), 400);
        let err = run("sleep", true, obj(vec![("ms", Value::Str("long".into()))])).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn typed_params_parse_defaults_and_reject_out_of_range() {
        let p = PdFlowParams::parse(true, &Value::Null).unwrap();
        assert_eq!((p.rows, p.cols), (4, 4), "quick-mode default PE array");
        assert_eq!(p.global_buffer_kb, 64);
        assert!(p.quick);
        let err = PdFlowParams::parse(true, &obj(vec![("rows", Value::U64(65))])).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);

        let s = SensitivityParams::parse(false, &Value::Null).unwrap();
        assert_eq!((s.samples, s.seed), (1000, 2023));

        let t = ThermalCapParams::parse(true, &Value::Null).unwrap();
        assert_eq!((t.max_pairs, t.n_lat), (4, 4));
    }

    #[test]
    fn typed_params_drive_the_same_flow_config_as_the_wire_path() {
        // Two PdFlowParams parsed from equal wire params key the same
        // cache entry — the typed layer cannot drift from dispatch.
        let a = PdFlowParams::parse(true, &Value::Null).unwrap();
        let b = PdFlowParams::parse(true, &obj(vec![])).unwrap();
        assert_eq!(a.flow_config().stable_key(), b.flow_config().stable_key());
    }

    #[test]
    fn thermal_cap_shares_the_cache() {
        let (flows, thermals) = ctx_caches();
        let ctx = CaseCtx::new(&flows, &thermals);
        let case = find("thermal_cap").unwrap();
        let first = case.run(&ctx, true, &Value::Null).unwrap();
        assert!(!first.cache_hit);
        let second = case.run(&ctx, true, &Value::Null).unwrap();
        assert!(second.cache_hit, "every solve replayed from the memo");
        assert_eq!(first.result, second.result);
    }

    #[test]
    fn pd_flow_uses_the_flow_cache() {
        let (flows, thermals) = ctx_caches();
        let ctx = CaseCtx::new(&flows, &thermals);
        let case = find("pd_flow").unwrap();
        let first = case.run(&ctx, true, &Value::Null).unwrap();
        let second = case.run(&ctx, true, &Value::Null).unwrap();
        assert!(!first.cache_hit && second.cache_hit);
        assert_eq!(flows.stats().misses, 1);
        assert_eq!(first.result, second.result);
        // Structurally different parameters miss.
        let other = case
            .run(&ctx, true, &obj(vec![("activity_pct", Value::F64(31.0))]))
            .unwrap();
        assert!(!other.cache_hit);
        assert_ne!(other.result, first.result);
    }
}
