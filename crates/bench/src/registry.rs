//! The experiment case registry: every serveable experiment, by name.
//!
//! The bench binaries and the `m3d-serve` experiment service share this
//! dispatch table. A [`CaseSpec`] names one parameterised experiment —
//! a physical-design flow, an exploration sweep, a Monte-Carlo
//! sensitivity run, a thermal tier-cap solve — and runs it against the
//! *shared* process-wide caches in a [`CaseCtx`], so identical
//! configurations are computed once however many callers (CLI
//! invocations, service requests, sweep workers) ask.
//!
//! Parameters and results travel as [`serde::Value`] trees: the service
//! moves them over its NDJSON wire unchanged, and result construction
//! uses fixed field order so a case's payload is **byte-identical** for
//! identical parameters — across runs, worker counts and server
//! instances (an acceptance criterion of the service).

use m3d_arch::models;
use m3d_core::cases::BaselineAreas;
use m3d_core::engine::{FlowCache, FlowFetch};
use m3d_core::explore::{capacity_sweep, tier_sweep};
use m3d_core::framework::{ChipParams, WorkloadPoint};
use m3d_core::sensitivity::{edp_benefit_sensitivity, Perturbation};
use m3d_core::thermal::ThermalModel;
use m3d_core::TierThermalModel;
use m3d_netlist::CsConfig;
use m3d_pd::FlowConfig;
use m3d_tech::{LayerStack, Pdk};
use m3d_thermal::{GridConfig, PowerMap, SolverConfig, ThermalCache};
use serde::Value;

/// Shared evaluation backend a case runs against.
pub struct CaseCtx<'a> {
    /// Process-wide flow memo (optionally disk-backed, `M3D_CACHE_DIR`).
    pub flows: &'a FlowCache,
    /// Process-wide steady-solve memo.
    pub thermals: &'a ThermalCache,
}

/// A finished case run.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// Deterministic result payload (byte-identical for identical
    /// parameters).
    pub result: Value,
    /// Satisfied from a shared cache rather than recomputed.
    pub cache_hit: bool,
    /// Joined another caller's in-flight computation.
    pub coalesced: bool,
}

impl CaseOutcome {
    fn fresh(result: Value) -> Self {
        Self {
            result,
            cache_hit: false,
            coalesced: false,
        }
    }
}

/// A case failure, with an HTTP-flavoured status code the service maps
/// onto its wire protocol (`400` bad parameters, `500` internal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseError {
    /// `400` for parameter errors, `500` for evaluation failures.
    pub code: u16,
    /// Human-readable cause.
    pub message: String,
}

impl CaseError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            code: 400,
            message: message.into(),
        }
    }

    fn internal(err: impl std::fmt::Display) -> Self {
        Self {
            code: 500,
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for CaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for CaseError {}

/// Signature every registered case implements.
pub type CaseFn = fn(&CaseCtx, bool, &Value) -> Result<CaseOutcome, CaseError>;

/// One entry of the dispatch table.
pub struct CaseSpec {
    /// Wire name (`"pd_flow"`, `"tier_sweep"`, …).
    pub name: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    /// The implementation; receives `(ctx, quick, params)`.
    pub run: CaseFn,
}

/// The dispatch table, in stable order.
pub fn registry() -> &'static [CaseSpec] {
    &[
        CaseSpec {
            name: "pd_flow",
            summary: "RTL-to-GDS flow of one configuration (shared flow cache)",
            run: run_pd_flow,
        },
        CaseSpec {
            name: "tier_sweep",
            summary: "Fig. 10d interleaved tier-pair exploration sweep",
            run: run_tier_sweep,
        },
        CaseSpec {
            name: "capacity_sweep",
            summary: "Fig. 9 RRAM-capacity ladder",
            run: run_capacity_sweep,
        },
        CaseSpec {
            name: "sensitivity",
            summary: "Monte-Carlo EDP-benefit robustness (seeded, deterministic)",
            run: run_sensitivity,
        },
        CaseSpec {
            name: "thermal_cap",
            summary: "Obs. 10 RC-grid tier cap (shared thermal cache)",
            run: run_thermal_cap,
        },
        CaseSpec {
            name: "sleep",
            summary: "diagnostic stall (load generation and backpressure tests)",
            run: run_sleep,
        },
    ]
}

/// Looks a case up by wire name.
pub fn find(name: &str) -> Option<&'static CaseSpec> {
    registry().iter().find(|c| c.name == name)
}

// --- parameter extraction ----------------------------------------------

fn field<'v>(params: &'v Value, key: &str) -> Option<&'v Value> {
    match params {
        Value::Object(_) => params.get(key),
        _ => None,
    }
}

fn param_u64(params: &Value, key: &str, default: u64, max: u64) -> Result<u64, CaseError> {
    match field(params, key) {
        None => Ok(default),
        Some(v) => match v.as_u64() {
            Some(u) if u <= max => Ok(u),
            Some(u) => Err(CaseError::bad_request(format!(
                "parameter `{key}` = {u} exceeds the limit {max}"
            ))),
            None => Err(CaseError::bad_request(format!(
                "parameter `{key}` must be a non-negative integer"
            ))),
        },
    }
}

fn param_f64(params: &Value, key: &str, default: f64, range: (f64, f64)) -> Result<f64, CaseError> {
    match field(params, key) {
        None => Ok(default),
        Some(v) => match v.as_f64() {
            Some(f) if f.is_finite() && f >= range.0 && f <= range.1 => Ok(f),
            _ => Err(CaseError::bad_request(format!(
                "parameter `{key}` must be a finite number in [{}, {}]",
                range.0, range.1
            ))),
        },
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn resnet_points() -> Vec<WorkloadPoint> {
    models::resnet18()
        .layers
        .iter()
        .map(|l| WorkloadPoint::from_layer(l, 8, 16))
        .collect()
}

// --- cases --------------------------------------------------------------

/// `pd_flow` — one RTL-to-GDS implementation through the shared
/// [`FlowCache`], single-flight coalesced. Parameters: `n_cs` (0 = 2D
/// baseline), `rows`/`cols` (PE array), `global_buffer_kb`,
/// `activity_pct`.
fn run_pd_flow(ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
    let n_cs = u32::try_from(param_u64(params, "n_cs", 0, 64)?).expect("bounded");
    let default_dim = if quick {
        4
    } else {
        CsConfig::default().rows as u64
    };
    let rows = param_u64(params, "rows", default_dim, 64)? as usize;
    let cols = param_u64(params, "cols", default_dim, 64)? as usize;
    let gb_kb = param_u64(
        params,
        "global_buffer_kb",
        if quick { 64 } else { 0 },
        1 << 20,
    )?;
    let activity_pct = param_f64(params, "activity_pct", -1.0, (0.1, 100.0)).or_else(|e| {
        if field(params, "activity_pct").is_none() {
            Ok(-1.0)
        } else {
            Err(e)
        }
    })?;

    let mut cfg = if n_cs == 0 {
        FlowConfig::baseline_2d()
    } else {
        FlowConfig::m3d(n_cs)
    };
    let mut cs = CsConfig {
        rows,
        cols,
        ..CsConfig::default()
    };
    if gb_kb > 0 {
        cs.global_buffer_kb = gb_kb;
        cs.local_buffer_kb = cs.local_buffer_kb.min(gb_kb);
    }
    cfg = cfg.with_cs(cs);
    if quick {
        cfg = cfg.quick();
    }
    if activity_pct > 0.0 {
        cfg.activity = activity_pct / 100.0;
    }

    let (report, fetch): (_, FlowFetch) = ctx
        .flows
        .run_report_coalesced(&cfg)
        .map_err(CaseError::internal)?;
    let r = &*report;
    Ok(CaseOutcome {
        result: obj(vec![
            ("design", Value::Str(r.design.clone())),
            ("cs_count", Value::U64(u64::from(r.cs_count))),
            ("die_mm2", Value::F64(r.die_mm2)),
            ("cell_count", Value::U64(r.cell_count as u64)),
            ("wirelength_m", Value::F64(r.wirelength_m)),
            ("signal_ilvs", Value::U64(r.signal_ilvs)),
            ("critical_path_ns", Value::F64(r.critical_path_ns)),
            ("timing_met", Value::Bool(r.timing_met)),
            ("total_power_mw", Value::F64(r.total_power_mw)),
            ("upper_tier_fraction", Value::F64(r.upper_tier_fraction)),
        ]),
        cache_hit: fetch.cache_hit,
        coalesced: fetch.coalesced,
    })
}

/// `tier_sweep` — Fig. 10d: EDP benefit vs interleaved tier pairs over
/// ResNet-18. Parameters: `max_pairs`.
fn run_tier_sweep(_ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
    let default_pairs = if quick { 4 } else { 8 };
    let max_pairs = u32::try_from(param_u64(params, "max_pairs", default_pairs, 16)?)
        .expect("bounded")
        .max(1);
    let points = tier_sweep(
        &BaselineAreas::case_study_64mb(),
        &ChipParams::baseline_2d(),
        &resnet_points(),
        max_pairs,
        None,
    );
    Ok(CaseOutcome::fresh(obj(vec![
        ("max_pairs", Value::U64(u64::from(max_pairs))),
        (
            "points",
            Value::Array(
                points
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("tiers", Value::U64(u64::from(p.tiers))),
                            ("n_cs", Value::U64(u64::from(p.n_cs))),
                            ("edp_benefit", Value::F64(p.edp_benefit)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])))
}

/// `capacity_sweep` — Fig. 9: benefits vs baseline RRAM capacity.
/// Parameters: `max_capacity_mb` (ladder steps up to it).
fn run_capacity_sweep(
    _ctx: &CaseCtx,
    quick: bool,
    params: &Value,
) -> Result<CaseOutcome, CaseError> {
    let cap = param_u64(params, "max_capacity_mb", if quick { 32 } else { 128 }, 512)?.max(12);
    let ladder: Vec<u64> = [12u64, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512]
        .into_iter()
        .filter(|&mb| mb <= cap)
        .collect();
    let points = capacity_sweep(&Pdk::m3d_130nm(), &ladder, &models::resnet18())
        .map_err(CaseError::internal)?;
    Ok(CaseOutcome::fresh(obj(vec![(
        "points",
        Value::Array(
            points
                .iter()
                .map(|p| {
                    obj(vec![
                        ("capacity_mb", Value::U64(p.capacity_mb)),
                        ("n_cs", Value::U64(u64::from(p.n_cs))),
                        ("speedup", Value::F64(p.speedup)),
                        ("edp_benefit", Value::F64(p.edp_benefit)),
                    ])
                })
                .collect(),
        ),
    )])))
}

/// `sensitivity` — seeded ±20 % Monte-Carlo robustness of the ResNet-18
/// EDP benefit. Parameters: `samples`, `seed`.
fn run_sensitivity(_ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
    let samples = param_u64(params, "samples", if quick { 100 } else { 1000 }, 50_000)?.max(1);
    let seed = param_u64(params, "seed", 2023, u64::MAX)?;
    let r = edp_benefit_sensitivity(
        &ChipParams::baseline_2d(),
        &ChipParams::m3d(8),
        &resnet_points(),
        &Perturbation::twenty_percent(),
        samples as usize,
        seed,
    )
    .map_err(CaseError::internal)?;
    Ok(CaseOutcome::fresh(obj(vec![
        ("samples", Value::U64(r.samples as u64)),
        ("seed", Value::U64(seed)),
        ("nominal", Value::F64(r.nominal)),
        ("mean", Value::F64(r.mean)),
        ("std_dev", Value::F64(r.std_dev)),
        ("p5", Value::F64(r.p5)),
        ("p95", Value::F64(r.p95)),
        ("min", Value::F64(r.min)),
        ("max", Value::F64(r.max)),
    ])))
}

/// `thermal_cap` — Obs. 10: RC-grid temperature rise vs stacked tier
/// pairs through the shared [`ThermalCache`], against the eq. 17
/// analytic cap. Parameters: `power_w`, `max_pairs`, `n_lat`,
/// `budget_k`.
fn run_thermal_cap(ctx: &CaseCtx, quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
    let power_w = param_f64(params, "power_w", 5.0, (0.01, 500.0))?;
    let max_pairs = u32::try_from(param_u64(
        params,
        "max_pairs",
        if quick { 4 } else { 8 },
        12,
    )?)
    .expect("bounded")
    .max(1);
    let n_lat = param_u64(params, "n_lat", if quick { 4 } else { 8 }, 64)?.max(2) as usize;
    let budget_k = param_f64(params, "budget_k", 60.0, (1.0, 500.0))?;

    let stack = LayerStack::m3d_130nm();
    let die_mm2 = BaselineAreas::case_study_64mb().total_mm2();
    let solver = SolverConfig::default();
    let mut rows = Vec::new();
    let mut cache_hit = true;
    let mut grid_cap = 0u32;
    let mut capped = false;
    for tiers in 1..=max_pairs {
        let grid = GridConfig::from_stack(&stack, die_mm2, n_lat, n_lat, tiers, 1.0, budget_k)
            .map_err(CaseError::internal)?;
        let before = ctx.thermals.stats().hits;
        let sol = ctx
            .thermals
            .solve(&grid, &PowerMap::uniform(&grid, power_w), &solver)
            .map_err(CaseError::internal)?;
        cache_hit &= ctx.thermals.stats().hits > before;
        let rise_eq17 = ThermalModel::conventional(power_w).temperature_rise(tiers);
        if sol.peak_rise_k <= budget_k && !capped {
            grid_cap = tiers;
        } else {
            capped = true;
        }
        rows.push(obj(vec![
            ("tiers", Value::U64(u64::from(tiers))),
            ("rise_grid_k", Value::F64(sol.peak_rise_k)),
            ("rise_eq17_k", Value::F64(rise_eq17)),
        ]));
    }
    let eq17_cap = ThermalModel::conventional(power_w)
        .max_tiers()
        .map_or(Value::Null, |c| Value::U64(u64::from(c)));
    Ok(CaseOutcome {
        result: obj(vec![
            ("power_w", Value::F64(power_w)),
            ("budget_k", Value::F64(budget_k)),
            ("cap_grid", Value::U64(u64::from(grid_cap))),
            ("cap_eq17", eq17_cap),
            ("rises", Value::Array(rows)),
        ]),
        cache_hit,
        coalesced: false,
    })
}

/// `sleep` — stalls a worker for `ms` milliseconds (bounded). Exists so
/// load generators and the backpressure tests can occupy the service
/// deterministically; `tag` distinguishes otherwise-identical requests.
fn run_sleep(_ctx: &CaseCtx, _quick: bool, params: &Value) -> Result<CaseOutcome, CaseError> {
    let ms = param_u64(params, "ms", 10, 5_000)?;
    let tag = param_u64(params, "tag", 0, u64::MAX)?;
    std::thread::sleep(std::time::Duration::from_millis(ms));
    Ok(CaseOutcome::fresh(obj(vec![
        ("slept_ms", Value::U64(ms)),
        ("tag", Value::U64(tag)),
    ])))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_caches() -> (FlowCache, ThermalCache) {
        (FlowCache::new(), ThermalCache::new())
    }

    fn run(name: &str, quick: bool, params: Value) -> Result<CaseOutcome, CaseError> {
        let (flows, thermals) = ctx_caches();
        let ctx = CaseCtx {
            flows: &flows,
            thermals: &thermals,
        };
        (find(name).expect("registered").run)(&ctx, quick, &params)
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = registry().iter().map(|c| c.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(find(n).is_some());
        }
        assert!(find("no_such_case").is_none());
    }

    #[test]
    fn tier_sweep_returns_requested_pairs() {
        let out = run("tier_sweep", true, Value::Null).unwrap();
        let points = out.result.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 4, "quick default max_pairs");
        assert!(points[0].get("edp_benefit").unwrap().as_f64().unwrap() > 1.0);
    }

    #[test]
    fn identical_params_produce_identical_payload_bytes() {
        let a = run("sensitivity", true, Value::Null).unwrap();
        let b = run("sensitivity", true, Value::Null).unwrap();
        assert_eq!(
            serde_json::to_string(&a.result).unwrap(),
            serde_json::to_string(&b.result).unwrap()
        );
    }

    #[test]
    fn bad_parameters_are_rejected_not_crashed() {
        let err = run(
            "thermal_cap",
            true,
            obj(vec![("power_w", Value::F64(-3.0))]),
        )
        .unwrap_err();
        assert_eq!(err.code, 400);
        let err = run("sleep", true, obj(vec![("ms", Value::Str("long".into()))])).unwrap_err();
        assert_eq!(err.code, 400);
    }

    #[test]
    fn thermal_cap_shares_the_cache() {
        let (flows, thermals) = ctx_caches();
        let ctx = CaseCtx {
            flows: &flows,
            thermals: &thermals,
        };
        let spec = find("thermal_cap").unwrap();
        let first = (spec.run)(&ctx, true, &Value::Null).unwrap();
        assert!(!first.cache_hit);
        let second = (spec.run)(&ctx, true, &Value::Null).unwrap();
        assert!(second.cache_hit, "every solve replayed from the memo");
        assert_eq!(first.result, second.result);
    }

    #[test]
    fn pd_flow_uses_the_flow_cache() {
        let (flows, thermals) = ctx_caches();
        let ctx = CaseCtx {
            flows: &flows,
            thermals: &thermals,
        };
        let spec = find("pd_flow").unwrap();
        let first = (spec.run)(&ctx, true, &Value::Null).unwrap();
        let second = (spec.run)(&ctx, true, &Value::Null).unwrap();
        assert!(!first.cache_hit && second.cache_hit);
        assert_eq!(flows.stats().misses, 1);
        assert_eq!(first.result, second.result);
        // Structurally different parameters miss.
        let other = (spec.run)(&ctx, true, &obj(vec![("activity_pct", Value::F64(31.0))])).unwrap();
        assert!(!other.cache_hit);
        assert_ne!(other.result, first.result);
    }
}
