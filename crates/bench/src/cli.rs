//! Shared command-line driver for the experiment binaries.
//!
//! Every binary is a thin wrapper over [`case_main`], which looks its
//! registered [`Case`](crate::registry::Case) up in the
//! [`registry`](crate::registry::registry) and drives it with the same
//! flags everywhere:
//!
//! * `--quick` — scaled-down configuration for fast smoke runs;
//! * `--set <key>=<value>` — typed case parameter (repeatable); the
//!   value is validated by the case's params schema, so unknown keys and
//!   out-of-range values are rejected exactly like malformed `m3d-serve`
//!   requests;
//! * `--json <path>` — write the [`ExperimentReport`] produced by the run
//!   to `path` (deterministic, byte-reproducible JSON);
//! * `--trace-json <path>` — write the per-stage span tree
//!   ([`m3d_core::obs::trace_document`]) to `path`. The trace carries
//!   span names, nesting, cache provenance and deterministic integer
//!   counters only — no wall-clock numbers — so it is byte-identical
//!   across runs, machines and `M3D_JOBS` values;
//! * `--metrics-json <path>` — write the process-global
//!   [`Recorder`] as the versioned JSON document
//!   ([`m3d_core::obs::metrics_document`]);
//! * `--metrics-text <path>` — write the same recorder in Prometheus
//!   text exposition format ([`m3d_core::obs::render_text`]);
//!
//! and honours the `M3D_JOBS` environment variable for sweep
//! parallelism. Unknown flags are rejected with a usage message
//! (exit 2). On exit each binary prints the per-stage
//! `stage, wall_ms, provenance` summary to stderr via
//! [`Pipeline::eprint_summary`].
//!
//! The metrics artifacts are deterministic for a fixed configuration
//! (sorted names, integers only, no timestamps), but unlike the trace
//! they are *not* byte-identical across `M3D_JOBS` values: the
//! `par_map.workers` histogram genuinely observes how many workers each
//! sweep engaged.

use std::path::PathBuf;
use std::sync::Mutex;

use m3d_core::engine::{jobs, CacheStats, ExperimentReport, FlowCache, Pipeline, Stage};
use m3d_core::obs::{trace_document, Recorder};
use m3d_core::{ErrorCode, ExperimentRecord, Metric};
use m3d_thermal::ThermalCache;
use serde::Value;

use crate::registry::{registry, CaseCtx};

/// Parsed common flags.
#[derive(Debug, Clone, Default)]
pub struct RunArgs {
    /// `--quick`: scaled-down run.
    pub quick: bool,
    /// `--set key=value` pairs, in order of appearance.
    pub sets: Vec<(String, String)>,
    /// `--json <path>`: where to write the experiment report.
    pub json: Option<PathBuf>,
    /// `--trace-json <path>`: where to write the deterministic span
    /// trace.
    pub trace_json: Option<PathBuf>,
    /// `--metrics-json <path>`: where to write the global recorder as
    /// a versioned JSON document.
    pub metrics_json: Option<PathBuf>,
    /// `--metrics-text <path>`: where to write the global recorder in
    /// Prometheus text exposition format.
    pub metrics_text: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: [--quick] [--set key=value ...] [--json <path>] [--trace-json <path>] \
         [--metrics-json <path>] [--metrics-text <path>]"
    );
    std::process::exit(2);
}

impl RunArgs {
    /// Parses the process arguments, exiting with a usage message on
    /// malformed or unknown flags (exit 2).
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        let path = |flag: &str, next: Option<String>| -> PathBuf {
            next.map_or_else(
                || {
                    eprintln!("error: {flag} requires a path argument");
                    usage();
                },
                PathBuf::from,
            )
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--set" => {
                    let Some(pair) = args.next() else {
                        eprintln!("error: --set requires a key=value argument");
                        usage();
                    };
                    let Some((k, v)) = pair.split_once('=') else {
                        eprintln!("error: --set expects key=value, got `{pair}`");
                        usage();
                    };
                    out.sets.push((k.to_owned(), v.to_owned()));
                }
                "--json" => out.json = Some(path("--json", args.next())),
                "--trace-json" => out.trace_json = Some(path("--trace-json", args.next())),
                "--metrics-json" => out.metrics_json = Some(path("--metrics-json", args.next())),
                "--metrics-text" => out.metrics_text = Some(path("--metrics-text", args.next())),
                other => {
                    eprintln!("error: unknown flag `{other}`");
                    usage();
                }
            }
        }
        out
    }

    /// The `--set` pairs as a params object for the typed case schema
    /// (`Value::Null` when no `--set` was given). Values parse as bool,
    /// then integer, then float, falling back to a string.
    pub fn params(&self) -> Value {
        if self.sets.is_empty() {
            return Value::Null;
        }
        Value::Object(
            self.sets
                .iter()
                .map(|(k, v)| (k.clone(), literal(v)))
                .collect(),
        )
    }

    /// Standard epilogue for an experiment binary: assembles the
    /// [`ExperimentReport`] from the finished pipeline, prints the
    /// per-stage timing summary (and sweep worker count) to stderr,
    /// records the run's span tree on the process [`Recorder`], and
    /// writes the JSON report and span trace when `--json` /
    /// `--trace-json` were given.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the JSON files.
    pub fn finalize(
        &self,
        record: ExperimentRecord,
        pipeline: &Pipeline,
        cache: CacheStats,
    ) -> std::io::Result<ExperimentReport> {
        let experiment = record.id.clone();
        let report = ExperimentReport::new(record, pipeline).with_cache(cache);
        pipeline.eprint_summary();
        eprintln!("# jobs: {}", jobs());
        let rec = Recorder::global();
        rec.incr("engine.runs", 1);
        rec.incr("engine.stages", report.stages.len() as u64);
        let root = pipeline.span_tree(&experiment);
        rec.record_span(root.clone());
        if let Some(path) = &self.trace_json {
            let doc = trace_document(&experiment, &root, false);
            let text = serde_json::to_string_pretty(&doc)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            std::fs::write(path, text + "\n")?;
            eprintln!("# trace: {} ({} spans)", path.display(), root.span_count());
        }
        if let Some(path) = &self.json {
            report.write_json(path)?;
            eprintln!("# json: {}", path.display());
        }
        if let Some(path) = &self.metrics_json {
            let doc = m3d_core::obs::metrics_document(rec);
            let text = serde_json::to_string_pretty(&doc)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            std::fs::write(path, text + "\n")?;
            eprintln!("# metrics-json: {}", path.display());
        }
        if let Some(path) = &self.metrics_text {
            std::fs::write(path, m3d_core::obs::render_text(rec))?;
            eprintln!("# metrics-text: {}", path.display());
        }
        Ok(report)
    }
}

/// A `--set` value literal: bool, then unsigned, then signed, then
/// float, falling back to a string.
fn literal(v: &str) -> Value {
    match v {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => v.parse::<u64>().map(Value::U64).unwrap_or_else(|_| {
            v.parse::<i64>().map(Value::I64).unwrap_or_else(|_| {
                v.parse::<f64>()
                    .map(Value::F64)
                    .unwrap_or_else(|_| Value::Str(v.to_owned()))
            })
        }),
    }
}

/// Numeric view of a JSON leaf for the derived record (booleans count
/// as 0/1; strings, nulls and containers are not metrics).
fn as_metric(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        Value::Bool(b) => Some(f64::from(*b)),
        Value::Null | Value::Str(_) | Value::Array(_) | Value::Object(_) => None,
    }
}

/// Derives the archival [`ExperimentRecord`] from a case's result
/// payload: top-level numeric fields become metrics, top-level arrays
/// of objects become rows (the first string field labels each row, the
/// numeric fields become its values, in payload order).
fn derive_record(id: &str, reproduces: &str, result: &Value) -> ExperimentRecord {
    let mut rec = ExperimentRecord::new(id, reproduces);
    let Value::Object(fields) = result else {
        return rec;
    };
    for (key, value) in fields {
        if let Some(num) = as_metric(value) {
            rec = rec.metric(Metric::new(key.clone(), num));
            continue;
        }
        let Value::Array(items) = value else {
            continue;
        };
        for (i, item) in items.iter().enumerate() {
            let Value::Object(cols) = item else {
                continue;
            };
            let label = cols
                .iter()
                .find_map(|(_, v)| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| format!("{key}{i}"));
            let values: Vec<(String, f64)> = cols
                .iter()
                .filter_map(|(name, v)| as_metric(v).map(|num| (name.clone(), num)))
                .collect();
            rec = rec.row(label, values);
        }
    }
    rec
}

/// The whole main of an experiment binary: looks `name` up in the
/// [`registry`], runs it against the process-shared caches with the
/// parsed flags, prints the deterministic result payload to stdout, and
/// finalizes the report/trace/metrics artifacts.
///
/// Exits 2 on parameter errors (the CLI analogue of a `BadRequest`
/// wire rejection) and 1 on evaluation or I/O failures.
pub fn case_main(name: &str, args: RunArgs) {
    let Some(case) = registry().into_iter().find(|c| c.name() == name) else {
        eprintln!("error: case `{name}` is not registered");
        std::process::exit(2);
    };
    let flows = FlowCache::persistent();
    let thermals = ThermalCache::new();
    let pipeline = Mutex::new(Pipeline::new());
    let params = args.params();
    let outcome = {
        let ctx = CaseCtx::new(&flows, &thermals).with_pipeline(&pipeline);
        case.run(&ctx, args.quick, &params)
    };
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(if err.code == ErrorCode::BadRequest {
                2
            } else {
                1
            });
        }
    };
    match serde_json::to_string_pretty(&outcome.result) {
        Ok(text) => println!("{text}"),
        Err(err) => {
            eprintln!("error: result serialization failed: {err}");
            std::process::exit(1);
        }
    }
    let mut pipe = pipeline.into_inner().expect("pipeline poisoned");
    let record = pipe.stage(Stage::Report, "", |_| {
        derive_record(name, case.summary(), &outcome.result)
    });
    let (fs, ts) = (flows.stats(), thermals.stats());
    let cache = CacheStats {
        hits: fs.hits + ts.hits,
        misses: fs.misses + ts.misses,
        disk_hits: fs.disk_hits,
    };
    if let Err(err) = args.finalize(record, &pipe, cache) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_parse_by_narrowest_type() {
        assert_eq!(literal("true"), Value::Bool(true));
        assert_eq!(literal("8"), Value::U64(8));
        assert_eq!(literal("-3"), Value::I64(-3));
        assert_eq!(literal("2.5"), Value::F64(2.5));
        assert_eq!(literal("ss,tt"), Value::Str("ss,tt".to_owned()));
    }

    #[test]
    fn derive_record_extracts_metrics_and_rows() {
        let result = Value::Object(vec![
            ("total".to_owned(), Value::F64(5.66)),
            ("count".to_owned(), Value::U64(3)),
            ("note".to_owned(), Value::Str("skipped".to_owned())),
            (
                "layers".to_owned(),
                Value::Array(vec![Value::Object(vec![
                    ("name".to_owned(), Value::Str("conv1".to_owned())),
                    ("speedup".to_owned(), Value::F64(4.0)),
                ])]),
            ),
        ]);
        let rec = derive_record("t", "test", &result);
        assert_eq!(rec.metrics.len(), 2);
        assert_eq!(rec.metrics[0].name, "total");
        assert_eq!(rec.rows.len(), 1);
        assert_eq!(rec.rows[0].label, "conv1");
        assert_eq!(rec.rows[0].values, vec![("speedup".to_owned(), 4.0)]);
    }
}
