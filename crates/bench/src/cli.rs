//! Shared command-line driver for the engine-ported experiment binaries.
//!
//! Every ported binary accepts the same flags:
//!
//! * `--quick` — scaled-down configuration for fast smoke runs;
//! * `--json <path>` — write the [`ExperimentReport`] produced by the run
//!   to `path` (deterministic, byte-reproducible JSON);
//! * `--trace-json <path>` — write the per-stage span tree
//!   ([`m3d_core::obs::trace_document`]) to `path`. The trace carries
//!   span names, nesting, cache provenance and deterministic integer
//!   counters only — no wall-clock numbers — so it is byte-identical
//!   across runs, machines and `M3D_JOBS` values;
//! * `--metrics-json <path>` — write the process-global
//!   [`Recorder`] as the versioned JSON document
//!   ([`m3d_core::obs::metrics_document`]);
//! * `--metrics-text <path>` — write the same recorder in Prometheus
//!   text exposition format ([`m3d_core::obs::render_text`]);
//!
//! and honours the `M3D_JOBS` environment variable for sweep
//! parallelism. On exit each binary prints the per-stage
//! `stage, wall_ms, provenance` summary to stderr via
//! [`Pipeline::eprint_summary`].
//!
//! The metrics artifacts are deterministic for a fixed configuration
//! (sorted names, integers only, no timestamps), but unlike the trace
//! they are *not* byte-identical across `M3D_JOBS` values: the
//! `par_map.workers` histogram genuinely observes how many workers each
//! sweep engaged.

use std::path::PathBuf;

use m3d_core::engine::{jobs, CacheStats, ExperimentReport, Pipeline};
use m3d_core::obs::{trace_document, Recorder};
use m3d_core::ExperimentRecord;

/// Parsed common flags.
#[derive(Debug, Clone, Default)]
pub struct RunArgs {
    /// `--quick`: scaled-down run.
    pub quick: bool,
    /// `--json <path>`: where to write the experiment report.
    pub json: Option<PathBuf>,
    /// `--trace-json <path>`: where to write the deterministic span
    /// trace.
    pub trace_json: Option<PathBuf>,
    /// `--metrics-json <path>`: where to write the global recorder as
    /// a versioned JSON document.
    pub metrics_json: Option<PathBuf>,
    /// `--metrics-text <path>`: where to write the global recorder in
    /// Prometheus text exposition format.
    pub metrics_text: Option<PathBuf>,
}

impl RunArgs {
    /// Parses the process arguments, exiting with a usage message on
    /// malformed input. Unknown flags are ignored so binaries can add
    /// their own.
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--json" => match args.next() {
                    Some(p) => out.json = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("error: --json requires a path argument");
                        std::process::exit(2);
                    }
                },
                "--trace-json" => match args.next() {
                    Some(p) => out.trace_json = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("error: --trace-json requires a path argument");
                        std::process::exit(2);
                    }
                },
                "--metrics-json" => match args.next() {
                    Some(p) => out.metrics_json = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("error: --metrics-json requires a path argument");
                        std::process::exit(2);
                    }
                },
                "--metrics-text" => match args.next() {
                    Some(p) => out.metrics_text = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("error: --metrics-text requires a path argument");
                        std::process::exit(2);
                    }
                },
                _ => {}
            }
        }
        out
    }

    /// Standard epilogue for an engine-ported binary: assembles the
    /// [`ExperimentReport`] from the finished pipeline, prints the
    /// per-stage timing summary (and sweep worker count) to stderr,
    /// records the run's span tree on the process [`Recorder`], and
    /// writes the JSON report and span trace when `--json` /
    /// `--trace-json` were given.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the JSON files.
    pub fn finalize(
        &self,
        record: ExperimentRecord,
        pipeline: &Pipeline,
        cache: CacheStats,
    ) -> std::io::Result<ExperimentReport> {
        let experiment = record.id.clone();
        let report = ExperimentReport::new(record, pipeline).with_cache(cache);
        pipeline.eprint_summary();
        eprintln!("# jobs: {}", jobs());
        let rec = Recorder::global();
        rec.incr("engine.runs", 1);
        rec.incr("engine.stages", report.stages.len() as u64);
        let root = pipeline.span_tree(&experiment);
        rec.record_span(root.clone());
        if let Some(path) = &self.trace_json {
            let doc = trace_document(&experiment, &root, false);
            let text = serde_json::to_string_pretty(&doc)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            std::fs::write(path, text + "\n")?;
            eprintln!("# trace: {} ({} spans)", path.display(), root.span_count());
        }
        if let Some(path) = &self.json {
            report.write_json(path)?;
            eprintln!("# json: {}", path.display());
        }
        if let Some(path) = &self.metrics_json {
            let doc = m3d_core::obs::metrics_document(rec);
            let text = serde_json::to_string_pretty(&doc)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            std::fs::write(path, text + "\n")?;
            eprintln!("# metrics-json: {}", path.display());
        }
        if let Some(path) = &self.metrics_text {
            std::fs::write(path, m3d_core::obs::render_text(rec))?;
            eprintln!("# metrics-text: {}", path.display());
        }
        Ok(report)
    }
}
