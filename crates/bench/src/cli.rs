//! Shared command-line driver for the engine-ported experiment binaries.
//!
//! Every ported binary accepts the same flags:
//!
//! * `--quick` — scaled-down configuration for fast smoke runs;
//! * `--json <path>` — write the [`ExperimentReport`] produced by the run
//!   to `path` (deterministic, byte-reproducible JSON);
//!
//! and honours the `M3D_JOBS` environment variable for sweep
//! parallelism. On exit each binary prints the per-stage
//! `stage, wall_ms, cache_hit` summary to stderr via
//! [`Pipeline::eprint_summary`].

use std::path::PathBuf;

use m3d_core::engine::{jobs, CacheStats, ExperimentReport, Pipeline};
use m3d_core::ExperimentRecord;

/// Parsed common flags.
#[derive(Debug, Clone, Default)]
pub struct RunArgs {
    /// `--quick`: scaled-down run.
    pub quick: bool,
    /// `--json <path>`: where to write the experiment report.
    pub json: Option<PathBuf>,
}

impl RunArgs {
    /// Parses the process arguments, exiting with a usage message on
    /// malformed input. Unknown flags are ignored so binaries can add
    /// their own.
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--json" => match args.next() {
                    Some(p) => out.json = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("error: --json requires a path argument");
                        std::process::exit(2);
                    }
                },
                _ => {}
            }
        }
        out
    }

    /// Standard epilogue for an engine-ported binary: assembles the
    /// [`ExperimentReport`] from the finished pipeline, prints the
    /// per-stage timing summary (and sweep worker count) to stderr, and
    /// writes the JSON artifact when `--json` was given.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the JSON file.
    pub fn finalize(
        &self,
        record: ExperimentRecord,
        pipeline: &Pipeline,
        cache: CacheStats,
    ) -> std::io::Result<ExperimentReport> {
        let report = ExperimentReport::new(record, pipeline).with_cache(cache);
        pipeline.eprint_summary();
        eprintln!("# jobs: {}", jobs());
        if let Some(path) = &self.json {
            report.write_json(path)?;
            eprintln!("# json: {}", path.display());
        }
        Ok(report)
    }
}
