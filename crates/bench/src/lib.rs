//! # m3d-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! Criterion benches of the computational kernels (`benches/`). Every
//! binary is a thin driver over [`cli::case_main`]: the experiment
//! itself is a typed [`registry::Case`] registered in
//! [`registry::registry`], which is the single source of truth for case
//! names, parameter schemas and JSON payloads — the same impls serve
//! CLI runs and `m3d-serve` wire requests.
//!
//! All binaries run on the unified experiment engine
//! (`m3d_core::engine`): they accept `--json <path>` (deterministic
//! [`m3d_core::engine::ExperimentReport`] artifact), `--trace-json
//! <path>` (deterministic per-stage span trace with cache provenance),
//! `--metrics-json`/`--metrics-text` (process recorder), and
//! `--set key=value` typed parameters; they share flow results through
//! the content-keyed flow cache, fan sweeps across cores (override the
//! worker count with the `M3D_JOBS` environment variable), and print a
//! per-stage `stage, wall_ms, provenance` summary to stderr on exit.
//!
//! | Binary | Case | Regenerates |
//! |---|---|---|
//! | `fig2_physical_design` | `fig2_physical_design` | Fig. 2 post-route 2D-vs-M3D comparison (+ Obs. 2) |
//! | `fig5_models` | `fig5_models` | Fig. 5 speedup/energy/EDP for AlexNet, VGG-16, ResNet-18/152 |
//! | `table1_resnet18` | `table1_resnet18` | Table I per-layer ResNet-18 benefits |
//! | `fig7_architectures` | `fig7_architectures` | Fig. 7 Table-II architectures: analytical vs mapper |
//! | `fig8_bw_cs` | `fig8_bw_cs` | Fig. 8 bandwidth × CS grid (+ Obs. 5) |
//! | `fig9_capacity` | `capacity_sweep` | Fig. 9 RRAM-capacity sweep (+ Obs. 6) |
//! | `fig10_relaxation` | `fig10_relaxation` | Fig. 10b–c selector-width relaxation (+ Obs. 7) |
//! | `fig10d_tiers` | `tier_sweep` | Fig. 10d interleaved tiers (+ Obs. 9) |
//! | `obs3_sram_baseline` | `obs3_sram_baseline` | Obs. 3 SRAM-density baseline |
//! | `obs8_via_pitch` | `obs8_via_pitch` | Obs. 8 ILV-pitch sweep |
//! | `obs10_thermal` | `obs10_thermal` | Obs. 10 thermal tier cap: eq. 17 vs voxelized RC grid |
//! | `folding_ablation` | `folding_ablation` | prior-work folding baseline (paper refs. 3 and 4, ≈ 1.1–1.4×) |
//! | `ablation_dataflow` | `ablation_dataflow` | weight- vs output-stationary dataflow |
//! | `ablation_precision` | `ablation_precision` | 4/8/16-bit weights |
//! | `ablation_batch` | `ablation_batch` | batch pipelining across the CSs |
//! | `ablation_congestion` | `ablation_congestion` | under-array routing congestion |
//! | `sensitivity_analysis` | `sensitivity_analysis` | ±20 % Monte-Carlo robustness |
//! | `future_upper_logic` | `future_upper_logic` | Case 4: full CMOS on the upper layers |
//! | `projection_nodes` | `projection_nodes` | 130→7 nm technology projections |
//! | `extension_mobilenet` | `extension_mobilenet` | MobileNetV1 stress coverage |
//! | `corners_signoff` | `corners_signoff` | SS/TT/FF multi-corner sign-off |

pub mod cases;
pub mod cli;
pub mod registry;

pub use cli::RunArgs;
pub use registry::{Case, CaseCtx, CaseError, CaseOutcome, ParamField};
