//! # m3d-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! Criterion benches of the computational kernels (`benches/`). Shared
//! table-printing helpers and the [`cli::RunArgs`] driver for the
//! engine-ported binaries live here.
//!
//! Binaries marked **engine** run on the unified experiment engine
//! (`m3d_core::engine`): they accept `--json <path>` (deterministic
//! [`m3d_core::engine::ExperimentReport`] artifact) and
//! `--trace-json <path>` (deterministic per-stage span trace with cache
//! provenance), share flow results through the content-keyed flow
//! cache, fan sweeps across cores (override the worker count with the
//! `M3D_JOBS` environment variable), and print a per-stage
//! `stage, wall_ms, provenance` summary to stderr on exit.
//!
//! | Binary | Regenerates | Engine |
//! |---|---|---|
//! | `fig2_physical_design` | Fig. 2 post-route 2D-vs-M3D comparison (+ Obs. 2) | engine |
//! | `fig5_models` | Fig. 5 speedup/energy/EDP for AlexNet, VGG-16, ResNet-18/152 | engine |
//! | `table1_resnet18` | Table I per-layer ResNet-18 benefits | engine |
//! | `fig7_architectures` | Fig. 7 Table-II architectures: analytical vs mapper | engine |
//! | `fig8_bw_cs` | Fig. 8 bandwidth × CS grid (+ Obs. 5) | engine |
//! | `fig9_capacity` | Fig. 9 RRAM-capacity sweep (+ Obs. 6) | engine |
//! | `fig10_relaxation` | Fig. 10b–c selector-width relaxation (+ Obs. 7) | engine |
//! | `fig10d_tiers` | Fig. 10d interleaved tiers (+ Obs. 9) | engine |
//! | `obs3_sram_baseline` | Obs. 3 SRAM-density baseline | engine |
//! | `obs8_via_pitch` | Obs. 8 ILV-pitch sweep | engine |
//! | `obs10_thermal` | Obs. 10 thermal tier cap: eq. 17 vs voxelized RC grid | engine |
//! | `folding_ablation` | prior-work folding baseline (paper refs. 3 and 4, ≈ 1.1–1.4×) | |
//! | `ablation_dataflow` | weight- vs output-stationary dataflow | engine |
//! | `ablation_precision` | 4/8/16-bit weights | engine |
//! | `ablation_batch` | batch pipelining across the CSs | engine |
//! | `ablation_congestion` | under-array routing congestion | |
//! | `sensitivity_analysis` | ±20 % Monte-Carlo robustness | engine |
//! | `future_upper_logic` | Case 4: full CMOS on the upper layers | |
//! | `projection_nodes` | 130→7 nm technology projections | engine |
//! | `extension_mobilenet` | MobileNetV1 stress coverage | |
//! | `corners_signoff` | SS/TT/FF multi-corner sign-off | |

pub mod cli;
pub mod registry;

pub use cli::RunArgs;
pub use registry::{Case, CaseCtx, CaseError, CaseOutcome};

/// Prints a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a multiplier, e.g. `5.66x`.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2} %", 100.0 * v)
}

/// Standard experiment header with paper cross-reference.
pub fn header(title: &str, paper_ref: &str) {
    rule(72);
    println!("{title}");
    println!("reproduces: {paper_ref}");
    rule(72);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(x(5.664), "5.66x");
        assert_eq!(pct(0.0123), "1.23 %");
    }
}
