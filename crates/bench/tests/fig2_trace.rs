//! End-to-end contract of `--trace-json` on a pd-flow experiment: the
//! span tree must expose the flow's internals (placement steps, opt
//! rounds, CTS and STA child spans with integer counters) and the
//! document must stay byte-identical across `M3D_JOBS` values.

use std::path::PathBuf;
use std::process::Command;

fn run_fig2(jobs: &str, trace: &PathBuf) {
    let status = Command::new(env!("CARGO_BIN_EXE_fig2_physical_design"))
        .args(["--quick", "--trace-json"])
        .arg(trace)
        .env("M3D_JOBS", jobs)
        // A shared disk cache would flip the second run's provenance to
        // disk-hit; keep both runs computing from scratch.
        .env_remove("M3D_CACHE_DIR")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("fig2 binary runs");
    assert!(
        status.success(),
        "fig2 --quick failed under M3D_JOBS={jobs}"
    );
}

#[test]
fn fig2_trace_exposes_pd_sub_spans_and_ignores_job_count() {
    let dir = std::env::temp_dir().join(format!("m3d-fig2-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let t1 = dir.join("jobs1.json");
    let t4 = dir.join("jobs4.json");
    run_fig2("1", &t1);
    run_fig2("4", &t4);
    let a = std::fs::read(&t1).expect("trace written");
    let b = std::fs::read(&t4).expect("trace written");
    assert_eq!(a, b, "trace bytes must not depend on M3D_JOBS");

    let text = String::from_utf8(a).expect("trace is UTF-8");
    // Flow phases surface as child spans of the pd-flow stages...
    for span in ["\"place\"", "\"route\"", "\"cts\"", "\"sta\"", "\"opt\""] {
        assert!(text.contains(span), "missing {span} sub-span in trace");
    }
    // ...carrying deterministic integer counters: per-step annealing
    // children, per-round optimisation children, and ILV tallies.
    for marker in [
        "\"counters\"",
        "\"step0\"",
        "\"round0\"",
        "\"steps\"",
        "\"signal_ilvs\"",
        "\"insertion_delay_ps\"",
    ] {
        assert!(text.contains(marker), "missing {marker} in trace");
    }
    std::fs::remove_dir_all(&dir).ok();
}
