//! Round-trip contract of the typed case registry: every registered
//! experiment validates its params schema the same way on the CLI and
//! the wire, and the freshly engine-ported binaries produce
//! byte-identical `--json` artifacts at any `M3D_JOBS` value.

use std::process::Command;

use m3d_bench::registry::registry;
use serde::Value;

/// The 21 paper experiments (the registry also carries the `sleep`
/// diagnostic and legacy aliases; this is the experiment surface the
/// binaries expose).
const EXPERIMENTS: [&str; 21] = [
    "pd_flow",
    "tier_sweep",
    "capacity_sweep",
    "sensitivity",
    "thermal_cap",
    "fig2_physical_design",
    "fig5_models",
    "table1_resnet18",
    "fig7_architectures",
    "fig8_bw_cs",
    "fig10_relaxation",
    "obs3_sram_baseline",
    "obs8_via_pitch",
    "obs10_thermal",
    "projection_nodes",
    "ablation_dataflow",
    "ablation_precision",
    "ablation_batch",
    "ablation_congestion",
    "sensitivity_analysis",
    "folding_ablation",
];

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

#[test]
fn every_experiment_is_registered_with_a_schema() {
    let names: Vec<&str> = registry().into_iter().map(|c| c.name()).collect();
    for want in EXPERIMENTS {
        assert!(names.contains(&want), "case `{want}` is not registered");
    }
    // The five backlog binaries all dispatch through the registry now.
    for ported in [
        "ablation_congestion",
        "folding_ablation",
        "corners_signoff",
        "extension_mobilenet",
        "future_upper_logic",
    ] {
        assert!(names.contains(&ported), "backlog case `{ported}` missing");
    }
    // The external-netlist front door is a registered case too.
    assert!(names.contains(&"ingest"), "ingest case missing");
}

#[test]
fn ingest_rejects_malformed_payloads_before_enqueue() {
    let case = registry()
        .into_iter()
        .find(|c| c.name() == "ingest")
        .expect("registered");
    // validate() is the service's pre-queue gate: a syntactically
    // invalid EDIF upload must answer bad-request with its position
    // without ever occupying a worker.
    let err = case
        .validate(
            true,
            &obj(vec![(
                "source",
                Value::Str("(edif d (library broken".to_owned()),
            )]),
        )
        .expect_err("malformed EDIF must be rejected");
    assert_eq!(err.code, m3d_core::ErrorCode::BadRequest);
    assert!(err.message.contains("line 1"), "{}", err.message);
}

#[test]
fn null_params_validate_everywhere() {
    for case in registry() {
        assert_eq!(
            case.validate(true, &Value::Null),
            Ok(()),
            "case `{}` must accept null params",
            case.name()
        );
        assert_eq!(
            case.validate(true, &Value::Object(Vec::new())),
            Ok(()),
            "case `{}` must accept an empty params object",
            case.name()
        );
    }
}

#[test]
fn unknown_params_are_bad_requests_everywhere() {
    for case in registry() {
        let err = case
            .validate(
                true,
                &obj(vec![("definitely_not_a_real_param", Value::U64(1))]),
            )
            .expect_err(&format!(
                "case `{}` must reject unknown params",
                case.name()
            ));
        assert_eq!(
            err.code,
            m3d_core::ErrorCode::BadRequest,
            "case `{}` rejection must be BadRequest-coded",
            case.name()
        );
        assert!(
            err.message.contains("definitely_not_a_real_param"),
            "case `{}` rejection must name the offending key",
            case.name()
        );
    }
}

#[test]
fn non_object_params_are_bad_requests_everywhere() {
    for case in registry() {
        let err = case
            .validate(true, &Value::Str("nope".to_owned()))
            .expect_err(&format!(
                "case `{}` must reject non-object params",
                case.name()
            ));
        assert_eq!(err.code, m3d_core::ErrorCode::BadRequest);
    }
}

#[test]
fn typed_param_values_are_range_checked() {
    let corners = registry()
        .into_iter()
        .find(|c| c.name() == "corners_signoff")
        .expect("registered");
    let err = corners
        .validate(
            true,
            &obj(vec![("corners", Value::Str("ss,xx".to_owned()))]),
        )
        .expect_err("unknown corner must be rejected");
    assert_eq!(err.code, m3d_core::ErrorCode::BadRequest);
    assert!(err.message.contains("xx"));
    let err = corners
        .validate(true, &obj(vec![("corners", Value::U64(3))]))
        .expect_err("non-string corners must be rejected");
    assert_eq!(err.code, m3d_core::ErrorCode::BadRequest);
}

#[test]
fn param_fields_carry_names_and_defaults() {
    for case in registry() {
        for field in case.param_fields() {
            assert!(
                !field.name.is_empty() && !field.default.is_empty(),
                "case `{}` has a blank param field",
                case.name()
            );
        }
    }
}

fn run_json(exe: &str, jobs: &str, path: &std::path::Path) {
    let status = Command::new(exe)
        .args(["--quick", "--json"])
        .arg(path)
        .env("M3D_JOBS", jobs)
        // A shared disk cache would flip provenance between runs; keep
        // every run computing from scratch.
        .env_remove("M3D_CACHE_DIR")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("binary runs");
    assert!(status.success(), "{exe} --quick failed (M3D_JOBS={jobs})");
}

/// The five freshly ported binaries: byte-identical `--json` across
/// worker counts, straight off the engine executor.
#[test]
fn ported_binaries_emit_deterministic_json() {
    let dir = std::env::temp_dir().join(format!("m3d-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (name, exe) in [
        (
            "ablation_congestion",
            env!("CARGO_BIN_EXE_ablation_congestion"),
        ),
        ("folding_ablation", env!("CARGO_BIN_EXE_folding_ablation")),
        ("corners_signoff", env!("CARGO_BIN_EXE_corners_signoff")),
        (
            "extension_mobilenet",
            env!("CARGO_BIN_EXE_extension_mobilenet"),
        ),
        (
            "future_upper_logic",
            env!("CARGO_BIN_EXE_future_upper_logic"),
        ),
    ] {
        let a = dir.join(format!("{name}-jobs1.json"));
        let b = dir.join(format!("{name}-jobs4.json"));
        run_json(exe, "1", &a);
        run_json(exe, "4", &b);
        let one = std::fs::read(&a).expect("report written");
        let four = std::fs::read(&b).expect("report written");
        assert_eq!(one, four, "{name} --json must not depend on M3D_JOBS");
        assert!(!one.is_empty(), "{name} report must not be empty");
    }
    std::fs::remove_dir_all(&dir).ok();
}
