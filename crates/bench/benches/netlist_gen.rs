//! Criterion bench: netlist generation ("synthesis"), functional
//! simulation and Verilog export.

use criterion::{criterion_group, criterion_main, Criterion};

use m3d_netlist::gen::array_multiplier;
use m3d_netlist::{accelerator_soc, to_verilog, CsConfig, Netlist, PeConfig, Simulator, SocConfig};
use m3d_tech::Tier;

fn small_soc() -> Netlist {
    let cfg = SocConfig {
        cs: CsConfig {
            rows: 4,
            cols: 4,
            pe: PeConfig::default(),
            global_buffer_kb: 64,
            local_buffer_kb: 8,
        },
        ..SocConfig::baseline_2d()
    };
    let mut nl = Netlist::new("soc");
    accelerator_soc(&mut nl, &cfg).unwrap();
    nl
}

fn bench_netlist(c: &mut Criterion) {
    c.bench_function("generate_small_soc", |b| b.iter(small_soc));

    let nl = small_soc();
    c.bench_function("verilog_export_small_soc", |b| b.iter(|| to_verilog(&nl)));

    // Functional simulation of a multiplier.
    let mut mul = Netlist::new("mul");
    let a: Vec<_> = (0..8)
        .map(|i| {
            let n = mul.add_net(format!("a{i}"));
            mul.set_primary_input(n).unwrap();
            n
        })
        .collect();
    let bb: Vec<_> = (0..8)
        .map(|i| {
            let n = mul.add_net(format!("b{i}"));
            mul.set_primary_input(n).unwrap();
            n
        })
        .collect();
    let p = array_multiplier(&mut mul, "m", Tier::SiCmos, &a, &bb).unwrap();
    c.bench_function("simulate_multiplier_256_vectors", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&mul).unwrap();
            let mut acc = 0u64;
            for x in 0..16u64 {
                for y in 0..16u64 {
                    sim.set_bus(&a, x * 17);
                    sim.set_bus(&bb, y * 13);
                    sim.eval();
                    acc ^= sim.bus_value(&p);
                }
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_netlist
}
criterion_main!(benches);
