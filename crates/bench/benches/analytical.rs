//! Criterion bench: the analytical framework (eqs. 1–8) and the Case-1
//! relaxation sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use m3d_arch::models;
use m3d_core::cases::{case1_sweep, BaselineAreas};
use m3d_core::framework::{workload_edp_benefit, ChipParams, WorkloadPoint};

fn points() -> Vec<WorkloadPoint> {
    models::resnet18()
        .layers
        .iter()
        .map(|l| WorkloadPoint::from_layer(l, 8, 16))
        .collect()
}

fn bench_framework(c: &mut Criterion) {
    let base = ChipParams::baseline_2d();
    let m3d = ChipParams::m3d(8);
    let pts = points();
    c.bench_function("framework_resnet18_edp", |b| {
        b.iter(|| workload_edp_benefit(&base, &m3d, &pts))
    });
    let areas = BaselineAreas::case_study_64mb();
    let deltas: Vec<f64> = (0..16).map(|i| 1.0 + 0.1 * i as f64).collect();
    c.bench_function("case1_delta_sweep", |b| {
        b.iter(|| case1_sweep(&areas, &base, &pts, &deltas).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_framework
}
criterion_main!(benches);
