//! Criterion bench: the red-black SOR steady-state kernel, alone and
//! wired through the engine's instrumented pipeline stage (so kernel
//! time can be compared directly against the `thermal` stage wall-clock
//! the bench binaries print).

use criterion::{criterion_group, criterion_main, Criterion};

use m3d_core::engine::{Pipeline, Stage};
use m3d_tech::LayerStack;
use m3d_thermal::{solve_steady, GridConfig, PowerMap, SolverConfig, ThermalCache};

fn grid(n: usize, pairs: u32) -> GridConfig {
    GridConfig::from_stack(&LayerStack::m3d_130nm(), 100.0, n, n, pairs, 1.0, 60.0)
        .expect("valid grid")
}

fn bench_sor(c: &mut Criterion) {
    let cfg = SolverConfig::default();

    let g_small = grid(8, 2);
    let p_small = PowerMap::uniform(&g_small, 5.0);
    c.bench_function("sor_steady_8x8_2pairs", |b| {
        b.iter(|| solve_steady(&g_small, &p_small, &cfg).unwrap())
    });

    let g_large = grid(16, 4);
    let p_large = PowerMap::uniform(&g_large, 5.0);
    c.bench_function("sor_steady_16x16_4pairs", |b| {
        b.iter(|| solve_steady(&g_large, &p_large, &cfg).unwrap())
    });

    // The same kernel through the engine's Stage::Thermal wrapper: the
    // delta against the raw kernel is the pipeline instrumentation
    // overhead (it should be noise).
    c.bench_function("sor_steady_via_engine_stage", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new();
            pipe.stage(Stage::Thermal, "bench", |_| {
                solve_steady(&g_small, &p_small, &cfg).unwrap()
            })
        })
    });

    // Memoised replay: what the obs10 cap queries actually pay.
    let cache = ThermalCache::new();
    cache.solve(&g_small, &p_small, &cfg).unwrap();
    c.bench_function("thermal_cache_hit", |b| {
        b.iter(|| cache.solve(&g_small, &p_small, &cfg).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sor
}
criterion_main!(benches);
