//! Criterion bench: static timing analysis over a placed-and-routed
//! accelerator netlist.

use criterion::{criterion_group, criterion_main, Criterion};

use m3d_netlist::{accelerator_soc, CsConfig, Netlist, PeConfig, SocConfig};
use m3d_pd::{
    analyze_timing, estimate_routing, place, Clustering, Floorplan, PlacerConfig, RoutingEstimate,
    DEFAULT_DETOUR,
};
use m3d_tech::Pdk;

fn setup() -> (Netlist, RoutingEstimate, Pdk) {
    let cfg = SocConfig {
        cs: CsConfig {
            rows: 8,
            cols: 8,
            pe: PeConfig::default(),
            global_buffer_kb: 128,
            local_buffer_kb: 16,
        },
        ..SocConfig::baseline_2d()
    };
    let mut nl = Netlist::new("bench");
    accelerator_soc(&mut nl, &cfg).unwrap();
    let pdk = Pdk::baseline_2d_130nm();
    let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
    let cl = Clustering::build(&nl, &pdk).unwrap();
    let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
    let r = estimate_routing(&nl, &p, &pdk, DEFAULT_DETOUR).unwrap();
    (nl, r, pdk)
}

fn bench_sta(c: &mut Criterion) {
    let (nl, r, pdk) = setup();
    c.bench_function("sta_8x8_cs", |b| {
        b.iter(|| analyze_timing(&nl, &r, &pdk, pdk.default_clock).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sta
}
criterion_main!(benches);
