//! Criterion bench: the ZigZag-style mapping design-space exploration.

use criterion::{criterion_group, criterion_main, Criterion};

use m3d_arch::{map_layer, map_workload, models, table2_architectures, Layer, MapperChip};

fn bench_zigzag(c: &mut Criterion) {
    let archs = table2_architectures();
    let chip = MapperChip::from_arch(&archs[5], 8);
    let layer = Layer::conv("L3", 256, 256, 3, (14, 14), 1);
    c.bench_function("map_single_conv_layer", |b| {
        b.iter(|| map_layer(&chip, &layer))
    });
    let alexnet = models::alexnet();
    c.bench_function("map_alexnet", |b| b.iter(|| map_workload(&chip, &alexnet)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_zigzag
}
criterion_main!(benches);
