//! Criterion bench: cluster-based annealing global placement on a
//! mid-size computing sub-system.

use criterion::{criterion_group, criterion_main, Criterion};

use m3d_netlist::{accelerator_soc, CsConfig, Netlist, PeConfig, SocConfig};
use m3d_pd::{place, Clustering, Floorplan, PlacerConfig};
use m3d_tech::Pdk;

fn setup() -> (Clustering, Floorplan) {
    let cfg = SocConfig {
        cs: CsConfig {
            rows: 8,
            cols: 8,
            pe: PeConfig::default(),
            global_buffer_kb: 128,
            local_buffer_kb: 16,
        },
        ..SocConfig::baseline_2d()
    };
    let mut nl = Netlist::new("bench");
    accelerator_soc(&mut nl, &cfg).unwrap();
    let pdk = Pdk::baseline_2d_130nm();
    let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
    let cl = Clustering::build(&nl, &pdk).unwrap();
    (cl, fp)
}

fn bench_placement(c: &mut Criterion) {
    let (cl, fp) = setup();
    c.bench_function("place_8x8_cs_quick", |b| {
        b.iter(|| place(&cl, &fp, &PlacerConfig::quick()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_placement
}
criterion_main!(benches);
