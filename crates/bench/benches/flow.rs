//! Criterion bench: the end-to-end RTL-to-GDS flow (scaled design),
//! warm-started vs cold sign-off at default placer effort, row
//! legalisation in isolation, and the ZigZag mapper kernel.
//!
//! Beyond timings, the warm-vs-cold pair emits `BENCH_warmstart.json`
//! (path overridable via `M3D_BENCH_WARMSTART_JSON`) with the cold and
//! warm sweep wall-clock medians; `scripts/tier1.sh` smoke-runs this
//! bench and asserts only non-timing facts about that file plus the
//! byte-identity of warm and cold reports.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use m3d_arch::{map_workload, models, table2_architectures, MapperChip};
use m3d_netlist::{accelerator_soc, CsConfig, Netlist, PeConfig, SocConfig};
use m3d_pd::{
    legalize, place, Clustering, Floorplan, FlowConfig, PlacementSeed, PlacerConfig, Rtl2GdsFlow,
};
use m3d_tech::Pdk;

fn small_cs() -> CsConfig {
    CsConfig {
        rows: 4,
        cols: 4,
        pe: PeConfig::default(),
        global_buffer_kb: 64,
        local_buffer_kb: 8,
    }
}

/// The warm-start showcase configuration: default (non-quick) placer
/// effort, so annealing dominates and seed reuse pays.
fn sweep_cfg(activity: f64) -> FlowConfig {
    let mut cfg = FlowConfig::baseline_2d().with_cs(small_cs());
    cfg.activity = activity;
    cfg
}

/// The default sensitivity grid: six activity points, one placement key.
fn sweep_grid() -> Vec<f64> {
    (0..6).map(|i| 0.10 + 0.05 * f64::from(i)).collect()
}

/// One full sweep, cold: every point anneals from scratch.
fn sweep_cold() -> Duration {
    let t = Instant::now();
    for a in sweep_grid() {
        black_box(Rtl2GdsFlow::new(sweep_cfg(a)).run_seeded(None).unwrap());
    }
    t.elapsed()
}

/// One full sweep, warm: the first point anneals, later points reuse
/// its placement seed and re-evaluate sign-off only.
fn sweep_warm(seed: &PlacementSeed) -> Duration {
    let t = Instant::now();
    for a in sweep_grid() {
        black_box(
            Rtl2GdsFlow::new(sweep_cfg(a))
                .run_seeded(Some(seed))
                .unwrap(),
        );
    }
    t.elapsed()
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1.0e3
}

fn bench_warmstart(c: &mut Criterion) {
    // Non-timing sanity first: a warm-started run must reproduce the
    // cold run byte for byte (same report, placement, span tree).
    let grid = sweep_grid();
    let (cold_report, cold_artifacts, cold_span, warm_flag) = Rtl2GdsFlow::new(sweep_cfg(grid[0]))
        .run_seeded(None)
        .unwrap();
    assert!(!warm_flag, "no seed given, run must be cold");
    let seed = cold_artifacts.seed.clone();
    let probe = grid[grid.len() - 1];
    let (wr, wa, ws, warmed) = Rtl2GdsFlow::new(sweep_cfg(probe))
        .run_seeded(Some(&seed))
        .unwrap();
    assert!(warmed, "neighbour seed shares the placement key");
    let (cr, ca, cs2, _) = Rtl2GdsFlow::new(sweep_cfg(probe)).run_seeded(None).unwrap();
    assert_eq!(wr, cr, "warm report must equal cold");
    assert_eq!(wa.placement, ca.placement, "warm placement must equal cold");
    assert_eq!(ws, cs2, "warm span tree must equal cold");
    drop((cold_report, cold_span));

    c.bench_function("flow_sweep_cold_6pt", |b| b.iter(sweep_cold));
    c.bench_function("flow_sweep_warm_6pt", |b| b.iter(|| sweep_warm(&seed)));

    // Medians for the tier-1 smoke: modest sample counts keep the bench
    // quick; tier1 asserts shape and identity, never timings.
    const SAMPLES: usize = 7;
    let mut cold: Vec<Duration> = (0..SAMPLES).map(|_| sweep_cold()).collect();
    let mut warm: Vec<Duration> = (0..SAMPLES).map(|_| sweep_warm(&seed)).collect();
    let (cold_ms, warm_ms) = (median_ms(&mut cold), median_ms(&mut warm));
    let speedup = if warm_ms > 0.0 {
        cold_ms / warm_ms
    } else {
        0.0
    };
    let path = std::env::var("M3D_BENCH_WARMSTART_JSON").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_warmstart.json"
        )
        .to_owned()
    });
    let json = format!(
        "{{\n  \"bench\": \"flow_sweep_warm_vs_cold\",\n  \"grid_points\": {},\n  \
         \"samples\": {SAMPLES},\n  \"cold_ms_median\": {cold_ms:.3},\n  \
         \"warm_ms_median\": {warm_ms:.3},\n  \"speedup\": {speedup:.3}\n}}\n",
        sweep_grid().len(),
    );
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warmstart bench: cannot write {path}: {e}");
    }
    println!("warmstart sweep: cold {cold_ms:.1} ms, warm {warm_ms:.1} ms, {speedup:.2}x");
}

fn bench_flow(c: &mut Criterion) {
    c.bench_function("rtl_to_gds_quick_2d", |b| {
        b.iter(|| {
            Rtl2GdsFlow::new(FlowConfig::baseline_2d().with_cs(small_cs()).quick())
                .run()
                .unwrap()
        })
    });

    // Legalisation in isolation.
    let cfg = SocConfig {
        cs: small_cs(),
        ..SocConfig::baseline_2d()
    };
    let pdk = Pdk::baseline_2d_130nm();
    let mut nl = Netlist::new("soc");
    accelerator_soc(&mut nl, &cfg).unwrap();
    let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
    let cl = Clustering::build(&nl, &pdk).unwrap();
    let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
    c.bench_function("legalize_small_soc", |b| {
        b.iter(|| legalize(&nl, &p, &fp, &pdk).unwrap())
    });
}

fn bench_mapper(c: &mut Criterion) {
    // The ZigZag mapper kernel: full-workload DSE over the paper's
    // arch 6 at the M3D computing-sub-system count.
    let chip = MapperChip::from_arch(&table2_architectures()[5], 8);
    let alexnet = models::alexnet();
    let resnet = models::resnet18();
    c.bench_function("zigzag_map_alexnet_arch6x8", |b| {
        b.iter(|| black_box(map_workload(&chip, &alexnet)))
    });
    c.bench_function("zigzag_map_resnet18_arch6x8", |b| {
        b.iter(|| black_box(map_workload(&chip, &resnet)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_warmstart, bench_flow, bench_mapper
}
criterion_main!(benches);
