//! Criterion bench: the end-to-end RTL-to-GDS flow (scaled design) and
//! row legalisation in isolation.

use criterion::{criterion_group, criterion_main, Criterion};

use m3d_netlist::{accelerator_soc, CsConfig, Netlist, PeConfig, SocConfig};
use m3d_pd::{legalize, place, Clustering, Floorplan, FlowConfig, PlacerConfig, Rtl2GdsFlow};
use m3d_tech::Pdk;

fn small_cs() -> CsConfig {
    CsConfig {
        rows: 4,
        cols: 4,
        pe: PeConfig::default(),
        global_buffer_kb: 64,
        local_buffer_kb: 8,
    }
}

fn bench_flow(c: &mut Criterion) {
    c.bench_function("rtl_to_gds_quick_2d", |b| {
        b.iter(|| {
            Rtl2GdsFlow::new(FlowConfig::baseline_2d().with_cs(small_cs()).quick())
                .run()
                .unwrap()
        })
    });

    // Legalisation in isolation.
    let cfg = SocConfig {
        cs: small_cs(),
        ..SocConfig::baseline_2d()
    };
    let pdk = Pdk::baseline_2d_130nm();
    let mut nl = Netlist::new("soc");
    accelerator_soc(&mut nl, &cfg).unwrap();
    let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
    let cl = Clustering::build(&nl, &pdk).unwrap();
    let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
    c.bench_function("legalize_small_soc", |b| {
        b.iter(|| legalize(&nl, &p, &fp, &pdk).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_flow
}
criterion_main!(benches);
