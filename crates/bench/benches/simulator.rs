//! Criterion bench: the multi-CS architectural simulator on the four
//! evaluation networks.

use criterion::{criterion_group, criterion_main, Criterion};

use m3d_arch::{compare, models, simulate, ChipConfig};

fn bench_simulator(c: &mut Criterion) {
    let base = ChipConfig::baseline_2d();
    let m3d = ChipConfig::m3d(8);
    let resnet18 = models::resnet18();
    c.bench_function("simulate_resnet18_m3d", |b| {
        b.iter(|| simulate(&m3d, &resnet18))
    });
    let resnet152 = models::resnet152();
    c.bench_function("compare_resnet152", |b| {
        b.iter(|| compare(&base, &m3d, &resnet152))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_simulator
}
criterion_main!(benches);
