//! # m3d-pd — the physical-design substrate (RTL-to-GDS flow)
//!
//! This crate stands in for the commercial EDA flow the paper uses
//! (Synopsys DC synthesis + modified Cadence Innovus 3D place-and-route +
//! Cadence Tempus power): floorplanning with RRAM macro blockages,
//! cluster-based annealing global placement with an under-array region
//! for M3D, Steiner/HPWL routing estimation with per-layer RC and ILV
//! counting, Elmore static timing analysis, post-route buffer insertion
//! and upsizing, activity-based power sign-off with a power-density map,
//! and a GDS-like JSON layout export.
//!
//! The entry point is [`Rtl2GdsFlow`]:
//!
//! ```no_run
//! use m3d_pd::flow::{FlowConfig, Rtl2GdsFlow};
//!
//! # fn main() -> Result<(), m3d_pd::PdError> {
//! // 2D baseline, then the iso-footprint M3D design in the same outline.
//! let (r2d, _) = Rtl2GdsFlow::new(FlowConfig::baseline_2d()).run()?;
//! let m3d = FlowConfig::m3d(8).with_die(r2d.die);
//! let (r3d, _) = Rtl2GdsFlow::new(m3d).run()?;
//! assert_eq!(r3d.die_mm2, r2d.die_mm2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod congestion;
pub mod cts;
pub mod drc;
pub mod error;
pub mod floorplan;
pub mod flow;
pub mod gds;
pub mod geom;
pub mod legalize;
pub mod observe;
pub mod opt;
pub mod partition;
pub mod place;
pub mod power;
pub mod route;
pub mod spef;
pub mod sta;

pub use cluster::{Cluster, ClusterKind, Clustering};
pub use congestion::{analyze_congestion, CongestionMap};
pub use cts::{estimate_clock_tree, ClockTree};
pub use drc::{check_placement, DrcKind, DrcReport, DrcViolation};
pub use error::{PdError, PdResult};
pub use floorplan::{under_array_usable_area, FixedBlock, Floorplan, Region, RegionKind};
pub use flow::{
    cs_geometric_demand, FlowArtifacts, FlowConfig, FlowReport, NetlistSource, ParamPoint,
    PlacementSeed, Rtl2GdsFlow,
};
pub use gds::LayoutExport;
pub use geom::{BoundingBox, Point, Rect};
pub use legalize::{legalize, LegalizeReport};
pub use observe::{round_counter, FlowObserver, FlowSpan};
pub use opt::{post_route_optimize, post_route_optimize_traced, OptConfig, OptOutcome};
pub use partition::{fold_two_tier, FoldingReport};
pub use place::{place, place_traced, Placement, PlacerConfig};
pub use power::{analyze_power, PowerDensityGrid, PowerReport, DEFAULT_ACTIVITY};
pub use route::{estimate_routing, reestimate_routing, RoutedNet, RoutingEstimate, DEFAULT_DETOUR};
pub use spef::to_spef;
pub use sta::{analyze_timing, EndpointSlack, TimingReport};
