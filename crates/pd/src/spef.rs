//! SPEF-style parasitics export: the per-net RC annotation file a
//! sign-off tool would consume after routing.
//!
//! Each net is written as a lumped π-model (total capacitance, total
//! resistance) with its driver and sink pins — the level of detail the
//! Elmore STA in this crate actually uses.

use std::fmt::Write as _;

use m3d_netlist::{Driver, Netlist, Sink};

use crate::route::RoutingEstimate;

/// Emits a SPEF-like parasitics annotation for the routed design.
///
/// # Panics
///
/// Panics when `routing` does not match `netlist`.
pub fn to_spef(netlist: &Netlist, routing: &RoutingEstimate, design: &str) -> String {
    assert_eq!(routing.nets.len(), netlist.net_count());
    let mut out = String::new();
    let _ = writeln!(out, "*SPEF \"IEEE 1481-1998-like\"");
    let _ = writeln!(out, "*DESIGN \"{design}\"");
    let _ = writeln!(out, "*T_UNIT 1 NS");
    let _ = writeln!(out, "*C_UNIT 1 FF");
    let _ = writeln!(out, "*R_UNIT 1 KOHM");
    let _ = writeln!(out, "*L_UNIT 1 UM");
    let _ = writeln!(out);

    for (ni, net) in netlist.nets().iter().enumerate() {
        let rn = &routing.nets[ni];
        if net.sinks.is_empty() && net.driver.is_none() {
            continue;
        }
        let total_cap = rn.total_cap().value();
        let _ = writeln!(out, "*D_NET n{ni} {total_cap:.4}");
        let _ = writeln!(out, "*CONN");
        match net.driver {
            Some(Driver::Cell { cell, pin }) => {
                let _ = writeln!(out, "*I {}:{pin} O", netlist.cells()[cell.0 as usize].name);
            }
            Some(Driver::Macro { id }) => {
                let _ = writeln!(out, "*I {}:Q O", netlist.macros()[id.0 as usize].name);
            }
            Some(Driver::PrimaryInput) => {
                let _ = writeln!(out, "*P n{ni} I");
            }
            None => {}
        }
        for s in &net.sinks {
            match *s {
                Sink::Cell { cell, pin } => {
                    let _ = writeln!(out, "*I {}:{pin} I", netlist.cells()[cell.0 as usize].name);
                }
                Sink::Macro { id } => {
                    let _ = writeln!(out, "*I {}:D I", netlist.macros()[id.0 as usize].name);
                }
                Sink::PrimaryOutput => {
                    let _ = writeln!(out, "*P n{ni} O");
                }
            }
        }
        let _ = writeln!(out, "*CAP");
        let _ = writeln!(out, "1 n{ni} {:.4}", rn.wire_cap.value());
        let _ = writeln!(out, "*RES");
        let _ = writeln!(out, "1 n{ni} {:.4}", rn.wire_res.value());
        let _ = writeln!(out, "*END");
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::floorplan::Floorplan;
    use crate::place::{place, PlacerConfig};
    use crate::route::{estimate_routing, DEFAULT_DETOUR};
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig, SocConfig};
    use m3d_tech::Pdk;

    fn routed() -> (Netlist, RoutingEstimate) {
        let cfg = SocConfig {
            cs: CsConfig {
                rows: 2,
                cols: 2,
                pe: PeConfig::default(),
                global_buffer_kb: 16,
                local_buffer_kb: 4,
            },
            ..SocConfig::baseline_2d()
        };
        let pdk = Pdk::baseline_2d_130nm();
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        let r = estimate_routing(&nl, &p, &pdk, DEFAULT_DETOUR).unwrap();
        (nl, r)
    }

    #[test]
    fn spef_has_one_block_per_net() {
        let (nl, r) = routed();
        let spef = to_spef(&nl, &r, "soc");
        assert!(spef.starts_with("*SPEF"));
        assert!(spef.contains("*DESIGN \"soc\""));
        assert_eq!(spef.matches("*D_NET").count(), nl.net_count());
        assert_eq!(spef.matches("*END").count(), nl.net_count());
    }

    #[test]
    fn parasitics_match_the_routing_estimate() {
        let (nl, r) = routed();
        let spef = to_spef(&nl, &r, "soc");
        // Spot-check net 0's cap annotation.
        let line = spef.lines().find(|l| l.starts_with("*D_NET n0 ")).unwrap();
        let cap: f64 = line.split_whitespace().nth(2).unwrap().parse().unwrap();
        assert!((cap - r.nets[0].total_cap().value()).abs() < 1e-3);
    }

    #[test]
    fn driver_and_sink_directions_are_marked() {
        let (nl, r) = routed();
        let spef = to_spef(&nl, &r, "soc");
        assert!(spef.contains(" O\n"), "driver pins marked O");
        assert!(spef.contains(" I\n"), "sink pins marked I");
        assert!(spef.contains("rram/mem:Q O"), "macro driver present");
    }
}
