//! GDS-like layout export: a structured JSON snapshot of the physical
//! design (die, fixed blocks, placed clusters and macros), standing in
//! for the GDSII stream the paper's flow writes out.

use std::io::Write;

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterKind;
use crate::floorplan::RegionKind;
use crate::flow::FlowArtifacts;
use crate::geom::Rect;

/// One placed object in the export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutObject {
    /// Object name (cluster or macro instance).
    pub name: String,
    /// Object class: `"logic"`, `"sram"`, `"rram"`, `"io"` or `"fixed"`.
    pub class: String,
    /// Occupied rectangle (clusters are reported as squares around their
    /// centre).
    pub rect: Rect,
    /// `"free"`, `"under_array"` or `"fixed"`.
    pub region: String,
}

/// A GDS-like layout snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutExport {
    /// Design name.
    pub design: String,
    /// Die outline.
    pub die: Rect,
    /// All exported objects.
    pub objects: Vec<LayoutObject>,
    /// Total wirelength in metres (annotation).
    pub wirelength_m: f64,
}

impl LayoutExport {
    /// Builds the export from flow artifacts.
    pub fn from_artifacts(artifacts: &FlowArtifacts) -> Self {
        let mut objects = Vec::new();
        for f in &artifacts.floorplan.fixed {
            objects.push(LayoutObject {
                name: f.name.clone(),
                class: "fixed".to_owned(),
                rect: f.rect,
                region: "fixed".to_owned(),
            });
        }
        for (ci, c) in artifacts.clustering.clusters.iter().enumerate() {
            let class = match c.kind {
                ClusterKind::Logic => "logic",
                ClusterKind::SramMacro(_) => "sram",
                ClusterKind::RramMacro(_) => "rram",
                ClusterKind::Io => "io",
            };
            let region = artifacts
                .placement
                .cluster_region
                .get(ci)
                .and_then(|&ri| artifacts.floorplan.regions.get(ri))
                .map_or("fixed", |r| match r.kind {
                    RegionKind::Free => "free",
                    RegionKind::UnderArray => "under_array",
                });
            let side = c.area.value().max(0.0).sqrt();
            let p = artifacts.placement.cluster_pos[ci];
            objects.push(LayoutObject {
                name: c.name.clone(),
                class: class.to_owned(),
                rect: Rect::new(
                    p.x.value() - side / 2.0,
                    p.y.value() - side / 2.0,
                    p.x.value() + side / 2.0,
                    p.y.value() + side / 2.0,
                ),
                region: region.to_owned(),
            });
        }
        Self {
            design: artifacts.netlist.name.clone(),
            die: artifacts.floorplan.die,
            objects,
            wirelength_m: artifacts.routing.total_wirelength.value() * 1.0e-6,
        }
    }

    /// Serialises to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialisation failures (never for this type in
    /// practice).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Writes the JSON layout to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates IO and serialisation failures.
    pub fn write_json<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        let s = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        writer.write_all(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowConfig, Rtl2GdsFlow};
    use m3d_netlist::{CsConfig, PeConfig};

    fn artifacts() -> FlowArtifacts {
        let cfg = FlowConfig::baseline_2d()
            .with_cs(CsConfig {
                rows: 4,
                cols: 4,
                pe: PeConfig::default(),
                global_buffer_kb: 64,
                local_buffer_kb: 8,
            })
            .quick();
        Rtl2GdsFlow::new(cfg).run().unwrap().1
    }

    #[test]
    fn export_contains_everything() {
        let a = artifacts();
        let e = LayoutExport::from_artifacts(&a);
        assert!(e.objects.iter().any(|o| o.class == "fixed"));
        assert!(e.objects.iter().any(|o| o.class == "logic"));
        assert!(e.objects.iter().any(|o| o.class == "sram"));
        assert!(e.objects.iter().any(|o| o.class == "rram"));
        assert!(e.wirelength_m > 0.0);
    }

    #[test]
    fn json_round_trip() {
        let a = artifacts();
        let e = LayoutExport::from_artifacts(&a);
        let s = e.to_json().unwrap();
        let back: LayoutExport = serde_json::from_str(&s).unwrap();
        // Floats survive with JSON precision; structure must be identical.
        assert_eq!(back.design, e.design);
        assert_eq!(back.objects.len(), e.objects.len());
        assert!((back.die.area().as_mm2() - e.die.area().as_mm2()).abs() < 1e-6);
        assert!((back.wirelength_m - e.wirelength_m).abs() < 1e-9);
        for (x, y) in back.objects.iter().zip(&e.objects) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.class, y.class);
            assert_eq!(x.region, y.region);
        }
        let mut buf = Vec::new();
        e.write_json(&mut buf).unwrap();
        assert!(!buf.is_empty());
    }
}
