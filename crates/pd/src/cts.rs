//! Clock-tree synthesis estimation: H-tree topology over the placed
//! flip-flops, buffer count, wirelength, insertion delay, skew bound and
//! clock power — refining the per-flop constant used by the quick power
//! model.

use serde::{Deserialize, Serialize};

use m3d_netlist::Netlist;
use m3d_tech::stdcell::{CellKind, DriveStrength};
use m3d_tech::units::{Microns, Milliwatts, Nanoseconds};
use m3d_tech::{Pdk, TechResult};

use crate::floorplan::Floorplan;
use crate::geom::Point;
use crate::place::Placement;

/// Maximum sinks one leaf clock buffer drives.
const SINKS_PER_LEAF: usize = 32;

/// Estimated clock tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockTree {
    /// Sequential sinks served.
    pub sinks: usize,
    /// H-tree levels from the root to the leaf drivers.
    pub levels: u32,
    /// Clock buffers inserted (internal nodes + leaf drivers).
    pub buffers: usize,
    /// Total clock-network wirelength.
    pub wirelength: Microns,
    /// Root-to-leaf insertion delay.
    pub insertion_delay: Nanoseconds,
    /// Worst-case skew bound (last-level spread).
    pub skew_bound: Nanoseconds,
    /// Clock network power at the target frequency.
    pub power: Milliwatts,
}

/// Estimates an H-tree clock network for the placed design.
///
/// # Errors
///
/// Returns technology errors for cells missing from the PDK libraries.
pub fn estimate_clock_tree(
    netlist: &Netlist,
    placement: &Placement,
    floorplan: &Floorplan,
    pdk: &Pdk,
) -> TechResult<ClockTree> {
    // --- Collect sequential sinks ----------------------------------------
    let mut sinks: Vec<Point> = Vec::new();
    let mut sink_cap = 0.0f64;
    for (ci, c) in netlist.cells().iter().enumerate() {
        if c.kind.is_sequential() {
            sinks.push(placement.cell_pos[ci]);
            let lib = pdk.library(c.tier)?;
            sink_cap += lib.cell(c.kind, c.drive)?.input_cap.value();
        }
    }
    let n = sinks.len();
    if n == 0 {
        return Ok(ClockTree {
            sinks: 0,
            levels: 0,
            buffers: 0,
            wirelength: Microns::ZERO,
            insertion_delay: Nanoseconds::ZERO,
            skew_bound: Nanoseconds::ZERO,
            power: Milliwatts::ZERO,
        });
    }

    // --- H-tree sizing ------------------------------------------------------
    // Leaves of SINKS_PER_LEAF flops; a binary H-tree above them.
    let leaves = n.div_ceil(SINKS_PER_LEAF).max(1);
    let levels = (leaves as f64).log2().ceil().max(0.0) as u32;
    let buffers = (2usize.pow(levels + 1) - 1) + leaves;

    // H-tree wire: each level spans half the previous extent, starting at
    // the die half-perimeter; leaf stubs average half the leaf pitch.
    let die_w = floorplan.die.width().value();
    let die_h = floorplan.die.height().value();
    let mut wire = 0.0f64;
    let mut span = (die_w + die_h) / 2.0;
    for _ in 0..levels {
        wire += span * 2.0; // both branches of the H at this level
        span /= 2.0;
    }
    let leaf_pitch = (die_w * die_h / leaves as f64).sqrt();
    wire +=
        leaf_pitch * 0.5 * n as f64 / SINKS_PER_LEAF as f64 + leaf_pitch * 0.25 * n as f64 / 4.0;

    // --- Delay / skew ---------------------------------------------------------
    let buf = pdk.si_lib.cell(CellKind::Buf, DriveStrength::X8)?;
    let c_per_um = pdk.stack.avg_capacitance_per_um();
    let seg = if levels > 0 {
        wire / f64::from(levels + 1)
    } else {
        wire
    };
    let stage_load = c_per_um * seg + buf.input_cap;
    let stage_delay = buf.delay(stage_load);
    let insertion = stage_delay * f64::from(levels + 1);
    // Balanced H-tree: skew bounded by one leaf-stub RC spread.
    let leaf_rc = pdk.stack.avg_resistance_per_um()
        * (leaf_pitch * 0.5)
        * (c_per_um * (leaf_pitch * 0.5) * 0.5 + Femto(sink_cap / leaves as f64));
    let skew = leaf_rc;

    // --- Power ------------------------------------------------------------------
    // Full-swing every cycle: C_total × Vdd² × f.
    let c_total_ff = c_per_um.value() * wire + sink_cap + buffers as f64 * buf.input_cap.value();
    let f_mhz = pdk.default_clock.value();
    let power_mw = c_total_ff * pdk.vdd * pdk.vdd * f_mhz * 1.0e-6;

    Ok(ClockTree {
        sinks: n,
        levels,
        buffers,
        wirelength: Microns::new(wire),
        insertion_delay: insertion,
        skew_bound: skew,
        power: Milliwatts::new(power_mw),
    })
}

/// Helper: femtofarads from a raw value (keeps the RC expression tidy).
#[allow(non_snake_case)]
fn Femto(v: f64) -> m3d_tech::units::Femtofarads {
    m3d_tech::units::Femtofarads::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::place::{place, PlacerConfig};
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig, SocConfig};

    fn setup() -> (Netlist, Placement, Floorplan, Pdk) {
        let cfg = SocConfig {
            cs: CsConfig {
                rows: 4,
                cols: 4,
                pe: PeConfig::default(),
                global_buffer_kb: 64,
                local_buffer_kb: 8,
            },
            ..SocConfig::baseline_2d()
        };
        let pdk = Pdk::baseline_2d_130nm();
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        (nl, p, fp, pdk)
    }

    #[test]
    fn tree_covers_all_flops() {
        let (nl, p, fp, pdk) = setup();
        let t = estimate_clock_tree(&nl, &p, &fp, &pdk).unwrap();
        let flops = nl.cells().iter().filter(|c| c.kind.is_sequential()).count();
        assert_eq!(t.sinks, flops);
        assert!(t.buffers > flops / SINKS_PER_LEAF);
        assert!(t.levels >= 1);
    }

    #[test]
    fn physically_sensible_numbers() {
        let (nl, p, fp, pdk) = setup();
        let t = estimate_clock_tree(&nl, &p, &fp, &pdk).unwrap();
        assert!(t.wirelength.value() > fp.die.width().value());
        assert!(t.insertion_delay.value() > 0.0 && t.insertion_delay.value() < 20.0);
        assert!(t.skew_bound < t.insertion_delay);
        // Clock power is a small-but-real fraction of a ~17 mW chip.
        assert!(
            t.power.value() > 0.05 && t.power.value() < 20.0,
            "{}",
            t.power
        );
    }

    #[test]
    fn empty_design_has_empty_tree() {
        let nl = Netlist::new("empty");
        let (_, p, fp, pdk) = setup();
        let empty_place = Placement {
            cell_pos: Vec::new(),
            ..p
        };
        let t = estimate_clock_tree(&nl, &empty_place, &fp, &pdk).unwrap();
        assert_eq!(t.sinks, 0);
        assert_eq!(t.buffers, 0);
        assert_eq!(t.power, Milliwatts::ZERO);
    }
}
