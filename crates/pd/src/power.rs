//! Power analysis: activity-based dynamic power, clock-network power,
//! leakage, macro access power and the on-die power-density map.
//!
//! Stands in for the paper's Cadence Tempus sign-off ("power analysis is
//! performed using Cadence Tempus with default activation factors").
//! The density map supports Observation 2: the power dissipated in the
//! M3D upper layers (CNFET selectors + RRAM cells) is < 1 % of total chip
//! power, so peak power density grows ≈ 1 % vs the 2D baseline.

use serde::{Deserialize, Serialize};

use m3d_netlist::{MacroKind, Netlist};
use m3d_tech::units::{Femtofarads, Megahertz, Milliwatts};
use m3d_tech::{Pdk, StableHash, StableHasher, TechResult};

use crate::floorplan::Floorplan;
use crate::place::Placement;
use crate::route::RoutingEstimate;

/// Default signal activity factor (fraction of cycles a net toggles).
pub const DEFAULT_ACTIVITY: f64 = 0.15;

/// Fraction of an RRAM access's dynamic energy dissipated in the cell
/// array itself (selector + cell); the remainder is peripheral (sense
/// amplifiers, drivers, controllers) and stays in the Si tier.
pub const RRAM_CELL_ENERGY_FRACTION: f64 = 0.08;

/// Fraction of cycles each memory port is active.
const MACRO_ACTIVITY: f64 = 0.25;

/// Estimated clock-network wire capacitance per sequential cell.
const CLOCK_WIRE_CAP_PER_FF: f64 = 3.0;

/// Tiled per-block power map of a signed-off design, split by vertical
/// position: Si-tier power (standard cells, SRAM buffers, RRAM
/// peripherals) and upper-layer power (RRAM cells + CNFET selectors when
/// the M3D stack frees the Si tier). Row-major, `iy * nx + ix`,
/// origin at the die's lower-left corner.
///
/// This is the heat-source input a thermal solver lays onto its grid:
/// each tile's `si_mw` heats the active device slabs, `upper_mw` the
/// BEOL memory slabs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerDensityGrid {
    /// Tile columns.
    pub nx: usize,
    /// Tile rows.
    pub ny: usize,
    /// Tile edge length in µm.
    pub tile_um: f64,
    /// Die origin (lower-left) x in µm.
    pub x0_um: f64,
    /// Die origin (lower-left) y in µm.
    pub y0_um: f64,
    /// Si-tier power per tile, in mW (`ny * nx` entries, row-major).
    pub si_mw: Vec<f64>,
    /// Upper-layer (BEOL RRAM + selector) power per tile, in mW.
    pub upper_mw: Vec<f64>,
}

impl PowerDensityGrid {
    /// Combined (all-tier) power of tile `(ix, iy)`, in mW.
    pub fn total_mw(&self, ix: usize, iy: usize) -> f64 {
        self.si_mw[iy * self.nx + ix] + self.upper_mw[iy * self.nx + ix]
    }

    /// Tile footprint in mm².
    pub fn tile_area_mm2(&self) -> f64 {
        self.tile_um * self.tile_um / 1.0e6
    }

    /// Total deposited power across all tiles and tiers, in mW.
    pub fn total_power_mw(&self) -> f64 {
        self.si_mw.iter().sum::<f64>() + self.upper_mw.iter().sum::<f64>()
    }

    /// Peak combined tile density in mW/mm².
    pub fn peak_density_mw_per_mm2(&self) -> f64 {
        let peak = self
            .si_mw
            .iter()
            .zip(&self.upper_mw)
            .map(|(s, u)| s + u)
            .fold(0.0, f64::max);
        peak / self.tile_area_mm2()
    }

    /// Scales every deposit by `factor` (power-sweep what-ifs without
    /// re-running sign-off).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            si_mw: self.si_mw.iter().map(|p| p * factor).collect(),
            upper_mw: self.upper_mw.iter().map(|p| p * factor).collect(),
            ..self.clone()
        }
    }
}

impl StableHash for PowerDensityGrid {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.nx.stable_hash(h);
        self.ny.stable_hash(h);
        self.tile_um.stable_hash(h);
        self.x0_um.stable_hash(h);
        self.y0_um.stable_hash(h);
        self.si_mw.stable_hash(h);
        self.upper_mw.stable_hash(h);
    }
}

/// Power analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Combinational + sequential switching power.
    pub cell_dynamic: Milliwatts,
    /// Clock network power.
    pub clock: Milliwatts,
    /// Standard-cell leakage.
    pub cell_leakage: Milliwatts,
    /// Memory macro power (access + leakage), all tiers.
    pub macro_power: Milliwatts,
    /// Power dissipated in the upper M3D layers (CNFET selectors + RRAM
    /// cells); zero in the 2D baseline.
    pub upper_tier: Milliwatts,
    /// Total chip power.
    pub total: Milliwatts,
    /// Peak power density over 1 mm² tiles, in mW/mm².
    pub peak_density_mw_per_mm2: f64,
    /// Average power density over the die, in mW/mm².
    pub avg_density_mw_per_mm2: f64,
    /// Power of the hottest computing sub-system (cells + buffers with a
    /// `cs<i>/` name prefix), in mW — the basis of the paper's
    /// Observation 2 peak-density comparison: CSs are replicated, not
    /// stacked, so the hottest block's density barely changes.
    pub hottest_cs_power_mw: f64,
    /// Power of the RRAM cell-array layers per mm² of array, in mW/mm²
    /// (the density the M3D upper tiers add on top of whatever sits
    /// underneath).
    pub upper_layer_density_mw_per_mm2: f64,
    /// Activity factor used.
    pub activity: f64,
    /// Clock frequency used.
    pub clock_freq: Megahertz,
    /// The tiled per-block power map (Si vs upper layers) behind the
    /// density scalars above — the thermal solver's heat-source input.
    pub density_grid: PowerDensityGrid,
}

impl PowerReport {
    /// Upper-tier share of total power (Observation 2's "< 1 %").
    pub fn upper_tier_fraction(&self) -> f64 {
        if self.total.value() <= 0.0 {
            0.0
        } else {
            self.upper_tier.value() / self.total.value()
        }
    }
}

/// Runs power analysis on a placed-and-routed design at `clock`.
///
/// # Errors
///
/// Returns technology errors when a cell is missing from the PDK
/// libraries.
///
/// # Panics
///
/// Panics when `routing` does not match `netlist`.
pub fn analyze_power(
    netlist: &Netlist,
    routing: &RoutingEstimate,
    placement: &Placement,
    floorplan: &Floorplan,
    pdk: &Pdk,
    clock: Megahertz,
    activity: f64,
) -> TechResult<PowerReport> {
    assert_eq!(routing.nets.len(), netlist.net_count());
    let f_mhz = clock.value();
    // pJ × MHz = µW; µW × 1e-3 = mW.
    let pj_mhz_to_mw = 1.0e-3;

    // --- Density grid ------------------------------------------------------
    let tile = 1000.0_f64; // 1 mm tiles
    let nx = (floorplan.die.width().value() / tile).ceil().max(1.0) as usize;
    let ny = (floorplan.die.height().value() / tile).ceil().max(1.0) as usize;
    // Si-tier and upper-layer (BEOL RRAM) deposits tracked separately;
    // the density scalars below use their per-tile sum, so they are
    // unchanged by the split.
    let mut si_grid = vec![0.0f64; nx * ny];
    let mut upper_grid = vec![0.0f64; nx * ny];
    let x0 = floorplan.die.x0.value();
    let y0 = floorplan.die.y0.value();
    let deposit = |x: f64, y: f64, mw: f64, grid: &mut Vec<f64>| {
        let bx = (((x - x0) / tile).floor().max(0.0) as usize).min(nx - 1);
        let by = (((y - y0) / tile).floor().max(0.0) as usize).min(ny - 1);
        grid[by * nx + bx] += mw;
    };
    let spread = |r: &crate::geom::Rect, mw: f64, grid: &mut Vec<f64>| {
        // Deposit uniformly over the tiles the rect covers.
        let bx0 = (((r.x0.value() - x0) / tile).floor().max(0.0) as usize).min(nx - 1);
        let by0 = (((r.y0.value() - y0) / tile).floor().max(0.0) as usize).min(ny - 1);
        let bx1 = (((r.x1.value() - x0) / tile).ceil().max(1.0) as usize).min(nx);
        let by1 = (((r.y1.value() - y0) / tile).ceil().max(1.0) as usize).min(ny);
        let tiles = ((bx1 - bx0).max(1) * (by1 - by0).max(1)) as f64;
        for by in by0..by1.max(by0 + 1) {
            for bx in bx0..bx1.max(bx0 + 1) {
                grid[by * nx + bx] += mw / tiles;
            }
        }
    };

    // --- Standard cells ----------------------------------------------------
    let mut cell_dynamic = 0.0f64;
    let mut cell_leak = 0.0f64;
    let mut clock_mw = 0.0f64;
    let mut per_cs_power: std::collections::BTreeMap<String, f64> = Default::default();
    let cs_key = |name: &str| -> Option<String> {
        let first = name.split('/').next()?;
        (first.starts_with("cs")
            && first[2..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit()))
        .then(|| first.trim_end_matches("_if").to_owned())
    };
    for (ci, cell) in netlist.cells().iter().enumerate() {
        let lib = pdk.library(cell.tier)?;
        let lc = lib.cell(cell.kind, cell.drive)?;
        let mut load = Femtofarads::ZERO;
        for out in &cell.outputs {
            load += routing.nets[out.0 as usize].total_cap();
        }
        let e_sw = lc.switching_energy(load, lib.vdd).value();
        let p_dyn = activity * f_mhz * e_sw * pj_mhz_to_mw;
        cell_dynamic += p_dyn;
        let p_leak = lc.leakage_nw * 1.0e-6;
        cell_leak += p_leak;
        let mut p_cell = p_dyn + p_leak;
        if cell.kind.is_sequential() {
            // c_clk in fF × V² = fJ per cycle; fJ × MHz = nW; nW → mW is 1e-6.
            let c_clk = lc.input_cap.value() + CLOCK_WIRE_CAP_PER_FF;
            let p_clk = c_clk * lib.vdd * lib.vdd * f_mhz * 1.0e-6;
            clock_mw += p_clk;
            p_cell += p_clk;
        }
        let pos = placement.cell_pos[ci];
        deposit(pos.x.value(), pos.y.value(), p_cell, &mut si_grid);
        if let Some(key) = cs_key(&cell.name) {
            *per_cs_power.entry(key).or_default() += p_cell;
        }
    }

    // --- Macros --------------------------------------------------------------
    let mut macro_mw = 0.0f64;
    let mut upper_mw = 0.0f64;
    for (mi, m) in netlist.macros().iter().enumerate() {
        match &m.kind {
            MacroKind::Sram(s) => {
                let port_bits = m.drives.len().max(8) as u64;
                let e_access = s.read_energy(port_bits).value();
                let p = MACRO_ACTIVITY * f_mhz * e_access * pj_mhz_to_mw + s.leakage_mw();
                macro_mw += p;
                // Spread over the macro footprint rather than one point.
                let pos = placement.macro_pos[mi];
                let half = s.footprint().value().max(1.0).sqrt() / 2.0;
                let r = crate::geom::Rect::new(
                    pos.x.value() - half,
                    pos.y.value() - half,
                    pos.x.value() + half,
                    pos.y.value() + half,
                );
                spread(&r, p, &mut si_grid);
                if let Some(key) = cs_key(&m.name) {
                    *per_cs_power.entry(key).or_default() += p;
                }
            }
            MacroKind::Rram(r) => {
                let bits_per_cycle = r.total_bandwidth_bits_per_cycle();
                let e_access = r.read_energy(bits_per_cycle).value();
                let p_dyn = MACRO_ACTIVITY * f_mhz * e_access * pj_mhz_to_mw;
                let p = p_dyn + r.leakage_mw();
                macro_mw += p;
                // The cell-array share lands in the BEOL layers when the
                // selectors free the Si tier (M3D); otherwise the array
                // sits on Si and heats the bottom tier like everything
                // else.
                let (p_cellarray, p_perif, array_is_upper) = if r.selector.frees_si_tier() {
                    let up = p_dyn * RRAM_CELL_ENERGY_FRACTION;
                    upper_mw += up;
                    (up, p - up, true)
                } else {
                    (
                        p_dyn * RRAM_CELL_ENERGY_FRACTION,
                        p * (1.0 - RRAM_CELL_ENERGY_FRACTION),
                        false,
                    )
                };
                let array_grid = if array_is_upper {
                    &mut upper_grid
                } else {
                    &mut si_grid
                };
                spread(&floorplan.rram_array().rect, p_cellarray, array_grid);
                spread(&floorplan.rram_periph().rect, p_perif, &mut si_grid);
            }
            // Opaque ingested blocks have no power model: they occupy
            // area (clustering/floorplan) but dissipate nothing here.
            MacroKind::BlackBox { .. } => {}
        }
    }

    let total = cell_dynamic + clock_mw + cell_leak + macro_mw;
    let density_grid = PowerDensityGrid {
        nx,
        ny,
        tile_um: tile,
        x0_um: x0,
        y0_um: y0,
        si_mw: si_grid,
        upper_mw: upper_grid,
    };
    let peak = density_grid
        .si_mw
        .iter()
        .zip(&density_grid.upper_mw)
        .map(|(s, u)| s + u)
        .fold(0.0, f64::max);
    let die_mm2 = floorplan.die.area().as_mm2();
    let hottest_cs = per_cs_power.values().copied().fold(0.0, f64::max);
    let array_mm2 = floorplan.rram_array().rect.area().as_mm2();
    let upper_density = if array_mm2 > 0.0 {
        upper_mw / array_mm2
    } else {
        0.0
    };
    Ok(PowerReport {
        cell_dynamic: Milliwatts::new(cell_dynamic),
        clock: Milliwatts::new(clock_mw),
        cell_leakage: Milliwatts::new(cell_leak),
        macro_power: Milliwatts::new(macro_mw),
        upper_tier: Milliwatts::new(upper_mw),
        total: Milliwatts::new(total),
        peak_density_mw_per_mm2: peak / (tile * tile / 1.0e6),
        avg_density_mw_per_mm2: if die_mm2 > 0.0 { total / die_mm2 } else { 0.0 },
        hottest_cs_power_mw: hottest_cs,
        upper_layer_density_mw_per_mm2: upper_density,
        activity,
        clock_freq: clock,
        density_grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::floorplan::Floorplan;
    use crate::place::{place, PlacerConfig};
    use crate::route::{estimate_routing, DEFAULT_DETOUR};
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig, SocConfig};

    fn analyzed(m3d: bool) -> PowerReport {
        let cs = CsConfig {
            rows: 4,
            cols: 4,
            pe: PeConfig::default(),
            global_buffer_kb: 64,
            local_buffer_kb: 8,
        };
        let (cfg, pdk) = if m3d {
            (
                SocConfig {
                    cs,
                    ..SocConfig::m3d(2)
                },
                Pdk::m3d_130nm(),
            )
        } else {
            (
                SocConfig {
                    cs,
                    ..SocConfig::baseline_2d()
                },
                Pdk::baseline_2d_130nm(),
            )
        };
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        let r = estimate_routing(&nl, &p, &pdk, DEFAULT_DETOUR).unwrap();
        analyze_power(&nl, &r, &p, &fp, &pdk, pdk.default_clock, DEFAULT_ACTIVITY).unwrap()
    }

    #[test]
    fn power_components_positive_and_consistent() {
        let p = analyzed(false);
        assert!(p.cell_dynamic.value() > 0.0);
        assert!(p.clock.value() > 0.0);
        assert!(p.cell_leakage.value() > 0.0);
        assert!(p.macro_power.value() > 0.0);
        let sum = p.cell_dynamic + p.clock + p.cell_leakage + p.macro_power;
        assert!((sum.value() - p.total.value()).abs() < 1e-9);
    }

    #[test]
    fn baseline_has_no_upper_tier_power() {
        let p = analyzed(false);
        assert_eq!(p.upper_tier.value(), 0.0);
        assert_eq!(p.upper_tier_fraction(), 0.0);
    }

    #[test]
    fn m3d_upper_tier_power_is_small() {
        let p = analyzed(true);
        assert!(p.upper_tier.value() > 0.0);
        assert!(
            p.upper_tier_fraction() < 0.05,
            "upper tier fraction {} too large",
            p.upper_tier_fraction()
        );
    }

    #[test]
    fn density_sane() {
        let p = analyzed(false);
        assert!(p.peak_density_mw_per_mm2 >= p.avg_density_mw_per_mm2);
        assert!(p.peak_density_mw_per_mm2 < 1000.0);
    }

    #[test]
    fn density_grid_accounts_for_all_power() {
        let p = analyzed(true);
        let g = &p.density_grid;
        assert_eq!(g.si_mw.len(), g.nx * g.ny);
        assert_eq!(g.upper_mw.len(), g.nx * g.ny);
        // Every milliwatt of the sign-off lands in some tile.
        assert!(
            (g.total_power_mw() - p.total.value()).abs() < 1e-6,
            "grid {} vs total {}",
            g.total_power_mw(),
            p.total.value()
        );
        // The scalar peak is derived from the same grid.
        assert!((g.peak_density_mw_per_mm2() - p.peak_density_mw_per_mm2).abs() < 1e-9);
        // M3D: the upper layers carry exactly the upper-tier power.
        assert!((g.upper_mw.iter().sum::<f64>() - p.upper_tier.value()).abs() < 1e-9);
    }

    #[test]
    fn baseline_grid_has_empty_upper_layers() {
        let p = analyzed(false);
        assert_eq!(p.density_grid.upper_mw.iter().sum::<f64>(), 0.0);
        assert!(p.density_grid.si_mw.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn grid_scaling_and_stable_key() {
        let p = analyzed(false);
        let g = &p.density_grid;
        let double = g.scaled(2.0);
        assert!((double.total_power_mw() - 2.0 * g.total_power_mw()).abs() < 1e-9);
        assert_eq!(g.stable_key(), p.density_grid.clone().stable_key());
        assert_ne!(g.stable_key(), double.stable_key());
    }

    #[test]
    fn power_scales_with_frequency() {
        // Doubling the clock should roughly double dynamic power.
        let cs = CsConfig {
            rows: 4,
            cols: 4,
            pe: PeConfig::default(),
            global_buffer_kb: 64,
            local_buffer_kb: 8,
        };
        let cfg = SocConfig {
            cs,
            ..SocConfig::baseline_2d()
        };
        let pdk = Pdk::baseline_2d_130nm();
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        let pl = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        let r = estimate_routing(&nl, &pl, &pdk, DEFAULT_DETOUR).unwrap();
        let p1 = analyze_power(&nl, &r, &pl, &fp, &pdk, Megahertz::new(20.0), 0.15).unwrap();
        let p2 = analyze_power(&nl, &r, &pl, &fp, &pdk, Megahertz::new(40.0), 0.15).unwrap();
        let ratio = p2.cell_dynamic.value() / p1.cell_dynamic.value();
        assert!((ratio - 2.0).abs() < 1e-9);
        assert!(
            p2.cell_leakage == p1.cell_leakage,
            "leakage is frequency independent"
        );
    }
}
