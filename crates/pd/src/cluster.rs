//! Hierarchical clustering of a flat netlist into soft blocks for global
//! placement.
//!
//! Cells are grouped by the leading segments of their hierarchical names
//! (e.g. every cell under `cs0/pe_r3_c7/` forms one cluster), mirroring
//! the hierarchical P&R methodology of large SoCs. SRAM macros become
//! movable hard clusters; the RRAM macro is fixed by the floorplan.
//! The cluster graph (clusters + inter-cluster nets) is what the annealer
//! optimises; intra-cluster wirelength is estimated analytically.

use std::collections::HashMap;

use m3d_netlist::{Driver, MacroKind, Netlist, Sink};
use m3d_tech::units::SquareMicrons;
use m3d_tech::{Pdk, TechResult};

/// What a cluster contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterKind {
    /// A group of standard cells.
    Logic,
    /// One movable SRAM macro (index into the netlist's macro list).
    SramMacro(usize),
    /// The fixed RRAM macro (index into the netlist's macro list).
    RramMacro(usize),
    /// Virtual cluster representing the chip IO ring (fixed at the die
    /// edge).
    Io,
}

/// One placement cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Cluster name (hierarchy prefix or macro name).
    pub name: String,
    /// Contents.
    pub kind: ClusterKind,
    /// Member cell indices (empty for macro/IO clusters).
    pub cells: Vec<u32>,
    /// Placed-footprint demand of the cluster (cell area for logic —
    /// utilisation is applied by the placer; full footprint for macros).
    pub area: SquareMicrons,
}

impl Cluster {
    /// `true` for clusters the placer may move.
    pub fn is_movable(&self) -> bool {
        matches!(self.kind, ClusterKind::Logic | ClusterKind::SramMacro(_))
    }
}

/// One inter-cluster net: the distinct clusters it touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterNet {
    /// Indices of the touched clusters (deduplicated, ≥ 2).
    pub clusters: Vec<u32>,
}

/// The clustered view of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// All clusters. Index 0 is always the IO cluster.
    pub clusters: Vec<Cluster>,
    /// Map from cell index to owning cluster index.
    pub cell_cluster: Vec<u32>,
    /// Inter-cluster nets.
    pub nets: Vec<ClusterNet>,
    /// Per-cluster count of fully internal nets (for intra-WL estimates).
    pub intra_net_count: Vec<u32>,
    /// Nets skipped because their fanout exceeded the global-net
    /// threshold (tie-offs, resets — distributed by special routing).
    pub skipped_global_nets: usize,
}

/// Nets with more sinks than this are treated as globally distributed
/// (constants, resets) and excluded from placement wirelength.
pub const GLOBAL_NET_FANOUT: usize = 64;

/// Clusters with fewer cells than this merge into a per-top-block
/// miscellaneous cluster to keep the cluster graph compact.
pub const MIN_CLUSTER_CELLS: usize = 8;

/// Number of leading hierarchy segments that define a cluster.
pub const CLUSTER_DEPTH: usize = 2;

fn prefix_of(name: &str, depth: usize) -> &str {
    let mut idx = name.len();
    let mut seen = 0;
    for (i, b) in name.bytes().enumerate() {
        if b == b'/' {
            seen += 1;
            if seen == depth {
                idx = i;
                break;
            }
        }
    }
    &name[..idx]
}

impl Clustering {
    /// Builds the clustered view of `netlist` under `pdk`.
    ///
    /// # Errors
    ///
    /// Returns technology errors when a cell is missing from the PDK
    /// libraries (e.g. CNFET cells under the 2D blockage).
    pub fn build(netlist: &Netlist, pdk: &Pdk) -> TechResult<Self> {
        let mut clusters: Vec<Cluster> = vec![Cluster {
            name: "__io__".to_owned(),
            kind: ClusterKind::Io,
            cells: Vec::new(),
            area: SquareMicrons::ZERO,
        }];
        let mut by_prefix: HashMap<String, u32> = HashMap::new();

        // --- Group cells by hierarchy prefix ---------------------------
        let mut cell_cluster = vec![0u32; netlist.cell_count()];
        for (i, cell) in netlist.cells().iter().enumerate() {
            let key = prefix_of(&cell.name, CLUSTER_DEPTH).to_owned();
            let idx = *by_prefix.entry(key.clone()).or_insert_with(|| {
                clusters.push(Cluster {
                    name: key,
                    kind: ClusterKind::Logic,
                    cells: Vec::new(),
                    area: SquareMicrons::ZERO,
                });
                (clusters.len() - 1) as u32
            });
            let lib = pdk.library(cell.tier)?;
            let area = lib.cell(cell.kind, cell.drive)?.area;
            clusters[idx as usize].cells.push(i as u32);
            clusters[idx as usize].area += area;
            cell_cluster[i] = idx;
        }

        // --- Merge tiny clusters into per-top-block misc groups --------
        let mut remap: Vec<u32> = (0..clusters.len() as u32).collect();
        {
            let mut misc_of: HashMap<String, u32> = HashMap::new();
            let tiny: Vec<u32> = clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    matches!(c.kind, ClusterKind::Logic) && c.cells.len() < MIN_CLUSTER_CELLS
                })
                .map(|(i, _)| i as u32)
                .collect();
            for t in tiny {
                let top = prefix_of(&clusters[t as usize].name, 1).to_owned();
                let misc_idx = *misc_of.entry(top.clone()).or_insert_with(|| {
                    clusters.push(Cluster {
                        name: format!("{top}/__misc__"),
                        kind: ClusterKind::Logic,
                        cells: Vec::new(),
                        area: SquareMicrons::ZERO,
                    });
                    (clusters.len() - 1) as u32
                });
                if misc_idx == t {
                    continue;
                }
                let (cells, area) = {
                    let c = &mut clusters[t as usize];
                    (std::mem::take(&mut c.cells), c.area)
                };
                clusters[t as usize].area = SquareMicrons::ZERO;
                let misc = &mut clusters[misc_idx as usize];
                misc.cells.extend(cells);
                misc.area += area;
                remap[t as usize] = misc_idx;
            }
        }
        // Compact: drop emptied logic clusters.
        let mut compact: Vec<u32> = vec![u32::MAX; clusters.len()];
        let mut kept: Vec<Cluster> = Vec::with_capacity(clusters.len());
        for (i, c) in clusters.into_iter().enumerate() {
            let is_empty_logic = matches!(c.kind, ClusterKind::Logic) && c.cells.is_empty();
            if !is_empty_logic {
                compact[i] = kept.len() as u32;
                kept.push(c);
            }
        }
        let mut clusters = kept;
        let final_of = |idx: u32, remap: &[u32], compact: &[u32]| -> u32 {
            compact[remap[idx as usize] as usize]
        };
        for cc in &mut cell_cluster {
            *cc = final_of(*cc, &remap, &compact);
        }

        // --- Macro clusters ---------------------------------------------
        let mut macro_cluster: Vec<u32> = Vec::with_capacity(netlist.macros().len());
        for (i, m) in netlist.macros().iter().enumerate() {
            let (kind, area) = match &m.kind {
                MacroKind::Sram(s) => (ClusterKind::SramMacro(i), s.footprint()),
                MacroKind::Rram(r) => (ClusterKind::RramMacro(i), r.footprint(pdk.ilv())?),
                // Opaque ingested blocks place like movable macros.
                MacroKind::BlackBox { area, .. } => (ClusterKind::SramMacro(i), *area),
            };
            clusters.push(Cluster {
                name: m.name.clone(),
                kind,
                cells: Vec::new(),
                area,
            });
            macro_cluster.push((clusters.len() - 1) as u32);
        }

        // --- Inter-cluster nets ----------------------------------------
        let mut nets = Vec::new();
        let mut intra = vec![0u32; clusters.len()];
        let mut skipped = 0usize;
        let mut touched: Vec<u32> = Vec::with_capacity(8);
        for net in netlist.nets() {
            if net.fanout() > GLOBAL_NET_FANOUT {
                skipped += 1;
                continue;
            }
            touched.clear();
            match net.driver {
                Some(Driver::Cell { cell, .. }) => touched.push(cell_cluster[cell.0 as usize]),
                Some(Driver::Macro { id }) => touched.push(macro_cluster[id.0 as usize]),
                Some(Driver::PrimaryInput) => touched.push(0),
                None => {}
            }
            for s in &net.sinks {
                let c = match s {
                    Sink::Cell { cell, .. } => cell_cluster[cell.0 as usize],
                    Sink::Macro { id } => macro_cluster[id.0 as usize],
                    Sink::PrimaryOutput => 0,
                };
                touched.push(c);
            }
            touched.sort_unstable();
            touched.dedup();
            match touched.len() {
                0 => {}
                1 => intra[touched[0] as usize] += 1,
                _ => nets.push(ClusterNet {
                    clusters: touched.clone(),
                }),
            }
        }

        Ok(Self {
            clusters,
            cell_cluster,
            nets,
            intra_net_count: intra,
            skipped_global_nets: skipped,
        })
    }

    /// Total area demand of all movable clusters.
    pub fn movable_area(&self) -> SquareMicrons {
        self.clusters
            .iter()
            .filter(|c| c.is_movable())
            .map(|c| c.area)
            .sum()
    }

    /// Index of the cluster owning macro `i`, if any.
    pub fn macro_cluster(&self, i: usize) -> Option<usize> {
        self.clusters.iter().position(
            |c| matches!(&c.kind, ClusterKind::SramMacro(j) | ClusterKind::RramMacro(j) if *j == i),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig, SocConfig};

    fn small_soc() -> Netlist {
        let mut nl = Netlist::new("soc");
        let cfg = SocConfig {
            cs: CsConfig {
                rows: 4,
                cols: 4,
                pe: PeConfig::default(),
                global_buffer_kb: 64,
                local_buffer_kb: 8,
            },
            ..SocConfig::baseline_2d()
        };
        accelerator_soc(&mut nl, &cfg).unwrap();
        nl
    }

    #[test]
    fn prefix_extraction() {
        assert_eq!(prefix_of("cs0/pe_r1_c2/mult/fa3", 2), "cs0/pe_r1_c2");
        assert_eq!(prefix_of("cs0/pe_r1_c2/mult/fa3", 1), "cs0");
        assert_eq!(prefix_of("toplevel", 2), "toplevel");
        assert_eq!(prefix_of("a/b", 5), "a/b");
    }

    #[test]
    fn clustering_covers_every_cell() {
        let nl = small_soc();
        let pdk = Pdk::baseline_2d_130nm();
        let c = Clustering::build(&nl, &pdk).unwrap();
        assert_eq!(c.cell_cluster.len(), nl.cell_count());
        let mut counted = 0usize;
        for cl in &c.clusters {
            counted += cl.cells.len();
        }
        assert_eq!(counted, nl.cell_count());
        // Every cell's recorded cluster actually lists it.
        for (i, &cc) in c.cell_cluster.iter().enumerate().step_by(97) {
            assert!(c.clusters[cc as usize].cells.contains(&(i as u32)));
        }
    }

    #[test]
    fn pe_clusters_exist_and_no_tiny_logic_clusters_remain() {
        let nl = small_soc();
        let pdk = Pdk::baseline_2d_130nm();
        let c = Clustering::build(&nl, &pdk).unwrap();
        assert!(c.clusters.iter().any(|cl| cl.name == "cs0/pe_r0_c0"));
        for cl in &c.clusters {
            if matches!(cl.kind, ClusterKind::Logic) && !cl.name.ends_with("__misc__") {
                assert!(
                    cl.cells.len() >= MIN_CLUSTER_CELLS,
                    "{} has {} cells",
                    cl.name,
                    cl.cells.len()
                );
            }
        }
    }

    #[test]
    fn macros_become_clusters() {
        let nl = small_soc();
        let pdk = Pdk::baseline_2d_130nm();
        let c = Clustering::build(&nl, &pdk).unwrap();
        let rram = c
            .clusters
            .iter()
            .filter(|cl| matches!(cl.kind, ClusterKind::RramMacro(_)))
            .count();
        let sram = c
            .clusters
            .iter()
            .filter(|cl| matches!(cl.kind, ClusterKind::SramMacro(_)))
            .count();
        assert_eq!((rram, sram), (1, 3));
        // RRAM macro is not movable; SRAMs are.
        for cl in &c.clusters {
            match cl.kind {
                ClusterKind::RramMacro(_) | ClusterKind::Io => assert!(!cl.is_movable()),
                ClusterKind::SramMacro(_) | ClusterKind::Logic => assert!(cl.is_movable()),
            }
        }
    }

    #[test]
    fn global_nets_are_skipped() {
        let nl = small_soc();
        let pdk = Pdk::baseline_2d_130nm();
        let c = Clustering::build(&nl, &pdk).unwrap();
        // const0 fans out to hundreds of PE partial-sum inputs.
        assert!(c.skipped_global_nets >= 1);
        // All recorded inter-cluster nets touch at least two clusters.
        assert!(c.nets.iter().all(|n| n.clusters.len() >= 2));
        assert!(!c.nets.is_empty());
    }

    #[test]
    fn areas_roll_up() {
        let nl = small_soc();
        let pdk = Pdk::baseline_2d_130nm();
        let c = Clustering::build(&nl, &pdk).unwrap();
        let stats = m3d_netlist::NetlistStats::compute(&nl, &pdk).unwrap();
        let logic_area: SquareMicrons = c
            .clusters
            .iter()
            .filter(|cl| matches!(cl.kind, ClusterKind::Logic))
            .map(|cl| cl.area)
            .sum();
        assert!((logic_area / stats.total_cell_area() - 1.0).abs() < 1e-9);
        assert!(c.movable_area() > logic_area, "SRAMs add to movable area");
    }
}
