//! Error types for the physical-design crate.

use std::error::Error;
use std::fmt;

use m3d_netlist::NetlistError;
use m3d_tech::TechError;

/// Errors produced by floorplanning, placement, routing, timing or the
/// flow driver.
#[derive(Debug)]
#[non_exhaustive]
pub enum PdError {
    /// The design does not fit the die under the iso-footprint constraint.
    DoesNotFit {
        /// Area demanded by the design in mm².
        required_mm2: f64,
        /// Area available in mm².
        available_mm2: f64,
        /// What ran out, e.g. `"free Si placement area"`.
        resource: &'static str,
    },
    /// Timing could not be closed at the target frequency.
    TimingNotMet {
        /// Target clock period in ns.
        target_ns: f64,
        /// Best achieved critical path in ns.
        achieved_ns: f64,
    },
    /// A parameter was outside its meaningful range.
    InvalidParameter {
        /// Parameter name.
        parameter: &'static str,
        /// Offending value.
        value: f64,
        /// Accepted range.
        expected: &'static str,
    },
    /// The netlist was structurally invalid for physical design.
    BadNetlist {
        /// First few lint messages.
        issues: Vec<String>,
    },
    /// Error bubbled up from the technology crate.
    Tech(TechError),
    /// Error bubbled up from the netlist crate.
    Netlist(NetlistError),
}

impl fmt::Display for PdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdError::DoesNotFit {
                required_mm2,
                available_mm2,
                resource,
            } => write!(
                f,
                "design needs {required_mm2:.2} mm² of {resource} but only {available_mm2:.2} mm² is available"
            ),
            PdError::TimingNotMet {
                target_ns,
                achieved_ns,
            } => write!(
                f,
                "timing not met: target {target_ns:.3} ns, achieved {achieved_ns:.3} ns"
            ),
            PdError::InvalidParameter {
                parameter,
                value,
                expected,
            } => write!(
                f,
                "invalid value {value} for parameter `{parameter}` (expected {expected})"
            ),
            PdError::BadNetlist { issues } => {
                write!(f, "netlist is not physical-design ready: ")?;
                for (i, m) in issues.iter().take(3).enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{m}")?;
                }
                Ok(())
            }
            PdError::Tech(e) => write!(f, "technology error: {e}"),
            PdError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for PdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PdError::Tech(e) => Some(e),
            PdError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TechError> for PdError {
    fn from(e: TechError) -> Self {
        PdError::Tech(e)
    }
}

impl From<NetlistError> for PdError {
    fn from(e: NetlistError) -> Self {
        PdError::Netlist(e)
    }
}

/// Convenience result alias for this crate.
pub type PdResult<T> = Result<T, PdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PdError::DoesNotFit {
            required_mm2: 10.0,
            available_mm2: 5.0,
            resource: "free Si placement area",
        };
        assert!(e.to_string().contains("10.00"));
        let e: PdError = TechError::MissingTier { tier: "CNFET" }.into();
        assert!(e.source().is_some());
        let e = PdError::TimingNotMet {
            target_ns: 50.0,
            achieved_ns: 61.0,
        };
        assert!(e.to_string().contains("61.000"));
        let e = PdError::BadNetlist {
            issues: vec!["net `x` is undriven".into()],
        };
        assert!(e.to_string().contains("undriven"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PdError>();
    }
}
