//! Global placement: simulated annealing over the cluster graph with
//! region capacity constraints and bin-based congestion control.
//!
//! The placer assigns every movable cluster (logic groups and SRAM
//! macros) a position inside one of the floorplan's placeable regions,
//! minimising inter-cluster half-perimeter wirelength (HPWL) plus a
//! density-overflow penalty. Fixed clusters (the RRAM macro, the IO
//! ring) anchor the optimisation. Capacity accounting is geometric, as
//! defined by [`Region`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use m3d_tech::units::{Microns, SquareMicrons};

use crate::cluster::{Cluster, ClusterKind, Clustering};
use crate::error::{PdError, PdResult};
use crate::floorplan::{Floorplan, Region};
use crate::geom::{BoundingBox, Point, Rect};
use crate::observe::{round_counter, FlowSpan};

/// Placer tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerConfig {
    /// RNG seed (placement is deterministic for a fixed seed).
    pub seed: u64,
    /// Annealing moves per movable cluster per temperature step.
    pub moves_per_cluster: usize,
    /// Number of temperature steps.
    pub temperature_steps: usize,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// Density bin edge length in microns.
    pub bin_size_um: f64,
    /// Weight of the density-overflow penalty (µm of HPWL per µm² of
    /// overflow).
    pub overflow_weight: f64,
}

impl m3d_tech::StableHash for PlacerConfig {
    fn stable_hash(&self, h: &mut m3d_tech::StableHasher) {
        self.seed.stable_hash(h);
        self.moves_per_cluster.stable_hash(h);
        self.temperature_steps.stable_hash(h);
        self.cooling.stable_hash(h);
        self.bin_size_um.stable_hash(h);
        self.overflow_weight.stable_hash(h);
    }
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            seed: 0x4D3D_2023,
            moves_per_cluster: 8,
            temperature_steps: 25,
            cooling: 0.82,
            bin_size_um: 500.0,
            overflow_weight: 0.05,
        }
    }
}

impl PlacerConfig {
    /// A fast low-effort profile for tests and quick experiments.
    pub fn quick() -> Self {
        Self {
            temperature_steps: 6,
            moves_per_cluster: 4,
            ..Self::default()
        }
    }
}

/// A finished placement.
///
/// Serialisable so the on-disk artifact store can persist placements and
/// warm-start later runs of neighbouring configurations from them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Cluster centre positions (indexed like `Clustering::clusters`).
    pub cluster_pos: Vec<Point>,
    /// Region index each movable cluster landed in (`usize::MAX` for
    /// fixed clusters).
    pub cluster_region: Vec<usize>,
    /// Derived per-cell positions (indexed like `Netlist::cells`).
    pub cell_pos: Vec<Point>,
    /// Derived per-macro positions (indexed like `Netlist::macros`).
    pub macro_pos: Vec<Point>,
    /// Final inter-cluster HPWL.
    pub inter_hpwl: Microns,
    /// Estimated intra-cluster wirelength.
    pub intra_wl: Microns,
    /// HPWL of the deterministic initial placement (before annealing).
    pub initial_hpwl: Microns,
    /// Final density overflow (µm² of demand above bin capacity).
    pub overflow: SquareMicrons,
}

impl Placement {
    /// Total estimated wirelength: inter-cluster + intra-cluster.
    pub fn total_wirelength(&self) -> Microns {
        self.inter_hpwl + self.intra_wl
    }
}

/// Geometric area a cluster demands inside `region`.
fn demand_geo(cluster: &Cluster, region: &Region) -> f64 {
    match cluster.kind {
        ClusterKind::Logic => cluster.area.value() / region.cell_utilization.max(1e-6),
        ClusterKind::SramMacro(_) => cluster.area.value(),
        _ => 0.0,
    }
}

/// Side of the square footprint a cluster occupies inside `region`.
fn footprint_side(cluster: &Cluster, region: &Region) -> f64 {
    demand_geo(cluster, region).max(0.0).sqrt()
}

struct Bins {
    nx: usize,
    ny: usize,
    size: f64,
    origin: (f64, f64),
    capacity: Vec<f64>,
    used: Vec<f64>,
}

impl Bins {
    fn new(fp: &Floorplan, bin_size: f64) -> Self {
        let w = fp.die.width().value();
        let h = fp.die.height().value();
        let nx = (w / bin_size).ceil().max(1.0) as usize;
        let ny = (h / bin_size).ceil().max(1.0) as usize;
        let mut capacity = vec![0.0; nx * ny];
        for by in 0..ny {
            for bx in 0..nx {
                let r = Rect::new(
                    fp.die.x0.value() + bx as f64 * bin_size,
                    fp.die.y0.value() + by as f64 * bin_size,
                    (fp.die.x0.value() + (bx + 1) as f64 * bin_size).min(fp.die.x1.value()),
                    (fp.die.y0.value() + (by + 1) as f64 * bin_size).min(fp.die.y1.value()),
                );
                let mut cap = 0.0;
                for region in &fp.regions {
                    if let Some(i) = r.intersection(&region.rect) {
                        cap += i.area().value() * region.availability;
                    }
                }
                capacity[by * nx + bx] = cap;
            }
        }
        Self {
            nx,
            ny,
            size: bin_size,
            origin: (fp.die.x0.value(), fp.die.y0.value()),
            capacity,
            used: vec![0.0; nx * ny],
        }
    }

    fn block_for(&self, p: Point, side: f64) -> (usize, usize, usize, usize) {
        let half = side / 2.0;
        let x0 = ((p.x.value() - half - self.origin.0) / self.size)
            .floor()
            .max(0.0) as usize;
        let y0 = ((p.y.value() - half - self.origin.1) / self.size)
            .floor()
            .max(0.0) as usize;
        let x1 =
            (((p.x.value() + half - self.origin.0) / self.size).floor() as usize).min(self.nx - 1);
        let y1 =
            (((p.y.value() + half - self.origin.1) / self.size).floor() as usize).min(self.ny - 1);
        (x0.min(self.nx - 1), y0.min(self.ny - 1), x1, y1)
    }

    /// Adds (`sign = +1`) or removes (`sign = -1`) a cluster's demand at
    /// `p`, returning the change in total overflow.
    fn apply(&mut self, p: Point, side: f64, demand: f64, sign: f64) -> f64 {
        let (x0, y0, x1, y1) = self.block_for(p, side);
        let nbins = ((x1.saturating_sub(x0) + 1) * (y1.saturating_sub(y0) + 1)) as f64;
        let per_bin = demand / nbins;
        let mut delta = 0.0;
        for by in y0..=y1 {
            for bx in x0..=x1 {
                let i = by * self.nx + bx;
                let before = (self.used[i] - self.capacity[i]).max(0.0);
                self.used[i] += sign * per_bin;
                let after = (self.used[i] - self.capacity[i]).max(0.0);
                delta += after - before;
            }
        }
        delta
    }

    fn total_overflow(&self) -> f64 {
        self.used
            .iter()
            .zip(&self.capacity)
            .map(|(u, c)| (u - c).max(0.0))
            .sum()
    }
}

/// Runs global placement.
///
/// # Errors
///
/// Returns [`PdError::DoesNotFit`] when the movable clusters cannot be
/// packed into the floorplan's regions.
pub fn place(
    clustering: &Clustering,
    floorplan: &Floorplan,
    config: &PlacerConfig,
) -> PdResult<Placement> {
    place_traced(clustering, floorplan, config).map(|(p, _)| p)
}

/// [`place`], additionally returning a `place` [`FlowSpan`] with one
/// child per annealing temperature step (move/accept counts, rounded
/// HPWL and density overflow after the step). The span is fully
/// deterministic for a fixed seed, so traced placements diff clean.
///
/// # Errors
///
/// Same as [`place`].
pub fn place_traced(
    clustering: &Clustering,
    floorplan: &Floorplan,
    config: &PlacerConfig,
) -> PdResult<(Placement, FlowSpan)> {
    let n = clustering.clusters.len();
    let mut pos = vec![Point::default(); n];
    let mut region_of = vec![usize::MAX; n];
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- Fixed clusters -------------------------------------------------
    for (i, c) in clustering.clusters.iter().enumerate() {
        match c.kind {
            ClusterKind::Io => {
                pos[i] = Point {
                    x: floorplan.die.center().x,
                    y: floorplan.die.y0,
                };
            }
            ClusterKind::RramMacro(_) => {
                pos[i] = floorplan.rram_periph().rect.center();
            }
            _ => {}
        }
    }

    // --- Deterministic initial packing (hierarchy order) ----------------
    let mut region_used = vec![0.0f64; floorplan.regions.len()];
    let region_cap: Vec<f64> = floorplan
        .regions
        .iter()
        .map(|r| r.usable_area().value())
        .collect();
    let movable: Vec<usize> = (0..n)
        .filter(|&i| clustering.clusters[i].is_movable())
        .collect();
    {
        let mut cursor: Vec<(f64, f64, f64)> = floorplan
            .regions
            .iter()
            .map(|r| (r.rect.x0.value(), r.rect.y0.value(), 0.0))
            .collect();
        for &ci in &movable {
            let c = &clustering.clusters[ci];
            let mut placed = false;
            for (ri, region) in floorplan.regions.iter().enumerate() {
                let demand = demand_geo(c, region);
                if region_used[ri] + demand > region_cap[ri] {
                    continue;
                }
                // Spread the packing with the availability derate so the
                // initial layout is not artificially congested.
                let side = (demand / region.availability.max(1e-6)).sqrt().max(1.0);
                let (ref mut cx, ref mut cy, ref mut row_h) = cursor[ri];
                if *cx + side > region.rect.x1.value() {
                    *cx = region.rect.x0.value();
                    *cy += *row_h;
                    *row_h = 0.0;
                }
                if *cy + side > region.rect.y1.value() {
                    // Region geometrically full; wrap to start (capacity
                    // check still guards total demand).
                    *cy = region.rect.y0.value();
                }
                pos[ci] = Point::new(*cx + side / 2.0, *cy + side / 2.0);
                *cx += side;
                *row_h = row_h.max(side);
                region_of[ci] = ri;
                region_used[ri] += demand;
                placed = true;
                break;
            }
            if !placed {
                return Err(PdError::DoesNotFit {
                    required_mm2: clustering.movable_area().as_mm2(),
                    available_mm2: floorplan.capacity().as_mm2(),
                    resource: "free Si placement area",
                });
            }
        }
    }

    // --- Cost bookkeeping -------------------------------------------------
    let net_hpwl = |net_idx: usize, pos: &[Point]| -> f64 {
        let mut bb = BoundingBox::new();
        for &c in &clustering.nets[net_idx].clusters {
            bb.include(pos[c as usize]);
        }
        bb.hpwl().value()
    };
    let mut cluster_nets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (ni, net) in clustering.nets.iter().enumerate() {
        for &c in &net.clusters {
            cluster_nets[c as usize].push(ni as u32);
        }
    }
    let mut hpwl_total: f64 = (0..clustering.nets.len()).map(|i| net_hpwl(i, &pos)).sum();
    let initial_hpwl = hpwl_total;

    let mut bins = Bins::new(floorplan, config.bin_size_um);
    for &ci in &movable {
        let c = &clustering.clusters[ci];
        let region = &floorplan.regions[region_of[ci]];
        bins.apply(
            pos[ci],
            footprint_side(c, region),
            demand_geo(c, region),
            1.0,
        );
    }

    // --- Simulated annealing ----------------------------------------------
    let mut span = FlowSpan::new("place");
    span.counter("clusters", n as u64);
    span.counter("movable", movable.len() as u64);
    span.counter("nets", clustering.nets.len() as u64);
    span.counter("initial_hpwl_um", round_counter(initial_hpwl));
    if !movable.is_empty() && !clustering.nets.is_empty() {
        let mut temp = floorplan.die.width().value().max(1.0);
        for step in 0..config.temperature_steps {
            let mut moves = 0u64;
            let mut accepted = 0u64;
            for _ in 0..config.moves_per_cluster * movable.len() {
                moves += 1;
                let ci = movable[rng.gen_range(0..movable.len())];
                let c = &clustering.clusters[ci];
                let ri_new = rng.gen_range(0..floorplan.regions.len());
                let region_new = &floorplan.regions[ri_new];
                let ri_old = region_of[ci];
                let region_old = &floorplan.regions[ri_old];
                let d_new = demand_geo(c, region_new);
                let d_old = demand_geo(c, region_old);
                if ri_new != ri_old && region_used[ri_new] + d_new > region_cap[ri_new] {
                    continue;
                }
                let side_new = footprint_side(c, region_new);
                let side_old = footprint_side(c, region_old);
                let margin = side_new / 2.0;
                let inner = region_new.rect.shrunk(Microns::new(margin));
                let lo_x = inner.x0.value();
                let hi_x = inner.x1.value().max(lo_x);
                let lo_y = inner.y0.value();
                let hi_y = inner.y1.value().max(lo_y);
                let new_p = Point::new(rng.gen_range(lo_x..=hi_x), rng.gen_range(lo_y..=hi_y));
                let old_p = pos[ci];

                // Delta HPWL.
                let mut d_hpwl = 0.0;
                for &ni in &cluster_nets[ci] {
                    d_hpwl -= net_hpwl(ni as usize, &pos);
                }
                pos[ci] = new_p;
                for &ni in &cluster_nets[ci] {
                    d_hpwl += net_hpwl(ni as usize, &pos);
                }
                // Delta overflow.
                let d_of_rm = bins.apply(old_p, side_old, d_old, -1.0);
                let d_of_add = bins.apply(new_p, side_new, d_new, 1.0);
                let d_cost = d_hpwl + config.overflow_weight * (d_of_rm + d_of_add);

                let accept = d_cost <= 0.0 || rng.gen::<f64>() < (-d_cost / temp).exp();
                if accept {
                    accepted += 1;
                    hpwl_total += d_hpwl;
                    if ri_new != ri_old {
                        region_used[ri_old] -= d_old;
                        region_used[ri_new] += d_new;
                        region_of[ci] = ri_new;
                    }
                } else {
                    // Roll back.
                    bins.apply(new_p, side_new, d_new, -1.0);
                    bins.apply(old_p, side_old, d_old, 1.0);
                    pos[ci] = old_p;
                }
            }
            let mut step_span = FlowSpan::new(format!("step{step}"));
            step_span.counter("moves", moves);
            step_span.counter("accepted", accepted);
            step_span.counter("hpwl_um", round_counter(hpwl_total));
            step_span.counter("overflow_um2", round_counter(bins.total_overflow()));
            span.child(step_span);
            temp *= config.cooling;
        }
    }
    span.counter("steps", span.children.len() as u64);
    span.counter("final_hpwl_um", round_counter(hpwl_total));
    span.counter("overflow_um2", round_counter(bins.total_overflow()));

    // --- Derive per-cell and per-macro positions ---------------------------
    let mut cell_pos = vec![Point::default(); clustering.cell_cluster.len()];
    for (ci, c) in clustering.clusters.iter().enumerate() {
        if c.cells.is_empty() {
            continue;
        }
        let side = match floorplan.regions.get(region_of[ci]) {
            Some(region) => footprint_side(c, region),
            None => (c.area.value() / 0.7).sqrt(),
        };
        let grid = (c.cells.len() as f64).sqrt().ceil().max(1.0) as usize;
        let pitch = side / grid as f64;
        for (k, &cell) in c.cells.iter().enumerate() {
            let gx = (k % grid) as f64;
            let gy = (k / grid) as f64;
            cell_pos[cell as usize] = Point::new(
                pos[ci].x.value() - side / 2.0 + (gx + 0.5) * pitch,
                pos[ci].y.value() - side / 2.0 + (gy + 0.5) * pitch,
            );
        }
    }
    let macro_count = clustering
        .clusters
        .iter()
        .filter(|c| {
            matches!(
                c.kind,
                ClusterKind::SramMacro(_) | ClusterKind::RramMacro(_)
            )
        })
        .count();
    let mut macro_pos = vec![Point::default(); macro_count];
    for (ci, c) in clustering.clusters.iter().enumerate() {
        if let ClusterKind::SramMacro(i) | ClusterKind::RramMacro(i) = c.kind {
            if i < macro_pos.len() {
                macro_pos[i] = pos[ci];
            }
        }
    }

    let intra: f64 = clustering
        .clusters
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            let side = match floorplan.regions.get(region_of[ci]) {
                Some(region) => footprint_side(c, region),
                None => (c.area.value() / 0.7).sqrt(),
            };
            clustering.intra_net_count[ci] as f64 * 0.5 * side
        })
        .sum();

    Ok((
        Placement {
            cluster_pos: pos,
            cluster_region: region_of,
            cell_pos,
            macro_pos,
            inter_hpwl: Microns::new(hpwl_total),
            intra_wl: Microns::new(intra),
            initial_hpwl: Microns::new(initial_hpwl),
            overflow: SquareMicrons::new(bins.total_overflow()),
        },
        span,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{accelerator_soc, CsConfig, Netlist, PeConfig, SocConfig};
    use m3d_tech::Pdk;

    fn small_cs() -> CsConfig {
        CsConfig {
            rows: 4,
            cols: 4,
            pe: PeConfig::default(),
            global_buffer_kb: 64,
            local_buffer_kb: 8,
        }
    }

    fn setup_2d() -> (Clustering, Floorplan) {
        let cfg = SocConfig {
            cs: small_cs(),
            ..SocConfig::baseline_2d()
        };
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let pdk = Pdk::baseline_2d_130nm();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        (cl, fp)
    }

    #[test]
    fn placement_is_legal() {
        let (cl, fp) = setup_2d();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        for (ci, c) in cl.clusters.iter().enumerate() {
            if !c.is_movable() {
                continue;
            }
            let ri = p.cluster_region[ci];
            assert!(ri < fp.regions.len(), "cluster {} has no region", c.name);
            assert!(
                fp.regions[ri].rect.contains(p.cluster_pos[ci]),
                "cluster {} centre outside its region",
                c.name
            );
        }
        for pt in &p.cell_pos {
            assert!(
                pt.x >= fp.die.x0 && pt.x <= fp.die.x1 && pt.y >= fp.die.y0 && pt.y <= fp.die.y1,
                "cell off-die at {pt:?}"
            );
        }
    }

    #[test]
    fn region_capacity_respected() {
        let (cl, fp) = setup_2d();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        let mut used = vec![0.0; fp.regions.len()];
        for (ci, c) in cl.clusters.iter().enumerate() {
            if c.is_movable() {
                let ri = p.cluster_region[ci];
                used[ri] += demand_geo(c, &fp.regions[ri]);
            }
        }
        for (ri, u) in used.iter().enumerate() {
            assert!(
                *u <= fp.regions[ri].usable_area().value() * (1.0 + 1e-9),
                "region {ri} over capacity"
            );
        }
    }

    #[test]
    fn annealing_does_not_worsen_wirelength_much() {
        let (cl, fp) = setup_2d();
        let p = place(&cl, &fp, &PlacerConfig::default()).unwrap();
        assert!(
            p.inter_hpwl.value() <= p.initial_hpwl.value() * 1.05,
            "final {} vs initial {}",
            p.inter_hpwl,
            p.initial_hpwl
        );
        assert!(p.total_wirelength() > Microns::ZERO);
    }

    #[test]
    fn traced_placement_matches_untraced_and_records_steps() {
        let (cl, fp) = setup_2d();
        let cfg = PlacerConfig::quick();
        let (p, span) = place_traced(&cl, &fp, &cfg).unwrap();
        let q = place(&cl, &fp, &cfg).unwrap();
        assert_eq!(p, q, "tracing must not perturb the placement");
        assert_eq!(span.name, "place");
        assert_eq!(span.children.len(), cfg.temperature_steps);
        assert_eq!(
            span.counter_value("steps"),
            Some(cfg.temperature_steps as u64)
        );
        let s0 = span.find("step0").unwrap();
        assert_eq!(
            s0.counter_value("moves"),
            Some((cfg.moves_per_cluster * span.counter_value("movable").unwrap() as usize) as u64)
        );
        assert!(s0.counter_value("accepted").unwrap() <= s0.counter_value("moves").unwrap());
        assert_eq!(
            span.counter_value("final_hpwl_um"),
            Some(round_counter(p.inter_hpwl.value()))
        );
    }

    #[test]
    fn placement_is_deterministic_for_fixed_seed() {
        let (cl, fp) = setup_2d();
        let a = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        let b = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        assert_eq!(a.inter_hpwl, b.inter_hpwl);
        assert_eq!(a.cluster_pos, b.cluster_pos);
    }

    #[test]
    fn m3d_uses_the_under_array_region_when_bottom_is_tight() {
        // Plan the 2D die (sized for 1 CS), then force the 4-CS M3D design
        // into the same outline: the extra CSs must spill under the array.
        let cfg2d = SocConfig {
            cs: small_cs(),
            ..SocConfig::baseline_2d()
        };
        let mut nl2d = Netlist::new("a");
        accelerator_soc(&mut nl2d, &cfg2d).unwrap();
        let pdk2d = Pdk::baseline_2d_130nm();
        let fp2d = Floorplan::plan(&pdk2d, &cfg2d, &nl2d, None).unwrap();

        let cfg3d = SocConfig {
            cs: small_cs(),
            ..SocConfig::m3d(4)
        };
        let mut nl3d = Netlist::new("b");
        accelerator_soc(&mut nl3d, &cfg3d).unwrap();
        let pdk3d = Pdk::m3d_130nm();
        let fp3d = Floorplan::plan(&pdk3d, &cfg3d, &nl3d, Some(fp2d.die)).unwrap();
        let cl = Clustering::build(&nl3d, &pdk3d).unwrap();
        let p = place(&cl, &fp3d, &PlacerConfig::quick()).unwrap();
        let ua_idx = fp3d
            .regions
            .iter()
            .position(|r| r.kind == crate::floorplan::RegionKind::UnderArray)
            .unwrap();
        let in_ua = p.cluster_region.iter().filter(|&&r| r == ua_idx).count();
        assert!(
            in_ua > 0,
            "M3D placement should use the freed Si under the array"
        );
    }
}
