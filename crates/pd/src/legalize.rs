//! Row legalisation: snaps the global placement's cells onto standard
//! cell rows with no overlap (a Tetris-style scan, after Hill's
//! classical legaliser).
//!
//! Rows are generated inside every placeable region at the library row
//! pitch; cells are processed in increasing-x order and pushed onto the
//! nearest row with space, paying displacement. Under-array rows model
//! their routing-availability derate by inflating effective cell widths
//! (placement gaps left for the reduced routing stack).

use serde::{Deserialize, Serialize};

use m3d_netlist::Netlist;
use m3d_tech::units::Microns;
use m3d_tech::{Pdk, TechResult};

use crate::floorplan::Floorplan;
use crate::geom::Point;
use crate::place::Placement;

/// Result of legalisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LegalizeReport {
    /// Snapped per-cell positions (cell centres), indexed like
    /// `Netlist::cells`.
    pub cell_pos: Vec<Point>,
    /// Rows that received at least one cell.
    pub rows_used: usize,
    /// Mean displacement from the global position.
    pub avg_displacement: Microns,
    /// Largest single-cell displacement.
    pub max_displacement: Microns,
    /// Cells that could not be placed near their target and were pushed
    /// to a distant row (displacement > 50 rows).
    pub far_placed: usize,
}

struct Row {
    y: f64,
    x0: f64,
    x1: f64,
    cursor: f64,
    /// Width inflation inside this row (1/availability).
    inflation: f64,
}

/// Legalises `placement` onto rows.
///
/// # Errors
///
/// Returns technology errors for cells missing from the PDK libraries.
///
/// # Panics
///
/// Panics when `placement` does not cover the netlist's cells.
pub fn legalize(
    netlist: &Netlist,
    placement: &Placement,
    floorplan: &Floorplan,
    pdk: &Pdk,
) -> TechResult<LegalizeReport> {
    assert_eq!(placement.cell_pos.len(), netlist.cell_count());
    let row_h = pdk.si_lib.row_height.value();

    // --- Build rows over every placeable region -------------------------
    let mut rows: Vec<Row> = Vec::new();
    for region in &floorplan.regions {
        let y0 = region.rect.y0.value();
        let y1 = region.rect.y1.value();
        let mut y = y0;
        while y + row_h <= y1 {
            rows.push(Row {
                y: y + row_h / 2.0,
                x0: region.rect.x0.value(),
                x1: region.rect.x1.value(),
                cursor: region.rect.x0.value(),
                inflation: 1.0 / region.availability.max(0.05),
            });
            y += row_h;
        }
    }
    rows.sort_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal));
    let row_ys: Vec<f64> = rows.iter().map(|r| r.y).collect();

    // --- Cells in increasing-x order -------------------------------------
    let mut order: Vec<u32> = (0..netlist.cell_count() as u32).collect();
    order.sort_by(|&a, &b| {
        let xa = placement.cell_pos[a as usize].x.value();
        let xb = placement.cell_pos[b as usize].x.value();
        xa.partial_cmp(&xb).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut cell_pos = vec![Point::default(); netlist.cell_count()];
    let mut used = vec![false; rows.len()];
    let mut total_disp = 0.0f64;
    let mut max_disp = 0.0f64;
    let mut far = 0usize;

    for ci in order {
        let cell = &netlist.cells()[ci as usize];
        let lib = pdk.library(cell.tier)?;
        let area = lib.cell(cell.kind, cell.drive)?.area.value();
        let width = area / row_h;
        let target = placement.cell_pos[ci as usize];
        let tx = target.x.value();
        let ty = target.y.value();

        // Nearest row index by binary search, then expand outward.
        let start = row_ys
            .binary_search_by(|y| y.partial_cmp(&ty).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap_or_else(|i| i.min(rows.len().saturating_sub(1)));
        let mut best: Option<(usize, f64, f64)> = None; // (row, x, cost)
        let mut radius = 0usize;
        loop {
            let mut any_candidate = false;
            for dir in [-1isize, 1] {
                let idx = start as isize + dir * radius as isize;
                if dir == 1 && radius == 0 {
                    continue; // avoid double-visiting `start`
                }
                if idx < 0 || idx as usize >= rows.len() {
                    continue;
                }
                let r = &rows[idx as usize];
                let w = width * r.inflation;
                if r.cursor + w > r.x1 {
                    continue; // row full
                }
                let x = tx.max(r.cursor).min(r.x1 - w);
                any_candidate = true;
                let cost = (x - tx).abs() + (r.y - ty).abs();
                if best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
                    best = Some((idx as usize, x, cost));
                }
            }
            // Stop when a found candidate cannot be beaten by farther rows.
            if let Some((_, _, c)) = best {
                if (radius as f64) * row_h > c {
                    break;
                }
            }
            radius += 1;
            if radius > rows.len() {
                break;
            }
            let _ = any_candidate;
        }
        // Fallback (no row had space at/right of the target): append to
        // the least-loaded row that still has room — never overlapping.
        let fallback = || -> TechResult<(usize, f64, f64)> {
            let ri = (0..rows.len())
                .filter(|&i| {
                    let w = width * rows[i].inflation;
                    rows[i].cursor + w <= rows[i].x1
                })
                .min_by(|&a, &b| {
                    (rows[a].cursor - rows[a].x0)
                        .partial_cmp(&(rows[b].cursor - rows[b].x0))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .ok_or(m3d_tech::TechError::InvalidParameter {
                    parameter: "placement",
                    value: width,
                    expected: "row capacity not exceeded",
                })?;
            Ok((ri, rows[ri].cursor, f64::MAX))
        };
        let (ri, x, cost) = match best {
            Some(b) => b,
            None => fallback()?,
        };
        let r = &mut rows[ri];
        let w = width * r.inflation;
        let place_x = x.max(r.cursor);
        debug_assert!(place_x + w <= r.x1 + 1e-6, "legalizer row overflow");
        r.cursor = place_x + w;
        used[ri] = true;
        cell_pos[ci as usize] = Point::new(place_x + w / 2.0, r.y);
        let disp = if cost == f64::MAX {
            (place_x - tx).abs() + (r.y - ty).abs()
        } else {
            cost
        };
        total_disp += disp;
        max_disp = max_disp.max(disp);
        if disp > 50.0 * row_h {
            far += 1;
        }
    }

    let n = netlist.cell_count().max(1) as f64;
    Ok(LegalizeReport {
        cell_pos,
        rows_used: used.iter().filter(|&&u| u).count(),
        avg_displacement: Microns::new(total_disp / n),
        max_displacement: Microns::new(max_disp),
        far_placed: far,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::place::{place, PlacerConfig};
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig, SocConfig};

    fn setup() -> (Netlist, Placement, Floorplan, Pdk) {
        let cfg = SocConfig {
            cs: CsConfig {
                rows: 4,
                cols: 4,
                pe: PeConfig::default(),
                global_buffer_kb: 64,
                local_buffer_kb: 8,
            },
            ..SocConfig::baseline_2d()
        };
        let pdk = Pdk::baseline_2d_130nm();
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        (nl, p, fp, pdk)
    }

    #[test]
    fn legalized_cells_do_not_overlap_within_rows() {
        let (nl, p, fp, pdk) = setup();
        let leg = legalize(&nl, &p, &fp, &pdk).unwrap();
        // Group by row y, check pairwise gaps via sorted x and widths.
        use std::collections::BTreeMap;
        let mut by_row: BTreeMap<i64, Vec<(f64, f64)>> = BTreeMap::new();
        for (ci, pos) in leg.cell_pos.iter().enumerate() {
            let c = &nl.cells()[ci];
            let lib = pdk.library(c.tier).unwrap();
            let w = lib.cell(c.kind, c.drive).unwrap().area.value() / pdk.si_lib.row_height.value();
            by_row
                .entry((pos.y.value() * 1000.0) as i64)
                .or_default()
                .push((pos.x.value(), w));
        }
        for (_, mut cells) in by_row {
            cells.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for pair in cells.windows(2) {
                let right_edge = pair[0].0 + pair[0].1 / 2.0;
                let left_edge = pair[1].0 - pair[1].1 / 2.0;
                assert!(
                    left_edge >= right_edge - 1e-6,
                    "overlap: {right_edge} vs {left_edge}"
                );
            }
        }
    }

    #[test]
    fn cells_snap_to_row_centres() {
        let (nl, p, fp, pdk) = setup();
        let leg = legalize(&nl, &p, &fp, &pdk).unwrap();
        let row_h = pdk.si_lib.row_height.value();
        for pos in &leg.cell_pos {
            // y must be a region y0 + (k + 0.5)·row_height for some region.
            let on_row = fp.regions.iter().any(|r| {
                let rel = pos.y.value() - r.rect.y0.value();
                let k = (rel / row_h - 0.5).round();
                k >= 0.0 && (rel - (k + 0.5) * row_h).abs() < 1e-6
            });
            assert!(on_row, "cell at y={} not on a row", pos.y);
        }
    }

    #[test]
    fn displacement_is_modest() {
        let (nl, p, fp, pdk) = setup();
        let leg = legalize(&nl, &p, &fp, &pdk).unwrap();
        assert!(leg.rows_used > 10);
        assert!(
            leg.avg_displacement.value() < 500.0,
            "avg displacement {}",
            leg.avg_displacement
        );
        let frac_far = leg.far_placed as f64 / nl.cell_count() as f64;
        assert!(frac_far < 0.05, "{} cells displaced far", leg.far_placed);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// Any in-die scatter of global positions legalises to a
            /// row-snapped, overlap-free placement — or fails with a
            /// clean capacity error, never with a corrupt placement.
            #[test]
            fn legalization_is_always_legal(seed in 0u64..1000) {
                let (nl, mut p, fp, pdk) = setup();
                // Scatter cells pseudo-randomly across the die interior
                // (the legaliser's input contract).
                let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let mut next = || {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 33) as f64 / (1u64 << 31) as f64
                };
                let w = fp.die.width().value();
                let h = fp.die.height().value();
                for pos in &mut p.cell_pos {
                    *pos = crate::geom::Point::new(0.99 * w * next(), 0.99 * h * next());
                }
                match legalize(&nl, &p, &fp, &pdk) {
                    Ok(leg) => {
                        let legal = Placement { cell_pos: leg.cell_pos, ..p };
                        let drc =
                            crate::drc::check_placement(&nl, &legal, &fp, &pdk, true).unwrap();
                        prop_assert!(drc.is_clean(), "{} violations", drc.total);
                    }
                    Err(e) => prop_assert!(
                        matches!(e, m3d_tech::TechError::InvalidParameter { .. }),
                        "unexpected error {e}"
                    ),
                }
            }
        }
    }

    #[test]
    fn cells_stay_inside_the_die() {
        let (nl, p, fp, pdk) = setup();
        let leg = legalize(&nl, &p, &fp, &pdk).unwrap();
        for pos in &leg.cell_pos {
            assert!(fp.die.contains(*pos), "cell escaped the die: {pos:?}");
        }
        assert_eq!(leg.cell_pos.len(), nl.cell_count());
    }
}
