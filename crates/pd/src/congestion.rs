//! Routing-congestion analysis: per-tile wiring demand versus track
//! supply, honouring the reduced layer stack under RRAM arrays.
//!
//! This is the physical justification for the under-array availability
//! derate: logic placed beneath the memory may only route on the layers
//! below the RRAM plane (M1–M3 in the 130 nm stack), roughly half the
//! track supply of the full stack. The analysis reports per-region
//! utilisation so the derate can be checked rather than assumed.

use serde::{Deserialize, Serialize};

use m3d_netlist::{Driver, Netlist, Sink};
use m3d_tech::Pdk;

use crate::floorplan::{Floorplan, RegionKind};
use crate::place::Placement;
use crate::route::RoutingEstimate;

/// Per-tile congestion map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionMap {
    /// Tiles in x.
    pub nx: usize,
    /// Tiles in y.
    pub ny: usize,
    /// Tile edge in µm.
    pub tile_um: f64,
    /// Routing demand per tile (wire-µm).
    pub demand: Vec<f64>,
    /// Track supply per tile (track-µm).
    pub supply: Vec<f64>,
    /// Tiles whose demand exceeds supply.
    pub overflow_tiles: usize,
    /// Worst tile utilisation (demand/supply).
    pub max_utilization: f64,
    /// Mean utilisation over non-empty tiles.
    pub avg_utilization: f64,
    /// Mean utilisation of tiles under the RRAM array.
    pub under_array_utilization: f64,
    /// Mean utilisation of free-region tiles.
    pub free_region_utilization: f64,
}

/// Analyses routing congestion for a placed-and-routed design.
///
/// # Panics
///
/// Panics when `routing` does not match `netlist`.
pub fn analyze_congestion(
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingEstimate,
    floorplan: &Floorplan,
    pdk: &Pdk,
    tile_um: f64,
) -> CongestionMap {
    assert_eq!(routing.nets.len(), netlist.net_count());
    let die = floorplan.die;
    let x0 = die.x0.value();
    let y0 = die.y0.value();
    let nx = (die.width().value() / tile_um).ceil().max(1.0) as usize;
    let ny = (die.height().value() / tile_um).ceil().max(1.0) as usize;

    // --- Supply: tracks per tile, full stack vs sub-RRAM stack ----------
    let track_per_um = |below_only: bool| -> f64 {
        pdk.stack
            .routing()
            .iter()
            .filter(|l| !below_only || l.below_rram)
            .map(|l| 1.0 / l.pitch.value())
            .sum()
    };
    let full_tracks = track_per_um(false);
    let sub_tracks = track_per_um(true);
    let under_array = floorplan
        .regions
        .iter()
        .find(|r| r.kind == RegionKind::UnderArray)
        .map(|r| r.rect);
    let mut supply = vec![0.0f64; nx * ny];
    for ty in 0..ny {
        for tx in 0..nx {
            let cx = x0 + (tx as f64 + 0.5) * tile_um;
            let cy = y0 + (ty as f64 + 0.5) * tile_um;
            let p = crate::geom::Point::new(cx, cy);
            let tracks = match under_array {
                Some(rect) if rect.contains(p) => sub_tracks,
                _ => full_tracks,
            };
            // Tracks in both directions across the tile.
            supply[ty * nx + tx] = tracks * tile_um * tile_um;
        }
    }

    // --- Demand: each net's length spread over its bounding-box tiles ----
    let mut demand = vec![0.0f64; nx * ny];
    for (ni, net) in netlist.nets().iter().enumerate() {
        let rn = &routing.nets[ni];
        if rn.length.value() <= 0.0 {
            continue;
        }
        let mut min = (f64::INFINITY, f64::INFINITY);
        let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut incl = |p: crate::geom::Point| {
            min.0 = min.0.min(p.x.value());
            min.1 = min.1.min(p.y.value());
            max.0 = max.0.max(p.x.value());
            max.1 = max.1.max(p.y.value());
        };
        match net.driver {
            Some(Driver::Cell { cell, .. }) => incl(placement.cell_pos[cell.0 as usize]),
            Some(Driver::Macro { id }) => incl(placement.macro_pos[id.0 as usize]),
            _ => {}
        }
        for s in &net.sinks {
            match *s {
                Sink::Cell { cell, .. } => incl(placement.cell_pos[cell.0 as usize]),
                Sink::Macro { id } => incl(placement.macro_pos[id.0 as usize]),
                Sink::PrimaryOutput => {}
            }
        }
        if !min.0.is_finite() {
            continue;
        }
        let tx0 = (((min.0 - x0) / tile_um).floor().max(0.0) as usize).min(nx - 1);
        let ty0 = (((min.1 - y0) / tile_um).floor().max(0.0) as usize).min(ny - 1);
        let tx1 = (((max.0 - x0) / tile_um).floor().max(0.0) as usize).min(nx - 1);
        let ty1 = (((max.1 - y0) / tile_um).floor().max(0.0) as usize).min(ny - 1);
        let tiles = ((tx1 - tx0 + 1) * (ty1 - ty0 + 1)) as f64;
        let per_tile = rn.length.value() / tiles;
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                demand[ty * nx + tx] += per_tile;
            }
        }
    }

    // --- Roll-ups ----------------------------------------------------------
    let mut overflow = 0usize;
    let mut max_util = 0.0f64;
    let mut sum_util = 0.0f64;
    let mut used_tiles = 0usize;
    let mut ua_sum = 0.0f64;
    let mut ua_n = 0usize;
    let mut fr_sum = 0.0f64;
    let mut fr_n = 0usize;
    for ty in 0..ny {
        for tx in 0..nx {
            let i = ty * nx + tx;
            if demand[i] <= 0.0 {
                continue;
            }
            let u = demand[i] / supply[i].max(1e-9);
            if u > 1.0 {
                overflow += 1;
            }
            max_util = max_util.max(u);
            sum_util += u;
            used_tiles += 1;
            let cx = x0 + (tx as f64 + 0.5) * tile_um;
            let cy = y0 + (ty as f64 + 0.5) * tile_um;
            let p = crate::geom::Point::new(cx, cy);
            match under_array {
                Some(rect) if rect.contains(p) => {
                    ua_sum += u;
                    ua_n += 1;
                }
                _ => {
                    fr_sum += u;
                    fr_n += 1;
                }
            }
        }
    }
    CongestionMap {
        nx,
        ny,
        tile_um,
        demand,
        supply,
        overflow_tiles: overflow,
        max_utilization: max_util,
        avg_utilization: if used_tiles > 0 {
            sum_util / used_tiles as f64
        } else {
            0.0
        },
        under_array_utilization: if ua_n > 0 { ua_sum / ua_n as f64 } else { 0.0 },
        free_region_utilization: if fr_n > 0 { fr_sum / fr_n as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowConfig, Rtl2GdsFlow};
    use m3d_netlist::{CsConfig, PeConfig};

    fn small_cs() -> CsConfig {
        CsConfig {
            rows: 4,
            cols: 4,
            pe: PeConfig::default(),
            global_buffer_kb: 64,
            local_buffer_kb: 8,
        }
    }

    #[test]
    fn congestion_map_covers_the_die() {
        let (_, a) = Rtl2GdsFlow::new(FlowConfig::baseline_2d().with_cs(small_cs()).quick())
            .run()
            .unwrap();
        let c = analyze_congestion(
            &a.netlist,
            &a.placement,
            &a.routing,
            &a.floorplan,
            &Rtl2GdsFlow::new(FlowConfig::baseline_2d()).config().pdk,
            1000.0,
        );
        assert_eq!(c.demand.len(), c.nx * c.ny);
        assert!(c.avg_utilization > 0.0);
        assert!(c.max_utilization >= c.avg_utilization);
        // 2D has no under-array tiles with demand (array blocks placement).
        assert_eq!(c.under_array_utilization, 0.0);
    }

    #[test]
    fn under_array_supply_is_reduced() {
        let (r2d, _) = Rtl2GdsFlow::new(FlowConfig::baseline_2d().with_cs(small_cs()).quick())
            .run()
            .unwrap();
        let (_, a) = Rtl2GdsFlow::new(
            FlowConfig::m3d(4)
                .with_cs(small_cs())
                .quick()
                .with_die(r2d.die),
        )
        .run()
        .unwrap();
        let pdk = m3d_tech::Pdk::m3d_130nm();
        let c = analyze_congestion(
            &a.netlist,
            &a.placement,
            &a.routing,
            &a.floorplan,
            &pdk,
            1000.0,
        );
        // Supply under the array must be lower than outside it: index the
        // tile containing the under-array region's centre vs tile (0, 0)
        // in the free bottom strip.
        let ua = a.floorplan.under_array_region().unwrap().rect;
        let die = a.floorplan.die;
        let centre = ua.center();
        let tx = (((centre.x.value() - die.x0.value()) / c.tile_um) as usize).min(c.nx - 1);
        let ty = (((centre.y.value() - die.y0.value()) / c.tile_um) as usize).min(c.ny - 1);
        let inside = c.supply[ty * c.nx + tx];
        let outside = c.supply[0];
        assert!(inside < outside, "sub-RRAM stack must supply fewer tracks");
        // Demand exists under the array (CSs placed there).
        assert!(c.under_array_utilization > 0.0);
    }

    #[test]
    fn conservation_of_demand() {
        let (_, a) = Rtl2GdsFlow::new(FlowConfig::baseline_2d().with_cs(small_cs()).quick())
            .run()
            .unwrap();
        let pdk = m3d_tech::Pdk::baseline_2d_130nm();
        let c = analyze_congestion(
            &a.netlist,
            &a.placement,
            &a.routing,
            &a.floorplan,
            &pdk,
            1000.0,
        );
        let spread: f64 = c.demand.iter().sum();
        let routed: f64 = a.routing.nets.iter().map(|n| n.length.value()).sum();
        assert!(
            (spread - routed).abs() / routed.max(1.0) < 1e-6,
            "demand spread {spread} vs routed {routed}"
        );
    }
}
