//! Min-cut tier partitioning for *folded* monolithic-3D designs.
//!
//! The paper contrasts its architecture-level approach with prior work
//! (paper refs. 3 and 4) that folds an existing 2D design across two device tiers
//! with optimised 3D place-and-route — halving the footprint and cutting
//! wirelength ≈ 20 %, for only ~1.1–1.4× EDP. This module implements that
//! folding baseline: a balance-constrained greedy min-cut bipartition of
//! the cluster graph, plus the standard folded-wirelength estimate.

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cluster::Clustering;

/// Result of folding a design onto two tiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldingReport {
    /// Tier assignment per cluster (`0` = bottom, `1` = top).
    pub assignment: Vec<u8>,
    /// Nets crossing tiers (each needs ILVs).
    pub cut_nets: usize,
    /// Total inter-cluster nets considered.
    pub total_nets: usize,
    /// Area on each tier (µm² of cluster area).
    pub tier_area: [f64; 2],
    /// Footprint ratio vs 2D (≈ 0.5 + imbalance).
    pub footprint_ratio: f64,
    /// Estimated wirelength ratio vs 2D: folding halves the footprint so
    /// average net spans shrink by √(footprint ratio).
    pub wirelength_ratio: f64,
}

impl FoldingReport {
    /// Cut fraction: cut nets / total nets.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_nets == 0 {
            0.0
        } else {
            self.cut_nets as f64 / self.total_nets as f64
        }
    }
}

/// Balance tolerance: larger tier may hold at most this fraction of the
/// movable area.
const BALANCE_LIMIT: f64 = 0.55;

/// Folds the clustered design onto two tiers with a greedy min-cut pass.
///
/// Deterministic for a fixed `seed`.
pub fn fold_two_tier(clustering: &Clustering, seed: u64) -> FoldingReport {
    let n = clustering.clusters.len();
    let total_area: f64 = clustering
        .clusters
        .iter()
        .filter(|c| c.is_movable())
        .map(|c| c.area.value())
        .sum();
    // A single dominant cluster (a large SRAM macro) may exceed the
    // nominal balance limit on its own; widen the limit to admit it.
    let largest: f64 = clustering
        .clusters
        .iter()
        .filter(|c| c.is_movable())
        .map(|c| c.area.value())
        .fold(0.0, f64::max);
    let balance_limit = if total_area > 0.0 {
        BALANCE_LIMIT.max(largest / total_area + 1e-9)
    } else {
        BALANCE_LIMIT
    };

    // --- Initial balanced assignment (alternate by decreasing area) ------
    let mut order: Vec<usize> = (0..n)
        .filter(|&i| clustering.clusters[i].is_movable())
        .collect();
    order.sort_by(|&a, &b| {
        clustering.clusters[b]
            .area
            .partial_cmp(&clustering.clusters[a].area)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut assignment = vec![0u8; n];
    let mut tier_area = [0.0f64; 2];
    for &i in &order {
        let t = usize::from(tier_area[1] < tier_area[0]);
        assignment[i] = t as u8;
        tier_area[t] += clustering.clusters[i].area.value();
    }

    // --- Cluster → net adjacency and cut bookkeeping ----------------------
    let mut cluster_nets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (ni, net) in clustering.nets.iter().enumerate() {
        for &c in &net.clusters {
            cluster_nets[c as usize].push(ni as u32);
        }
    }
    let net_is_cut = |ni: usize, assignment: &[u8]| -> bool {
        let mut seen = [false; 2];
        for &c in &clustering.nets[ni].clusters {
            seen[assignment[c as usize] as usize] = true;
        }
        seen[0] && seen[1]
    };
    let mut cut: usize = (0..clustering.nets.len())
        .filter(|&ni| net_is_cut(ni, &assignment))
        .count();

    // --- Greedy improvement passes ------------------------------------------
    let mut rng = StdRng::seed_from_u64(seed);
    let mut visit = order.clone();
    for _pass in 0..4 {
        visit.shuffle(&mut rng);
        let mut improved = false;
        for &ci in &visit {
            let from = assignment[ci] as usize;
            let to = 1 - from;
            let area = clustering.clusters[ci].area.value();
            if total_area > 0.0 && (tier_area[to] + area) / total_area > balance_limit {
                continue;
            }
            // Gain = cut nets removed − cut nets created by the move.
            let mut gain: isize = 0;
            for &ni in &cluster_nets[ci] {
                let was = net_is_cut(ni as usize, &assignment);
                assignment[ci] = to as u8;
                let now = net_is_cut(ni as usize, &assignment);
                assignment[ci] = from as u8;
                gain += isize::from(was) - isize::from(now);
            }
            if gain > 0 {
                assignment[ci] = to as u8;
                tier_area[from] -= area;
                tier_area[to] += area;
                cut = (cut as isize - gain) as usize;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let larger = tier_area[0].max(tier_area[1]);
    let footprint_ratio = if total_area > 0.0 {
        larger / total_area
    } else {
        0.5
    };
    FoldingReport {
        assignment,
        cut_nets: cut,
        total_nets: clustering.nets.len(),
        tier_area,
        footprint_ratio,
        wirelength_ratio: footprint_ratio.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{accelerator_soc, CsConfig, Netlist, PeConfig, SocConfig};
    use m3d_tech::Pdk;

    fn clustering() -> Clustering {
        let cfg = SocConfig {
            cs: CsConfig {
                rows: 4,
                cols: 4,
                pe: PeConfig::default(),
                global_buffer_kb: 64,
                local_buffer_kb: 8,
            },
            ..SocConfig::baseline_2d()
        };
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        Clustering::build(&nl, &Pdk::baseline_2d_130nm()).unwrap()
    }

    #[test]
    fn folding_is_balanced() {
        let cl = clustering();
        let r = fold_two_tier(&cl, 7);
        let total = r.tier_area[0] + r.tier_area[1];
        assert!(total > 0.0);
        // Balance up to the nominal limit, widened if one macro dominates.
        let largest = cl
            .clusters
            .iter()
            .filter(|c| c.is_movable())
            .map(|c| c.area.value())
            .fold(0.0, f64::max);
        let limit = BALANCE_LIMIT.max(largest / total + 1e-6);
        assert!(
            r.footprint_ratio <= limit + 1e-9,
            "{} > {}",
            r.footprint_ratio,
            limit
        );
        assert!(r.footprint_ratio >= 0.5 - 1e-9);
    }

    #[test]
    fn folding_cuts_fewer_nets_than_random() {
        let cl = clustering();
        let r = fold_two_tier(&cl, 7);
        // A random balanced split cuts roughly half of all multi-cluster
        // nets; the optimiser must do clearly better.
        assert!(
            r.cut_nets < r.total_nets / 2,
            "{} of {}",
            r.cut_nets,
            r.total_nets
        );
        assert!(r.cut_fraction() < 0.5);
    }

    #[test]
    fn folded_wirelength_matches_square_root_law() {
        let cl = clustering();
        let r = fold_two_tier(&cl, 7);
        assert!((r.wirelength_ratio - r.footprint_ratio.sqrt()).abs() < 1e-12);
        // Folding reduces WL ≈ 10–30 % (the paper's prior-work baseline).
        assert!(
            r.wirelength_ratio > 0.65 && r.wirelength_ratio < 0.95,
            "ratio {}",
            r.wirelength_ratio
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let cl = clustering();
        let a = fold_two_tier(&cl, 42);
        let b = fold_two_tier(&cl, 42);
        assert_eq!(a, b);
    }
}
