//! The RTL-to-GDS flow driver (Fig. 4b of the paper): synthesis stand-in
//! → floorplan → clustering → global placement → routing estimation →
//! post-route optimisation → timing/power sign-off, producing a
//! [`FlowReport`] of exactly the metrics the paper compares in Fig. 2.

use serde::{Deserialize, Serialize};

use m3d_netlist::{accelerator_soc, MacroKind, Netlist, SocConfig};
use m3d_tech::units::SquareMicrons;
use m3d_tech::Pdk;

use crate::cluster::Clustering;
use crate::cts::{estimate_clock_tree, ClockTree};
use crate::error::PdResult;
use crate::floorplan::{under_array_usable_area, Floorplan};
use crate::geom::Rect;
use crate::observe::{round_counter, FlowObserver, FlowSpan};
use crate::opt::{post_route_optimize_traced, OptConfig, OptOutcome};
use crate::place::{place_traced, Placement, PlacerConfig};
use crate::power::{analyze_power, PowerReport, DEFAULT_ACTIVITY};
use crate::route::RoutingEstimate;
use crate::sta::TimingReport;

/// Where the flow's input netlist comes from.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum NetlistSource {
    /// Generate the accelerator SoC from [`FlowConfig::soc`] (the
    /// default, and the paper's own design).
    #[default]
    Generated,
    /// Implement an externally ingested netlist as-is; `soc` still
    /// supplies the floorplan/clock targets. Shared via `Arc` so cheap
    /// config clones don't copy the design.
    External(std::sync::Arc<Netlist>),
}

impl m3d_tech::StableHash for NetlistSource {
    fn stable_hash(&self, h: &mut m3d_tech::StableHasher) {
        match self {
            // Write nothing for the default so every pre-existing
            // cache key (computed before this variant existed) is
            // preserved.
            NetlistSource::Generated => {}
            NetlistSource::External(nl) => {
                h.write_u8(1);
                nl.stable_hash(h);
            }
        }
    }
}

/// Full configuration of one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Technology to implement in.
    pub pdk: Pdk,
    /// The SoC to build.
    pub soc: SocConfig,
    /// Netlist source: generated SoC or an ingested external design.
    pub source: NetlistSource,
    /// Placer effort.
    pub placer: PlacerConfig,
    /// Post-route optimisation knobs.
    pub opt: OptConfig,
    /// Forced die outline (iso-footprint comparisons), if any.
    pub die_override: Option<Rect>,
    /// Signal activity factor for power analysis.
    pub activity: f64,
    /// Run row legalisation after global placement (snaps cells onto
    /// non-overlapping rows; slightly slower but sign-off accurate).
    pub legalize: bool,
}

impl m3d_tech::StableHash for FlowConfig {
    fn stable_hash(&self, h: &mut m3d_tech::StableHasher) {
        self.pdk.stable_hash(h);
        self.soc.stable_hash(h);
        self.source.stable_hash(h);
        self.placer.stable_hash(h);
        self.opt.stable_hash(h);
        self.die_override.stable_hash(h);
        self.activity.stable_hash(h);
        self.legalize.stable_hash(h);
    }
}

impl FlowConfig {
    /// Content key of this configuration under [`m3d_tech::StableHash`] —
    /// the memoisation key the experiment engine's flow cache uses. Equal
    /// configurations always produce equal keys, across processes and
    /// threads.
    pub fn stable_key(&self) -> u64 {
        m3d_tech::StableHash::stable_key(self)
    }

    /// Content key of the **placement-determining prefix** of this
    /// configuration: everything the flow consumes up to and including
    /// row legalisation (`pdk`, `soc`, `source`, `placer`,
    /// `die_override`, `legalize`) — and nothing it does not (`opt`,
    /// `activity` only shape post-placement phases). Two configurations
    /// with equal placement keys provably produce byte-identical
    /// pre-optimisation placements, which is what lets a warm-started
    /// run reuse a neighbour's placement without perturbing a single
    /// output bit.
    pub fn placement_key(&self) -> u64 {
        use m3d_tech::StableHash as _;
        let mut h = m3d_tech::StableHasher::new();
        self.pdk.stable_hash(&mut h);
        self.soc.stable_hash(&mut h);
        self.source.stable_hash(&mut h);
        self.placer.stable_hash(&mut h);
        self.die_override.stable_hash(&mut h);
        self.legalize.stable_hash(&mut h);
        h.finish()
    }

    /// This configuration's typed coordinates on the sweep parameter
    /// lattice — the axes free to differ between configurations sharing
    /// a [`FlowConfig::placement_key`]. The engine ranks warm-start
    /// seed candidates by [`ParamPoint::distance`] over these.
    pub fn param_point(&self) -> ParamPoint {
        ParamPoint {
            activity: self.activity,
            max_rounds: self.opt.max_rounds as f64,
            upsize_threshold_ns: self.opt.upsize_threshold_ns,
            buffer_length_um: self.opt.buffer_length_um,
            detour: self.opt.detour,
        }
    }
}

/// Typed position of a [`FlowConfig`] on the parameter lattice sweeps
/// walk: the post-placement knobs (`activity` and the [`OptConfig`]
/// axes). Serialised into the on-disk artifact envelope so warm-start
/// candidates can be ranked without re-deriving their configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamPoint {
    /// Signal activity factor.
    pub activity: f64,
    /// Optimisation round budget.
    pub max_rounds: f64,
    /// Upsize threshold in ns.
    pub upsize_threshold_ns: f64,
    /// Repeater insertion length in µm.
    pub buffer_length_um: f64,
    /// Routing detour factor.
    pub detour: f64,
}

impl ParamPoint {
    /// Scale-normalised L1 distance to `other`: each axis is divided by
    /// a characteristic sweep step (5 % activity, one round, 0.1 ns,
    /// 100 µm, 0.05 detour) so no single axis dominates by unit choice.
    /// Deterministic, symmetric, zero iff the lattice points coincide.
    pub fn distance(&self, other: &ParamPoint) -> f64 {
        (self.activity - other.activity).abs() / 0.05
            + (self.max_rounds - other.max_rounds).abs()
            + (self.upsize_threshold_ns - other.upsize_threshold_ns).abs() / 0.1
            + (self.buffer_length_um - other.buffer_length_um).abs() / 100.0
            + (self.detour - other.detour).abs() / 0.05
    }
}

/// The warm-start seed one flow run leaves for neighbouring
/// configurations: the pre-optimisation placement together with the
/// recorded `place`/`legalize` spans and the legalisation displacement.
/// A seeded run replays these verbatim instead of re-annealing — valid
/// only when [`PlacementSeed::placement_key`] matches the target
/// configuration's [`FlowConfig::placement_key`], in which case the
/// cold run would have recomputed the exact same bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementSeed {
    /// [`FlowConfig::placement_key`] of the run that produced this seed.
    pub placement_key: u64,
    /// The pre-optimisation placement (legalised when the configuration
    /// legalises).
    pub placement: Placement,
    /// The recorded `place` span (per-step annealing children included).
    pub place_span: FlowSpan,
    /// The recorded `legalize` span, when legalisation ran.
    pub legalize_span: Option<FlowSpan>,
    /// Mean legalisation displacement in µm (0 when skipped).
    pub legalization_displacement_um: f64,
}

impl PlacementSeed {
    /// Whether this seed can warm-start `cfg`: the placement keys match
    /// and the seed's shape is consistent with what the configuration's
    /// own synthesis/floorplan/clustering produce. A seed read from a
    /// corrupted artifact file fails these checks and the flow falls
    /// back to a cold run — never an error.
    fn validates_against(
        &self,
        cfg: &FlowConfig,
        netlist: &Netlist,
        clustering: &Clustering,
    ) -> bool {
        self.placement_key == cfg.placement_key()
            && self.placement.cell_pos.len() == netlist.cell_count()
            && self.placement.macro_pos.len() == netlist.macros().len()
            && self.placement.cluster_pos.len() == clustering.clusters.len()
            && self.placement.cluster_region.len() == clustering.clusters.len()
            && self.place_span.name == "place"
            && self.legalize_span.is_some() == cfg.legalize
            && self
                .legalize_span
                .as_ref()
                .is_none_or(|s| s.name == "legalize")
    }
}

impl FlowConfig {
    /// The paper's 2D baseline flow: Si CMOS + RRAM, CNFET cells blocked.
    pub fn baseline_2d() -> Self {
        Self {
            pdk: Pdk::baseline_2d_130nm(),
            soc: SocConfig::baseline_2d(),
            source: NetlistSource::Generated,
            placer: PlacerConfig::default(),
            opt: OptConfig::default(),
            die_override: None,
            activity: DEFAULT_ACTIVITY,
            legalize: true,
        }
    }

    /// The M3D flow with `cs_count` parallel computing sub-systems.
    pub fn m3d(cs_count: u32) -> Self {
        Self {
            pdk: Pdk::m3d_130nm(),
            soc: SocConfig::m3d(cs_count),
            ..Self::baseline_2d()
        }
    }

    /// Low-effort profile for tests and quick experiments.
    pub fn quick(mut self) -> Self {
        self.placer = PlacerConfig::quick();
        self.opt.max_rounds = 1;
        self.legalize = false;
        self
    }

    /// Replaces the per-CS configuration (e.g. smaller arrays in tests).
    pub fn with_cs(mut self, cs: m3d_netlist::CsConfig) -> Self {
        self.soc.cs = cs;
        self
    }

    /// Forces the die outline (the iso-footprint constraint).
    pub fn with_die(mut self, die: Rect) -> Self {
        self.die_override = Some(die);
        self
    }

    /// Re-characterises the configuration at a process `corner`: the
    /// PDK's libraries, supply and derates shift, everything else stays.
    /// Corner configurations have distinct [`FlowConfig::stable_key`]s,
    /// so SS/TT/FF runs occupy independent flow-cache entries.
    pub fn at_corner(mut self, corner: m3d_tech::Corner) -> Self {
        self.pdk = self.pdk.at_corner(corner);
        self
    }

    /// Implements an ingested netlist instead of generating the SoC.
    /// The design's content ([`m3d_tech::StableHash`] of the netlist)
    /// becomes part of [`FlowConfig::stable_key`], so distinct uploads
    /// occupy distinct flow-cache entries.
    pub fn with_external_netlist(mut self, netlist: std::sync::Arc<Netlist>) -> Self {
        self.source = NetlistSource::External(netlist);
        self
    }
}

/// Everything the flow produced, for export and inspection.
#[derive(Debug, Clone)]
pub struct FlowArtifacts {
    /// Final netlist (including post-route buffers).
    pub netlist: Netlist,
    /// Floorplan used.
    pub floorplan: Floorplan,
    /// Cluster view used by placement.
    pub clustering: Clustering,
    /// Final placement (including buffer positions).
    pub placement: Placement,
    /// Final routing estimate.
    pub routing: RoutingEstimate,
    /// Final timing.
    pub timing: TimingReport,
    /// Estimated clock tree over the final placement.
    pub clock_tree: ClockTree,
    /// Power sign-off.
    pub power: PowerReport,
    /// Warm-start seed this run leaves behind: the pre-optimisation
    /// placement and its spans, reusable by any configuration sharing
    /// this run's [`FlowConfig::placement_key`].
    pub seed: PlacementSeed,
}

/// Post-route comparison metrics (the Fig. 2 numbers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReport {
    /// Design name.
    pub design: String,
    /// Parallel computing sub-systems implemented.
    pub cs_count: u32,
    /// Die outline.
    pub die: Rect,
    /// Die area in mm².
    pub die_mm2: f64,
    /// Standard-cell instances (after optimisation).
    pub cell_count: usize,
    /// Total standard-cell area in mm².
    pub cell_area_mm2: f64,
    /// SRAM macro footprint in mm².
    pub sram_area_mm2: f64,
    /// RRAM cell-array area in mm².
    pub rram_array_mm2: f64,
    /// RRAM peripheral area in mm².
    pub rram_perif_mm2: f64,
    /// Geometric placement demand of one CS (cells at utilisation plus
    /// its SRAM buffers) in mm² — `A_C` of the analytical framework.
    pub cs_demand_mm2: f64,
    /// γ_cells = memory cell-array area / CS area (eq. 2 input).
    pub gamma_cells: f64,
    /// γ_perif = memory peripheral area / CS area.
    pub gamma_perif: f64,
    /// Extra CSs the freed under-array Si could host (0 in 2D).
    pub extra_cs_capacity: u32,
    /// Total routed wirelength in metres.
    pub wirelength_m: f64,
    /// Signal-net inter-layer vias.
    pub signal_ilvs: u64,
    /// RRAM-array internal ILVs (M3D only).
    pub memory_cell_ilvs: u64,
    /// Post-route repeaters inserted.
    pub buffers_inserted: usize,
    /// Drivers upsized.
    pub upsized: usize,
    /// Critical path in ns.
    pub critical_path_ns: f64,
    /// Fastest closable clock in MHz.
    pub achieved_mhz: f64,
    /// `true` when the target clock closed.
    pub timing_met: bool,
    /// Target clock in MHz.
    pub target_mhz: f64,
    /// Total power in mW at the target clock.
    pub total_power_mw: f64,
    /// Standard-cell leakage in mW (the FF-corner sign-off number).
    pub cell_leakage_mw: f64,
    /// Upper-tier (CNFET + RRAM layer) power in mW.
    pub upper_tier_power_mw: f64,
    /// Upper-tier share of total power.
    pub upper_tier_fraction: f64,
    /// Peak power density in mW/mm².
    pub peak_density_mw_per_mm2: f64,
    /// Average power density in mW/mm².
    pub avg_density_mw_per_mm2: f64,
    /// Power of the hottest CS block in mW.
    pub hottest_cs_power_mw: f64,
    /// Fractional increase in the hottest block's stacked power density
    /// contributed by the M3D upper layers (Observation 2: ≈ +1 %).
    pub cs_stack_density_increase: f64,
    /// Aggregate RRAM read bandwidth in bits/cycle.
    pub rram_bandwidth_bits_per_cycle: u64,
    /// Mean cell displacement paid by row legalisation in µm (0 when
    /// legalisation was skipped).
    pub legalization_displacement_um: f64,
}

/// The flow driver.
#[derive(Debug, Clone)]
pub struct Rtl2GdsFlow {
    config: FlowConfig,
}

impl Rtl2GdsFlow {
    /// Creates a flow for `config`.
    pub fn new(config: FlowConfig) -> Self {
        Self { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs the full flow.
    ///
    /// # Errors
    ///
    /// Propagates netlist generation, floorplan fit, placement, routing
    /// and timing errors.
    pub fn run(&self) -> PdResult<(FlowReport, FlowArtifacts)> {
        let (report, artifacts, _) = self.run_traced()?;
        Ok((report, artifacts))
    }

    /// [`Rtl2GdsFlow::run`], additionally returning the flow's
    /// deterministic sub-span tree: one child per phase (synthesis,
    /// floorplan, clustering, place, legalize, opt, cts, power), with
    /// per-iteration children and integer counters (annealing steps,
    /// optimisation rounds, HPWL, ILV crossings, critical paths). Equal
    /// configurations always yield byte-identical trees.
    ///
    /// # Errors
    ///
    /// Same as [`Rtl2GdsFlow::run`].
    pub fn run_traced(&self) -> PdResult<(FlowReport, FlowArtifacts, FlowSpan)> {
        let (report, artifacts, span, _) = self.run_seeded(None)?;
        Ok((report, artifacts, span))
    }

    /// [`Rtl2GdsFlow::run_traced`] with an optional warm-start `seed`.
    ///
    /// When the seed validates against this configuration (matching
    /// [`FlowConfig::placement_key`] and a placement shaped like what
    /// this netlist's clustering produces), the annealing placer and row
    /// legalisation are skipped: the seed's placement is adopted and its
    /// recorded spans are replayed verbatim, so the report, artifacts
    /// and span tree are **byte-identical** to a cold run — the seed
    /// only removes wall-clock. The returned flag says whether the warm
    /// path was taken; an invalid or mismatched seed silently falls back
    /// to the cold path (never an error).
    ///
    /// # Errors
    ///
    /// Same as [`Rtl2GdsFlow::run`].
    pub fn run_seeded(
        &self,
        seed: Option<&PlacementSeed>,
    ) -> PdResult<(FlowReport, FlowArtifacts, FlowSpan, bool)> {
        let cfg = &self.config;
        let mut obs = FlowObserver::enabled();

        // --- Synthesis stand-in -----------------------------------------
        let mut netlist = match &cfg.source {
            NetlistSource::Generated => {
                let mut nl = Netlist::new(format!("{}_{}cs", cfg.pdk.name, cfg.soc.cs_count));
                accelerator_soc(&mut nl, &cfg.soc)?;
                nl
            }
            // Ingested designs arrive pre-elaborated; implement as-is.
            NetlistSource::External(nl) => (**nl).clone(),
        };
        let mut syn = FlowSpan::new("synthesis");
        syn.counter("cells", netlist.cell_count() as u64);
        syn.counter("macros", netlist.macros().len() as u64);
        syn.counter("nets", netlist.nets().len() as u64);
        obs.record(syn);

        // --- Floorplan ----------------------------------------------------
        let floorplan = Floorplan::plan(&cfg.pdk, &cfg.soc, &netlist, cfg.die_override)?;
        let mut fps = FlowSpan::new("floorplan");
        fps.counter("regions", floorplan.regions.len() as u64);
        fps.counter("die_um2", round_counter(floorplan.die.area().value()));
        fps.counter(
            "target_clock_khz",
            round_counter(floorplan.target_clock.value() * 1_000.0),
        );
        obs.record(fps);

        // --- Clustering + global placement ---------------------------------
        let clustering = Clustering::build(&netlist, &cfg.pdk)?;
        let mut cls = FlowSpan::new("clustering");
        cls.counter("clusters", clustering.clusters.len() as u64);
        cls.counter("nets", clustering.nets.len() as u64);
        obs.record(cls);
        // --- Global placement + row legalisation ---------------------------
        // A validated seed replays the seeding run's placement and spans
        // verbatim (byte-identical by placement-key equality); otherwise
        // the placer anneals cold and we record a fresh seed.
        let (seed_out, warm) = match seed {
            Some(s) if s.validates_against(cfg, &netlist, &clustering) => (s.clone(), true),
            _ => {
                let (mut placement, place_span) =
                    place_traced(&clustering, &floorplan, &cfg.placer)?;
                let (legalize_span, legalization_displacement_um) = if cfg.legalize {
                    let leg =
                        crate::legalize::legalize(&netlist, &placement, &floorplan, &cfg.pdk)?;
                    placement.cell_pos = leg.cell_pos;
                    let mut ls = FlowSpan::new("legalize");
                    ls.counter("rows_used", leg.rows_used as u64);
                    ls.counter("far_placed", leg.far_placed as u64);
                    ls.counter(
                        "avg_displacement_nm",
                        round_counter(leg.avg_displacement.value() * 1_000.0),
                    );
                    (Some(ls), leg.avg_displacement.value())
                } else {
                    (None, 0.0)
                };
                (
                    PlacementSeed {
                        placement_key: cfg.placement_key(),
                        placement,
                        place_span,
                        legalize_span,
                        legalization_displacement_um,
                    },
                    false,
                )
            }
        };
        obs.record(seed_out.place_span.clone());
        if let Some(ls) = &seed_out.legalize_span {
            obs.record(ls.clone());
        }
        let mut placement = seed_out.placement.clone();
        let legalization_displacement_um = seed_out.legalization_displacement_um;

        // --- Route, post-route optimisation, sign-off ----------------------
        let (
            OptOutcome {
                upsized,
                buffers_inserted,
                routing,
                timing,
                ..
            },
            opt_span,
        ) = post_route_optimize_traced(
            &mut netlist,
            &mut placement,
            &cfg.pdk,
            floorplan.target_clock,
            &cfg.opt,
        )?;
        obs.record(opt_span);
        let clock_tree = estimate_clock_tree(&netlist, &placement, &floorplan, &cfg.pdk)?;
        let mut cts = FlowSpan::new("cts");
        cts.counter("sinks", clock_tree.sinks as u64);
        cts.counter("levels", u64::from(clock_tree.levels));
        cts.counter("buffers", clock_tree.buffers as u64);
        cts.counter(
            "wirelength_um",
            round_counter(clock_tree.wirelength.value()),
        );
        cts.counter(
            "insertion_delay_ps",
            round_counter(clock_tree.insertion_delay.value() * 1_000.0),
        );
        cts.counter(
            "skew_ps",
            round_counter(clock_tree.skew_bound.value() * 1_000.0),
        );
        obs.record(cts);
        let power = analyze_power(
            &netlist,
            &routing,
            &placement,
            &floorplan,
            &cfg.pdk,
            floorplan.target_clock,
            cfg.activity,
        )?;
        let mut pws = FlowSpan::new("power");
        pws.counter("total_uw", round_counter(power.total.value() * 1_000.0));
        pws.counter(
            "upper_tier_uw",
            round_counter(power.upper_tier.value() * 1_000.0),
        );
        obs.record(pws);

        // --- Report ---------------------------------------------------------
        let stats = m3d_netlist::NetlistStats::compute(&netlist, &cfg.pdk)?;
        let rram = cfg.soc.rram_macro()?;
        let array = rram.array_area(cfg.pdk.ilv())?;
        let perif = rram.peripheral_area(cfg.pdk.ilv())?;
        let cs_demand = cs_geometric_demand(&netlist, &cfg.pdk)?;
        let freed = under_array_usable_area(&cfg.pdk, &rram)?;
        let extra = if cs_demand.value() > 0.0 {
            (freed.value() / cs_demand.value()).floor() as u32
        } else {
            0
        };

        let report = FlowReport {
            design: netlist.name.clone(),
            cs_count: cfg.soc.cs_count,
            die: floorplan.die,
            die_mm2: floorplan.die.area().as_mm2(),
            cell_count: netlist.cell_count(),
            cell_area_mm2: stats.total_cell_area().as_mm2(),
            sram_area_mm2: floorplan.movable_macro_area.as_mm2(),
            rram_array_mm2: array.as_mm2(),
            rram_perif_mm2: perif.as_mm2(),
            cs_demand_mm2: cs_demand.as_mm2(),
            gamma_cells: array.value() / cs_demand.value().max(1e-12),
            gamma_perif: perif.value() / cs_demand.value().max(1e-12),
            extra_cs_capacity: extra,
            wirelength_m: routing.total_wirelength.value() * 1.0e-6,
            signal_ilvs: routing.signal_ilvs,
            memory_cell_ilvs: routing.memory_cell_ilvs,
            buffers_inserted,
            upsized,
            critical_path_ns: timing.critical_path.value(),
            achieved_mhz: timing.achieved_clock.value(),
            timing_met: timing.timing_met(),
            target_mhz: floorplan.target_clock.value(),
            total_power_mw: power.total.value(),
            cell_leakage_mw: power.cell_leakage.value(),
            upper_tier_power_mw: power.upper_tier.value(),
            upper_tier_fraction: power.upper_tier_fraction(),
            peak_density_mw_per_mm2: power.peak_density_mw_per_mm2,
            avg_density_mw_per_mm2: power.avg_density_mw_per_mm2,
            hottest_cs_power_mw: power.hottest_cs_power_mw,
            cs_stack_density_increase: {
                let cs_density = power.hottest_cs_power_mw / cs_demand.as_mm2().max(1e-9);
                if cs_density > 0.0 {
                    power.upper_layer_density_mw_per_mm2 / cs_density
                } else {
                    0.0
                }
            },
            rram_bandwidth_bits_per_cycle: rram.total_bandwidth_bits_per_cycle(),
            legalization_displacement_um,
        };
        let artifacts = FlowArtifacts {
            netlist,
            floorplan,
            clustering,
            placement,
            routing,
            timing,
            clock_tree,
            power,
            seed: seed_out,
        };
        Ok((report, artifacts, obs.finish("flow"), warm))
    }
}

/// Geometric placement demand of computing sub-system 0 (cells at the
/// free-region utilisation plus its SRAM buffer footprints), including
/// its per-CS bank-interface logic — the `A_C` the analytical framework
/// divides memory area by.
///
/// # Errors
///
/// Returns technology errors for cells missing from the PDK.
pub fn cs_geometric_demand(netlist: &Netlist, pdk: &Pdk) -> PdResult<SquareMicrons> {
    let util = pdk.rules.placement_utilization;
    let mut cells = SquareMicrons::ZERO;
    for c in netlist.cells() {
        if c.name.starts_with("cs0/") || c.name.starts_with("cs0_if/") {
            let lib = pdk.library(c.tier)?;
            cells += lib.cell(c.kind, c.drive)?.area;
        }
    }
    let mut srams = SquareMicrons::ZERO;
    for m in netlist.macros() {
        if m.name.starts_with("cs0/") {
            if let MacroKind::Sram(s) = &m.kind {
                srams += s.footprint();
            }
        }
    }
    Ok(cells * (1.0 / util) + srams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{CsConfig, PeConfig};

    fn small_cs() -> CsConfig {
        CsConfig {
            rows: 4,
            cols: 4,
            pe: PeConfig::default(),
            global_buffer_kb: 64,
            local_buffer_kb: 8,
        }
    }

    #[test]
    fn baseline_flow_end_to_end() {
        let cfg = FlowConfig::baseline_2d().with_cs(small_cs()).quick();
        let (report, artifacts) = Rtl2GdsFlow::new(cfg).run().unwrap();
        assert_eq!(report.cs_count, 1);
        assert!(report.timing_met, "20 MHz must close");
        assert!(report.die_mm2 > 80.0, "64 MB RRAM dominates the die");
        assert!(report.wirelength_m > 0.0);
        assert_eq!(report.signal_ilvs, 0, "no tier crossings in 2D");
        assert_eq!(report.upper_tier_power_mw, 0.0);
        assert!(report.extra_cs_capacity == 0, "Si selectors free nothing");
        assert!(artifacts.netlist.lint().is_empty());
    }

    #[test]
    fn m3d_flow_iso_footprint_pair() {
        let base = FlowConfig::baseline_2d().with_cs(small_cs()).quick();
        let (r2d, _) = Rtl2GdsFlow::new(base).run().unwrap();

        let m3d = FlowConfig::m3d(2)
            .with_cs(small_cs())
            .quick()
            .with_die(r2d.die);
        let (r3d, _) = Rtl2GdsFlow::new(m3d).run().unwrap();

        assert_eq!(r3d.die, r2d.die, "iso-footprint");
        assert_eq!(r3d.cs_count, 2);
        assert!(r3d.memory_cell_ilvs > 0);
        assert!(r3d.upper_tier_power_mw > 0.0);
        assert!(r3d.upper_tier_fraction < 0.05);
        assert!(
            r3d.rram_bandwidth_bits_per_cycle == 2 * r2d.rram_bandwidth_bits_per_cycle,
            "banked memory doubles bandwidth"
        );
        // The small test CS is tiny, so the freed area could host many.
        assert!(r3d.extra_cs_capacity >= 2);
    }

    #[test]
    fn traced_flow_exposes_phase_spans_and_is_deterministic() {
        let cfg = FlowConfig::baseline_2d().with_cs(small_cs()).quick();
        let (r1, a1, t1) = Rtl2GdsFlow::new(cfg.clone()).run_traced().unwrap();
        let (r2, _, t2) = Rtl2GdsFlow::new(cfg).run_traced().unwrap();
        assert_eq!(r1, r2, "flow report is deterministic");
        assert_eq!(t1, t2, "sub-span tree is deterministic");
        assert_eq!(t1.name, "flow");
        for phase in [
            "synthesis",
            "floorplan",
            "clustering",
            "place",
            "opt",
            "cts",
            "power",
        ] {
            assert!(t1.find(phase).is_some(), "missing phase span: {phase}");
        }
        // quick() skips legalisation.
        assert!(t1.find("legalize").is_none());
        let place = t1.find("place").unwrap();
        assert!(!place.children.is_empty(), "annealing step spans present");
        assert!(t1.find("route").is_some() && t1.find("sta").is_some());
        let cts = t1.find("cts").unwrap();
        assert_eq!(cts.counter_value("sinks"), Some(a1.clock_tree.sinks as u64));
        assert!(a1.clock_tree.buffers > 0, "CTS is wired into the flow");
    }

    #[test]
    fn external_netlist_runs_the_flow_and_keys_the_cache_by_content() {
        use m3d_netlist::gen::ripple_carry_adder;
        use m3d_tech::Tier;
        use std::sync::Arc;

        let mut nl = Netlist::new("uploaded");
        let a: Vec<_> = (0..8).map(|i| nl.add_net(format!("a{i}"))).collect();
        let b: Vec<_> = (0..8).map(|i| nl.add_net(format!("b{i}"))).collect();
        for &n in a.iter().chain(&b) {
            nl.set_primary_input(n).unwrap();
        }
        let out = ripple_carry_adder(&mut nl, "add", Tier::SiCmos, &a, &b, None).unwrap();
        for s in out.sum.iter().chain(std::iter::once(&out.cout)) {
            nl.set_primary_output(*s).unwrap();
        }

        let base = FlowConfig::baseline_2d().with_cs(small_cs()).quick();
        let ext = base.clone().with_external_netlist(Arc::new(nl.clone()));
        // The external design changes the content key; the default
        // source leaves pre-existing keys untouched.
        assert_ne!(ext.stable_key(), base.stable_key());
        let mut renamed = nl.clone();
        renamed.name = "uploaded2".into();
        let ext2 = base.clone().with_external_netlist(Arc::new(renamed));
        assert_ne!(ext.stable_key(), ext2.stable_key());

        let (report, artifacts) = Rtl2GdsFlow::new(ext).run().unwrap();
        assert_eq!(report.design, "uploaded");
        assert_eq!(report.cell_count, nl.cell_count());
        assert!(report.die_mm2 > 0.0);
        assert!(report.achieved_mhz > 0.0);
        assert_eq!(artifacts.netlist.macros().len(), 0);
    }

    #[test]
    fn warm_seeded_run_is_byte_identical_to_cold() {
        let mut cold_cfg = FlowConfig::baseline_2d().with_cs(small_cs()).quick();
        cold_cfg.activity = 0.20;
        let (cr, ca, ct, cold_warm) = Rtl2GdsFlow::new(cold_cfg.clone()).run_seeded(None).unwrap();
        assert!(!cold_warm);

        // A lattice neighbour: same placement key, different post-placement
        // knobs — its seed must warm-start the target bit-for-bit.
        let mut warm_cfg = cold_cfg.clone();
        warm_cfg.activity = 0.25;
        warm_cfg.opt.upsize_threshold_ns = cold_cfg.opt.upsize_threshold_ns * 0.5;
        assert_eq!(warm_cfg.placement_key(), cold_cfg.placement_key());
        assert_ne!(warm_cfg.stable_key(), cold_cfg.stable_key());
        let (_, na, _, _) = Rtl2GdsFlow::new(warm_cfg).run_seeded(None).unwrap();

        let (wr, wa, wt, warm) = Rtl2GdsFlow::new(cold_cfg)
            .run_seeded(Some(&na.seed))
            .unwrap();
        assert!(warm, "matching placement key must take the warm path");
        assert_eq!(wr, cr, "warm report == cold report");
        assert_eq!(wt, ct, "warm span tree == cold span tree");
        assert_eq!(wa.placement, ca.placement);
        assert_eq!(wa.routing, ca.routing);
        assert_eq!(wa.seed, ca.seed);
    }

    #[test]
    fn mismatched_or_corrupt_seed_falls_back_to_cold() {
        let cfg = FlowConfig::baseline_2d().with_cs(small_cs()).quick();
        let (cr, ca, _) = Rtl2GdsFlow::new(cfg.clone()).run_traced().unwrap();

        // Different placement key (placer effort differs) → cold.
        let mut other = cfg.clone();
        other.placer = PlacerConfig::default();
        assert_ne!(other.placement_key(), cfg.placement_key());
        let (_, oa, _, _) = Rtl2GdsFlow::new(other).run_seeded(None).unwrap();
        let (r1, _, _, warm1) = Rtl2GdsFlow::new(cfg.clone())
            .run_seeded(Some(&oa.seed))
            .unwrap();
        assert!(!warm1);
        assert_eq!(r1, cr);

        // Right key but truncated placement (a corrupt artifact) → cold.
        let mut corrupt = ca.seed.clone();
        corrupt.placement.cell_pos.pop();
        let (r2, _, _, warm2) = Rtl2GdsFlow::new(cfg).run_seeded(Some(&corrupt)).unwrap();
        assert!(!warm2);
        assert_eq!(r2, cr);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        /// Warm-vs-cold byte-identity over random adjacent lattice pairs:
        /// any seed from a configuration sharing the placement key
        /// reproduces the cold run exactly, whatever the post-placement
        /// knobs of either side.
        #[test]
        fn warm_start_matches_cold_for_random_adjacent_pairs(
            act_a in 1u32..=8,
            act_b in 1u32..=8,
            thr_a in 1u32..=6,
            thr_b in 1u32..=6,
            rounds_b in 1u32..=2,
            buf_b in 0u32..2,
        ) {
            let mut a = FlowConfig::baseline_2d().with_cs(small_cs()).quick();
            a.activity = f64::from(act_a) * 0.05;
            a.opt.upsize_threshold_ns = f64::from(thr_a) * 0.05;
            let mut b = a.clone();
            b.activity = f64::from(act_b) * 0.05;
            b.opt.upsize_threshold_ns = f64::from(thr_b) * 0.05;
            b.opt.max_rounds = rounds_b as usize;
            if buf_b == 1 {
                b.opt.buffer_length_um *= 0.5;
            }
            proptest::prop_assert_eq!(a.placement_key(), b.placement_key());

            let (_, na, _, _) = Rtl2GdsFlow::new(a).run_seeded(None).unwrap();
            let (cr, ca, ct, _) = Rtl2GdsFlow::new(b.clone()).run_seeded(None).unwrap();
            let (wr, wa, wt, warm) =
                Rtl2GdsFlow::new(b).run_seeded(Some(&na.seed)).unwrap();
            proptest::prop_assert!(warm);
            proptest::prop_assert_eq!(wr, cr);
            proptest::prop_assert_eq!(wt, ct);
            proptest::prop_assert_eq!(wa.placement, ca.placement);
            proptest::prop_assert_eq!(wa.routing, ca.routing);
        }
    }

    #[test]
    fn gamma_ratios_consistent() {
        let cfg = FlowConfig::baseline_2d().with_cs(small_cs()).quick();
        let (r, _) = Rtl2GdsFlow::new(cfg).run().unwrap();
        assert!(r.gamma_cells > 0.0);
        assert!(r.gamma_perif > 0.0);
        assert!((r.gamma_cells / r.gamma_perif - r.rram_array_mm2 / r.rram_perif_mm2).abs() < 1e-6);
        assert!(r.cs_demand_mm2 > 0.0);
    }
}
