//! Routing estimation: net lengths from the placement, Steiner scaling,
//! layer-averaged RC parasitics and inter-layer-via (ILV) counting.
//!
//! This stands in for detailed routing: each net's length is its pin
//! bounding-box half-perimeter scaled by a Steiner factor for multi-pin
//! nets and a detour factor for congestion, then converted to RC with the
//! PDK's layer-averaged per-micron parasitics.

use serde::{Deserialize, Serialize};

use m3d_netlist::{Driver, MacroKind, Netlist, Sink};
use m3d_tech::units::{Femtofarads, KiloOhms, Microns};
use m3d_tech::{Pdk, TechResult, Tier};

use crate::cluster::GLOBAL_NET_FANOUT;
use crate::geom::{BoundingBox, Point};
use crate::place::Placement;

/// Routed parasitics of one net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutedNet {
    /// Estimated routed length.
    pub length: Microns,
    /// Wire capacitance.
    pub wire_cap: Femtofarads,
    /// Wire resistance.
    pub wire_res: KiloOhms,
    /// Sum of sink pin capacitances.
    pub pin_cap: Femtofarads,
    /// ILVs used by this net (tier crossings).
    pub ilv_count: u32,
    /// `true` when the net is globally distributed (constants/resets):
    /// excluded from timing as an ideal network.
    pub is_global: bool,
}

impl RoutedNet {
    /// Total load the driver sees.
    pub fn total_cap(&self) -> Femtofarads {
        self.wire_cap + self.pin_cap
    }
}

/// Routing estimate for a whole design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingEstimate {
    /// Per-net parasitics (indexed like `Netlist::nets`).
    pub nets: Vec<RoutedNet>,
    /// Total routed wirelength, including the intra-cluster estimate.
    pub total_wirelength: Microns,
    /// Total signal-net ILV count (excludes the RRAM array's internal
    /// cell ILVs, reported separately).
    pub signal_ilvs: u64,
    /// ILVs inside RRAM arrays (every bitcell taps the upper selector
    /// tier in M3D).
    pub memory_cell_ilvs: u64,
    /// Detour factor used.
    pub detour: f64,
}

/// Detour factor applied on top of Steiner length (routing congestion).
pub const DEFAULT_DETOUR: f64 = 1.15;

fn pin_tier(netlist: &Netlist, pdk: &Pdk, driver_or_sink_is_macro: Option<usize>) -> Tier {
    // Macro pins sit on the CNFET tier when the RRAM uses CNFET selectors
    // (the word/bit lines terminate at the upper selector layer).
    if let Some(mi) = driver_or_sink_is_macro {
        if let MacroKind::Rram(r) = &netlist.macros()[mi].kind {
            if r.selector.frees_si_tier() && pdk.has_cnfet_tier() {
                return Tier::Cnfet;
            }
        }
    }
    Tier::SiCmos
}

/// Per-net routing context: everything [`estimate_routing`] derives
/// once per design, factored out so the full and incremental estimators
/// share one per-net function (bit-identical results by construction).
struct NetRouter<'a> {
    netlist: &'a Netlist,
    placement: &'a Placement,
    pdk: &'a Pdk,
    io_point: Point,
    r_per_um: KiloOhms,
    c_per_um: Femtofarads,
    detour: f64,
}

impl<'a> NetRouter<'a> {
    fn new(netlist: &'a Netlist, placement: &'a Placement, pdk: &'a Pdk, detour: f64) -> Self {
        Self {
            netlist,
            placement,
            pdk,
            io_point: placement
                .cluster_pos
                .first()
                .copied()
                .unwrap_or(Point::default()),
            r_per_um: pdk.stack.avg_resistance_per_um(),
            c_per_um: pdk.stack.avg_capacitance_per_um(),
            detour,
        }
    }

    fn route(&self, ni: usize) -> TechResult<RoutedNet> {
        let net = &self.netlist.nets()[ni];
        let mut bb = BoundingBox::new();
        let mut pins = 0usize;
        let mut pin_cap = Femtofarads::ZERO;
        let mut tiers: Vec<Tier> = Vec::with_capacity(4);

        match net.driver {
            Some(Driver::Cell { cell, .. }) => {
                bb.include(self.placement.cell_pos[cell.0 as usize]);
                let c = &self.netlist.cells()[cell.0 as usize];
                tiers.push(c.tier);
                pins += 1;
            }
            Some(Driver::Macro { id }) => {
                bb.include(self.placement.macro_pos[id.0 as usize]);
                tiers.push(pin_tier(self.netlist, self.pdk, Some(id.0 as usize)));
                pins += 1;
            }
            Some(Driver::PrimaryInput) => {
                bb.include(self.io_point);
                tiers.push(Tier::SiCmos);
                pins += 1;
            }
            None => {}
        }
        for s in &net.sinks {
            match *s {
                Sink::Cell { cell, pin } => {
                    bb.include(self.placement.cell_pos[cell.0 as usize]);
                    let c = &self.netlist.cells()[cell.0 as usize];
                    tiers.push(c.tier);
                    let lib = self.pdk.library(c.tier)?;
                    pin_cap += lib.cell(c.kind, c.drive)?.input_cap;
                    let _ = pin;
                }
                Sink::Macro { id } => {
                    bb.include(self.placement.macro_pos[id.0 as usize]);
                    tiers.push(pin_tier(self.netlist, self.pdk, Some(id.0 as usize)));
                    pin_cap += Femtofarads::new(5.0);
                }
                Sink::PrimaryOutput => {
                    bb.include(self.io_point);
                    tiers.push(Tier::SiCmos);
                    pin_cap += Femtofarads::new(10.0);
                }
            }
            pins += 1;
        }

        let is_global = net.fanout() > GLOBAL_NET_FANOUT;
        let steiner = if pins <= 3 {
            1.0
        } else {
            (0.5 * (pins as f64).sqrt()).max(1.0)
        };
        let length = Microns::new(bb.hpwl().value() * steiner * self.detour);
        // Tier crossings need one ILV each.
        let base_tier = tiers.first().copied().unwrap_or(Tier::SiCmos);
        let crossings = tiers.iter().filter(|&&t| t != base_tier).count() as u32;

        Ok(RoutedNet {
            length,
            wire_cap: self.c_per_um * length.value(),
            wire_res: self.r_per_um * length.value(),
            pin_cap,
            ilv_count: crossings,
            is_global,
        })
    }
}

fn memory_cell_ilvs(netlist: &Netlist) -> u64 {
    netlist
        .macros()
        .iter()
        .map(|m| match &m.kind {
            MacroKind::Rram(r) if r.selector.frees_si_tier() => {
                r.capacity_bits * u64::from(r.cell.vias_per_cell)
            }
            _ => 0,
        })
        .sum()
}

/// Re-derives the design totals from per-net entries, accumulating in
/// net-index order — the same sequence of float additions the full
/// estimator performs, so an incrementally patched estimate is
/// bit-identical to one computed from scratch.
fn totals(nets: &[RoutedNet], placement: &Placement, netlist: &Netlist) -> (Microns, u64, u64) {
    let mut total_len = 0.0f64;
    let mut signal_ilvs = 0u64;
    for rn in nets {
        total_len += rn.length.value();
        signal_ilvs += u64::from(rn.ilv_count);
    }
    (
        Microns::new(total_len) + placement.intra_wl,
        signal_ilvs,
        memory_cell_ilvs(netlist),
    )
}

/// Estimates routing for a placed design.
///
/// # Errors
///
/// Returns technology errors when a cell is missing from the PDK
/// libraries.
pub fn estimate_routing(
    netlist: &Netlist,
    placement: &Placement,
    pdk: &Pdk,
    detour: f64,
) -> TechResult<RoutingEstimate> {
    let router = NetRouter::new(netlist, placement, pdk, detour);
    let mut nets = Vec::with_capacity(netlist.net_count());
    for ni in 0..netlist.net_count() {
        nets.push(router.route(ni)?);
    }
    let (total_wirelength, signal_ilvs, memory_cell_ilvs) = totals(&nets, placement, netlist);
    Ok(RoutingEstimate {
        nets,
        total_wirelength,
        signal_ilvs,
        memory_cell_ilvs,
        detour,
    })
}

/// Incrementally re-estimates routing against a placement/netlist delta:
/// only the nets listed in `dirty` (plus nets appended since `prev` was
/// computed) are re-routed; every other per-net entry is carried over
/// from `prev` unchanged, and the design totals are re-accumulated in
/// net-index order. The result is **bit-identical** to a from-scratch
/// [`estimate_routing`] of the current netlist/placement, provided
/// `dirty` covers every net whose pins, positions or topology changed —
/// post-route optimisation's buffer insertion and driver upsizing
/// produce exactly such a conservative dirty set.
///
/// Falls back to the full estimator when `prev` was computed with a
/// different detour factor or has more nets than the netlist (a stale
/// estimate it cannot patch).
///
/// # Errors
///
/// Returns technology errors when a cell is missing from the PDK
/// libraries.
pub fn reestimate_routing(
    netlist: &Netlist,
    placement: &Placement,
    pdk: &Pdk,
    detour: f64,
    prev: &RoutingEstimate,
    dirty: &[usize],
) -> TechResult<RoutingEstimate> {
    if prev.detour != detour || prev.nets.len() > netlist.net_count() {
        return estimate_routing(netlist, placement, pdk, detour);
    }
    let router = NetRouter::new(netlist, placement, pdk, detour);
    let mut nets = prev.nets.clone();
    for &ni in dirty {
        if ni < nets.len() {
            nets[ni] = router.route(ni)?;
        }
    }
    for ni in nets.len()..netlist.net_count() {
        nets.push(router.route(ni)?);
    }
    let (total_wirelength, signal_ilvs, memory_cell_ilvs) = totals(&nets, placement, netlist);
    Ok(RoutingEstimate {
        nets,
        total_wirelength,
        signal_ilvs,
        memory_cell_ilvs,
        detour,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::floorplan::Floorplan;
    use crate::place::{place, PlacerConfig};
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig, SocConfig};

    fn routed(m3d: bool) -> (Netlist, RoutingEstimate) {
        let cs = CsConfig {
            rows: 4,
            cols: 4,
            pe: PeConfig::default(),
            global_buffer_kb: 64,
            local_buffer_kb: 8,
        };
        let (cfg, pdk) = if m3d {
            (
                SocConfig {
                    cs,
                    ..SocConfig::m3d(2)
                },
                m3d_tech::Pdk::m3d_130nm(),
            )
        } else {
            (
                SocConfig {
                    cs,
                    ..SocConfig::baseline_2d()
                },
                m3d_tech::Pdk::baseline_2d_130nm(),
            )
        };
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        let r = estimate_routing(&nl, &p, &pdk, DEFAULT_DETOUR).unwrap();
        (nl, r)
    }

    #[test]
    fn every_net_is_routed() {
        let (nl, r) = routed(false);
        assert_eq!(r.nets.len(), nl.net_count());
        assert!(r.total_wirelength.value() > 0.0);
        for rn in &r.nets {
            assert!(rn.length.value() >= 0.0);
            assert!(rn.wire_cap.value() >= 0.0);
        }
    }

    #[test]
    fn global_nets_are_flagged() {
        let (nl, r) = routed(false);
        let globals = r.nets.iter().filter(|n| n.is_global).count();
        assert!(globals >= 1, "const0 should be global");
        let matching = nl
            .nets()
            .iter()
            .zip(&r.nets)
            .all(|(n, rn)| rn.is_global == (n.fanout() > GLOBAL_NET_FANOUT));
        assert!(matching);
    }

    #[test]
    fn m3d_memory_ilvs_counted() {
        let (_, r2d) = routed(false);
        let (_, r3d) = routed(true);
        assert_eq!(r2d.memory_cell_ilvs, 0);
        // 64 MB × 4 vias/cell.
        assert_eq!(r3d.memory_cell_ilvs, 64 * 1024 * 1024 * 8 * 4);
        // Signal nets to the RRAM macro cross tiers in M3D.
        assert!(r3d.signal_ilvs > 0);
        assert_eq!(r2d.signal_ilvs, 0);
    }

    #[test]
    fn rc_scales_with_length() {
        let (_, r) = routed(false);
        let long = r
            .nets
            .iter()
            .max_by(|a, b| a.length.partial_cmp(&b.length).unwrap())
            .unwrap();
        let short = r
            .nets
            .iter()
            .filter(|n| n.length.value() > 0.0)
            .min_by(|a, b| a.length.partial_cmp(&b.length).unwrap())
            .unwrap();
        assert!(long.wire_cap > short.wire_cap);
        assert!(long.wire_res > short.wire_res);
        assert!(long.total_cap() >= long.wire_cap);
    }
}
