//! Floorplanning: die sizing, RRAM macro pre-placement and the placeable
//! regions handed to the global placer.
//!
//! The floorplan mirrors Fig. 2 of the paper. The RRAM cell array is a
//! fixed block spanning the die width at the top; its peripheral strip
//! (sense amplifiers, controllers) sits directly below and always blocks
//! the Si tier. The remaining bottom strip holds logic and SRAM buffers.
//! In the M3D configuration the Si tier *under* the cell array becomes an
//! additional placeable region with reduced availability (only the
//! routing layers below the RRAM plane are usable there, and bank
//! interfaces plus 3D clock/power distribution reserve part of it).

use serde::{Deserialize, Serialize};

use m3d_netlist::{MacroKind, Netlist, SocConfig};
use m3d_tech::units::{Megahertz, SquareMicrons};
use m3d_tech::{Pdk, RramMacro};

use crate::error::{PdError, PdResult};
use crate::geom::Rect;

/// Why a region is placeable and at what density.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionKind {
    /// Ordinary free Si with the full routing stack.
    Free,
    /// Si tier underneath an RRAM cell array (M3D only): placeable, but
    /// congestion-limited because only the sub-RRAM routing layers are
    /// available.
    UnderArray,
}

/// One placeable region of the Si tier.
///
/// Capacity accounting is *geometric*: a logic cluster of cell area `A`
/// demands `A / cell_utilization` of region area; a macro demands its
/// footprint. A region offers `(area − reserve) × availability`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Region geometry.
    pub rect: Rect,
    /// Region kind.
    pub kind: RegionKind,
    /// Fraction of the geometric area that placement may use (reduced
    /// under RRAM arrays by routing-layer congestion).
    pub availability: f64,
    /// Standard-cell packing utilisation within the usable area.
    pub cell_utilization: f64,
    /// Geometric area carved out for non-placeable overhead (bus/IO in
    /// free regions; bank interfaces and 3D clock/power distribution in
    /// under-array regions).
    pub reserve: SquareMicrons,
}

impl Region {
    /// Usable geometric placement area of the region.
    pub fn usable_area(&self) -> SquareMicrons {
        (self.rect.area() - self.reserve).max(SquareMicrons::ZERO) * self.availability
    }
}

/// A fixed (pre-placed) block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedBlock {
    /// Block name, e.g. `"rram_array"`.
    pub name: String,
    /// Geometry.
    pub rect: Rect,
    /// `true` when the Si tier below/inside is blocked for placement.
    pub blocks_si: bool,
}

/// The floorplan handed to placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    /// Die outline.
    pub die: Rect,
    /// Pre-placed fixed blocks (the RRAM array and its peripherals).
    pub fixed: Vec<FixedBlock>,
    /// Placeable regions.
    pub regions: Vec<Region>,
    /// Target clock for the implementation.
    pub target_clock: Megahertz,
    /// Total standard-cell area that must be placed.
    pub cell_area: SquareMicrons,
    /// Total movable-macro (SRAM) footprint that must be placed.
    pub movable_macro_area: SquareMicrons,
}

/// Geometric area reserved in the under-array region for RRAM bank
/// interfaces and 3D clock/power distribution, in mm² (calibrated so the
/// 64 MB design hosts exactly the paper's 8 CSs — see DESIGN.md §5).
pub const M3D_INTERFACE_RESERVE_MM2: f64 = 10.0;

/// Sizing slack applied to the logic strip when the die is self-sized.
const DIE_SIZING_MARGIN: f64 = 1.02;

/// Geometric placement demand of a design: cell area at utilisation plus
/// macro footprints.
pub fn geometric_demand(
    cell_area: SquareMicrons,
    macro_area: SquareMicrons,
    cell_utilization: f64,
) -> SquareMicrons {
    cell_area * (1.0 / cell_utilization) + macro_area
}

/// Usable geometric area freed under an RRAM array in M3D, after the
/// interface reserve and routing-availability derate — the quantity that
/// determines how many extra CSs a design point can host (eq. 2 of the
/// paper, with physical-design overheads applied).
pub fn under_array_usable_area(pdk: &Pdk, rram: &RramMacro) -> PdResult<SquareMicrons> {
    if !rram.selector.frees_si_tier() {
        return Ok(SquareMicrons::ZERO);
    }
    let array = rram.array_area(pdk.ilv())?;
    let reserve = SquareMicrons::from_mm2(M3D_INTERFACE_RESERVE_MM2);
    Ok((array - reserve).max(SquareMicrons::ZERO) * pdk.rules.under_array_utilization)
}

impl Floorplan {
    /// Plans the die for `netlist` implementing `cfg` under `pdk`.
    ///
    /// With `die_override = Some(rect)` the die outline is forced (the
    /// iso-footprint constraint: the M3D design must fit the 2D
    /// baseline's outline); otherwise the die is sized to fit.
    ///
    /// # Errors
    ///
    /// * [`PdError::BadNetlist`] when the netlist fails lint.
    /// * [`PdError::DoesNotFit`] when the forced die cannot host the
    ///   design.
    /// * Technology errors for invalid macro configurations.
    pub fn plan(
        pdk: &Pdk,
        cfg: &SocConfig,
        netlist: &Netlist,
        die_override: Option<Rect>,
    ) -> PdResult<Self> {
        let issues = netlist.lint();
        if !issues.is_empty() {
            return Err(PdError::BadNetlist { issues });
        }

        // --- Area demands ---------------------------------------------
        let stats = m3d_netlist::NetlistStats::compute(netlist, pdk)?;
        let cell_area = stats.total_cell_area();
        let rram = cfg.rram_macro()?;
        let array_area = rram.array_area(pdk.ilv())?;
        let perif_area = rram.peripheral_area(pdk.ilv())?;
        let sram_area: SquareMicrons = netlist
            .macros()
            .iter()
            .filter_map(|m| match &m.kind {
                MacroKind::Sram(s) => Some(s.footprint()),
                MacroKind::Rram(_) => None,
                MacroKind::BlackBox { area, .. } => Some(*area),
            })
            .sum();

        let util = pdk.rules.placement_utilization;
        let logic_demand = geometric_demand(cell_area, sram_area, util);
        let bottom_area = logic_demand * DIE_SIZING_MARGIN + pdk.rules.bus_io_reserve;

        // --- Die outline -----------------------------------------------
        let frees_si = cfg.selector.frees_si_tier();
        let die = match die_override {
            Some(d) => d,
            None => {
                let total = array_area + perif_area + bottom_area;
                let side = total.sqrt_side();
                Rect::with_size(side, side)
            }
        };
        let die_w = die.width();
        let die_h = die.height();

        // --- Fixed blocks: array on top, peripherals below -------------
        let array_h = array_area / die_w;
        let perif_h = perif_area / die_w;
        if array_h + perif_h > die_h {
            return Err(PdError::DoesNotFit {
                required_mm2: (array_area + perif_area).as_mm2(),
                available_mm2: die.area().as_mm2(),
                resource: "die area for the RRAM macro",
            });
        }
        let array_rect = Rect {
            x0: die.x0,
            y0: die.y1 - array_h,
            x1: die.x1,
            y1: die.y1,
        };
        let perif_rect = Rect {
            x0: die.x0,
            y0: array_rect.y0 - perif_h,
            x1: die.x1,
            y1: array_rect.y0,
        };
        let bottom_rect = Rect {
            x0: die.x0,
            y0: die.y0,
            x1: die.x1,
            y1: perif_rect.y0,
        };

        // --- Placeable regions -----------------------------------------
        let mut regions = vec![Region {
            rect: bottom_rect,
            kind: RegionKind::Free,
            availability: 1.0,
            cell_utilization: util,
            reserve: pdk.rules.bus_io_reserve,
        }];
        if frees_si {
            regions.push(Region {
                rect: array_rect,
                kind: RegionKind::UnderArray,
                availability: pdk.rules.under_array_utilization,
                cell_utilization: util,
                reserve: SquareMicrons::from_mm2(M3D_INTERFACE_RESERVE_MM2),
            });
        }

        // --- Fit check ---------------------------------------------------
        let capacity: SquareMicrons = regions.iter().map(|r| r.usable_area()).sum();
        if logic_demand > capacity {
            return Err(PdError::DoesNotFit {
                required_mm2: logic_demand.as_mm2(),
                available_mm2: capacity.as_mm2(),
                resource: "free Si placement area",
            });
        }

        let fixed = vec![
            FixedBlock {
                name: "rram_array".to_owned(),
                rect: array_rect,
                blocks_si: !frees_si,
            },
            FixedBlock {
                name: "rram_periph".to_owned(),
                rect: perif_rect,
                blocks_si: true,
            },
        ];

        Ok(Self {
            die,
            fixed,
            regions,
            target_clock: pdk.default_clock,
            cell_area,
            movable_macro_area: sram_area,
        })
    }

    /// Total usable geometric placement area across regions.
    pub fn capacity(&self) -> SquareMicrons {
        self.regions.iter().map(|r| r.usable_area()).sum()
    }

    /// The under-array region, when the floorplan has one (M3D).
    pub fn under_array_region(&self) -> Option<&Region> {
        self.regions
            .iter()
            .find(|r| r.kind == RegionKind::UnderArray)
    }

    /// The RRAM cell-array block.
    ///
    /// # Panics
    ///
    /// Never panics for floorplans produced by [`Floorplan::plan`].
    pub fn rram_array(&self) -> &FixedBlock {
        self.fixed
            .iter()
            .find(|f| f.name == "rram_array")
            .expect("plan always places the array")
    }

    /// The RRAM peripheral block.
    ///
    /// # Panics
    ///
    /// Never panics for floorplans produced by [`Floorplan::plan`].
    pub fn rram_periph(&self) -> &FixedBlock {
        self.fixed
            .iter()
            .find(|f| f.name == "rram_periph")
            .expect("plan always places the peripherals")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig};
    use m3d_tech::SelectorTech;

    fn small_cs() -> CsConfig {
        CsConfig {
            rows: 4,
            cols: 4,
            pe: PeConfig::default(),
            global_buffer_kb: 64,
            local_buffer_kb: 8,
        }
    }

    fn build(cfg: &SocConfig) -> Netlist {
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, cfg).unwrap();
        nl
    }

    #[test]
    fn baseline_floorplan_blocks_array_si() {
        let cfg = SocConfig {
            cs: small_cs(),
            ..SocConfig::baseline_2d()
        };
        let nl = build(&cfg);
        let pdk = Pdk::baseline_2d_130nm();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        assert!(fp.rram_array().blocks_si);
        assert!(fp.under_array_region().is_none());
        assert_eq!(fp.regions.len(), 1);
        // 64 MB array dominates the die.
        assert!(fp.rram_array().rect.area().as_mm2() > 70.0);
    }

    #[test]
    fn m3d_floorplan_frees_under_array_region() {
        let cfg = SocConfig {
            cs: small_cs(),
            ..SocConfig::m3d(2)
        };
        let nl = build(&cfg);
        let pdk = Pdk::m3d_130nm();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        assert!(!fp.rram_array().blocks_si);
        let ua = fp.under_array_region().unwrap();
        assert_eq!(ua.rect, fp.rram_array().rect);
        assert!(ua.availability < 1.0);
        assert!(ua.usable_area().as_mm2() > 0.0);
    }

    #[test]
    fn iso_footprint_override_is_respected() {
        let cfg2d = SocConfig {
            cs: small_cs(),
            ..SocConfig::baseline_2d()
        };
        let nl2d = build(&cfg2d);
        let pdk2d = Pdk::baseline_2d_130nm();
        let fp2d = Floorplan::plan(&pdk2d, &cfg2d, &nl2d, None).unwrap();

        let cfg3d = SocConfig {
            cs: small_cs(),
            ..SocConfig::m3d(2)
        };
        let nl3d = build(&cfg3d);
        let pdk3d = Pdk::m3d_130nm();
        let fp3d = Floorplan::plan(&pdk3d, &cfg3d, &nl3d, Some(fp2d.die)).unwrap();
        assert_eq!(fp3d.die, fp2d.die, "iso-footprint");
    }

    #[test]
    fn overfull_design_rejected() {
        // Forcing a tiny die must fail the fit check.
        let cfg = SocConfig {
            cs: small_cs(),
            ..SocConfig::baseline_2d()
        };
        let nl = build(&cfg);
        let pdk = Pdk::baseline_2d_130nm();
        let tiny = Rect::new(0.0, 0.0, 100.0, 100.0);
        assert!(matches!(
            Floorplan::plan(&pdk, &cfg, &nl, Some(tiny)),
            Err(PdError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn bad_netlist_rejected() {
        let mut nl = Netlist::new("bad");
        nl.add_net("dangling");
        let cfg = SocConfig::baseline_2d();
        let pdk = Pdk::baseline_2d_130nm();
        assert!(matches!(
            Floorplan::plan(&pdk, &cfg, &nl, None),
            Err(PdError::BadNetlist { .. })
        ));
    }

    #[test]
    fn region_usable_area_subtracts_reserve_then_derates() {
        let r = Region {
            rect: Rect::new(0.0, 0.0, 1000.0, 1000.0),
            kind: RegionKind::UnderArray,
            availability: 0.5,
            cell_utilization: 0.7,
            reserve: SquareMicrons::new(200_000.0),
        };
        assert_eq!(r.usable_area(), SquareMicrons::new(400_000.0));
        let over = Region {
            reserve: SquareMicrons::new(1.0e9),
            ..r
        };
        assert_eq!(over.usable_area(), SquareMicrons::ZERO);
    }

    #[test]
    fn under_array_usable_area_matches_calibration() {
        let pdk = Pdk::m3d_130nm();
        // 64 MB CNFET-selector array frees (80.5 − 10) × 0.5 ≈ 35.3 mm².
        let m3d = RramMacro::with_capacity_mb(64, 8, 256, SelectorTech::IDEAL_CNFET).unwrap();
        let freed = under_array_usable_area(&pdk, &m3d).unwrap();
        assert!(
            (freed.as_mm2() - 35.27).abs() < 0.1,
            "freed = {}",
            freed.as_mm2()
        );
        // Si selectors free nothing.
        let two_d = RramMacro::with_capacity_mb(64, 1, 256, SelectorTech::SiFet).unwrap();
        assert_eq!(
            under_array_usable_area(&pdk, &two_d).unwrap(),
            SquareMicrons::ZERO
        );
    }

    #[test]
    fn geometric_demand_combines_cells_and_macros() {
        let d = geometric_demand(SquareMicrons::new(700.0), SquareMicrons::new(500.0), 0.7);
        assert!((d.value() - 1500.0).abs() < 1e-9);
    }
}
