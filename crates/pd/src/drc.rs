//! Placement design-rule checks: the sign-off gate between legalisation
//! and tape-out. Checks row alignment, in-row overlap, die containment
//! and blockage violations (cells inside the RRAM peripheral strip, or
//! under the array in the 2D baseline).

use serde::{Deserialize, Serialize};

use m3d_netlist::Netlist;
use m3d_tech::{Pdk, TechResult};

use crate::floorplan::Floorplan;
use crate::place::Placement;

/// A single design-rule violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrcViolation {
    /// Violation class.
    pub kind: DrcKind,
    /// Offending instance name.
    pub instance: String,
    /// Location of the violation.
    pub x_um: f64,
    /// Location of the violation.
    pub y_um: f64,
}

/// Violation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DrcKind {
    /// Cell centre outside the die outline.
    OffDie,
    /// Cell not aligned to a placement row.
    OffRow,
    /// Two cells overlap within a row.
    Overlap,
    /// Cell inside a hard blockage (RRAM peripherals, or the array
    /// region when the Si tier is blocked).
    InBlockage,
}

/// DRC summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrcReport {
    /// All violations found (capped at 1 000 for reporting).
    pub violations: Vec<DrcViolation>,
    /// Total violation count (uncapped).
    pub total: usize,
    /// Cells checked.
    pub checked: usize,
    /// Whether row alignment was required (post-legalisation only).
    pub rows_checked: bool,
}

impl DrcReport {
    /// `true` when the placement is clean.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Violations of one class.
    pub fn count_of(&self, kind: DrcKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }
}

/// Runs placement DRC. `check_rows` enables row-alignment and in-row
/// overlap checks (meaningful only after legalisation).
///
/// # Errors
///
/// Returns technology errors for cells missing from the PDK libraries.
pub fn check_placement(
    netlist: &Netlist,
    placement: &Placement,
    floorplan: &Floorplan,
    pdk: &Pdk,
    check_rows: bool,
) -> TechResult<DrcReport> {
    let mut violations = Vec::new();
    let mut total = 0usize;
    let push = |violations: &mut Vec<DrcViolation>, total: &mut usize, v: DrcViolation| {
        *total += 1;
        if violations.len() < 1000 {
            violations.push(v);
        }
    };
    let row_h = pdk.si_lib.row_height.value();

    // Blockages: peripherals always; the array only when it blocks Si.
    let blockages: Vec<_> = floorplan
        .fixed
        .iter()
        .filter(|f| f.blocks_si)
        .map(|f| f.rect)
        .collect();

    // In-row overlap bookkeeping: (quantised y) → sorted (x, half-width).
    let mut rows: std::collections::BTreeMap<i64, Vec<(f64, f64, u32)>> = Default::default();

    for (ci, cell) in netlist.cells().iter().enumerate() {
        let pos = placement.cell_pos[ci];
        if !floorplan.die.contains(pos) {
            push(
                &mut violations,
                &mut total,
                DrcViolation {
                    kind: DrcKind::OffDie,
                    instance: cell.name.clone(),
                    x_um: pos.x.value(),
                    y_um: pos.y.value(),
                },
            );
            continue;
        }
        for b in &blockages {
            if b.contains(pos) {
                push(
                    &mut violations,
                    &mut total,
                    DrcViolation {
                        kind: DrcKind::InBlockage,
                        instance: cell.name.clone(),
                        x_um: pos.x.value(),
                        y_um: pos.y.value(),
                    },
                );
            }
        }
        if check_rows {
            let on_row = floorplan.regions.iter().any(|r| {
                let rel = pos.y.value() - r.rect.y0.value();
                if rel < 0.0 {
                    return false;
                }
                let k = (rel / row_h - 0.5).round();
                k >= 0.0 && (rel - (k + 0.5) * row_h).abs() < 1e-3
            });
            if !on_row {
                push(
                    &mut violations,
                    &mut total,
                    DrcViolation {
                        kind: DrcKind::OffRow,
                        instance: cell.name.clone(),
                        x_um: pos.x.value(),
                        y_um: pos.y.value(),
                    },
                );
            }
            let lib = pdk.library(cell.tier)?;
            let w = lib.cell(cell.kind, cell.drive)?.area.value() / row_h;
            rows.entry((pos.y.value() * 1000.0).round() as i64)
                .or_default()
                .push((pos.x.value(), w / 2.0, ci as u32));
        }
    }

    if check_rows {
        for (_, mut cells) in rows {
            cells.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            for pair in cells.windows(2) {
                let right_edge = pair[0].0 + pair[0].1;
                let left_edge = pair[1].0 - pair[1].1;
                if left_edge < right_edge - 1e-6 {
                    let ci = pair[1].2 as usize;
                    push(
                        &mut violations,
                        &mut total,
                        DrcViolation {
                            kind: DrcKind::Overlap,
                            instance: netlist.cells()[ci].name.clone(),
                            x_um: pair[1].0,
                            y_um: 0.0,
                        },
                    );
                }
            }
        }
    }

    Ok(DrcReport {
        violations,
        total,
        checked: netlist.cell_count(),
        rows_checked: check_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::legalize::legalize;
    use crate::place::{place, PlacerConfig};
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig, SocConfig};

    fn setup() -> (Netlist, Placement, Floorplan, Pdk) {
        let cfg = SocConfig {
            cs: CsConfig {
                rows: 4,
                cols: 4,
                pe: PeConfig::default(),
                global_buffer_kb: 64,
                local_buffer_kb: 8,
            },
            ..SocConfig::baseline_2d()
        };
        let pdk = Pdk::baseline_2d_130nm();
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        (nl, p, fp, pdk)
    }

    #[test]
    fn legalized_placement_is_drc_clean() {
        let (nl, p, fp, pdk) = setup();
        let leg = legalize(&nl, &p, &fp, &pdk).unwrap();
        let legal = Placement {
            cell_pos: leg.cell_pos,
            ..p
        };
        let report = check_placement(&nl, &legal, &fp, &pdk, true).unwrap();
        assert!(
            report.is_clean(),
            "violations: {} (first: {:?})",
            report.total,
            report.violations.first()
        );
        assert_eq!(report.checked, nl.cell_count());
        assert!(report.rows_checked);
    }

    #[test]
    fn global_placement_passes_without_row_checks() {
        let (nl, p, fp, pdk) = setup();
        let report = check_placement(&nl, &p, &fp, &pdk, false).unwrap();
        // Global placement keeps cells on-die and out of blockages.
        assert_eq!(report.count_of(DrcKind::OffDie), 0);
        assert!(!report.rows_checked);
    }

    #[test]
    fn corrupted_positions_are_flagged() {
        let (nl, mut p, fp, pdk) = setup();
        p.cell_pos[0] = crate::geom::Point::new(-1.0e6, -1.0e6);
        p.cell_pos[1] = fp.rram_periph().rect.center();
        let report = check_placement(&nl, &p, &fp, &pdk, false).unwrap();
        assert_eq!(report.count_of(DrcKind::OffDie), 1);
        assert_eq!(report.count_of(DrcKind::InBlockage), 1);
        assert!(!report.is_clean());
        assert_eq!(report.total, 2);
    }
}
