//! Static timing analysis: topological arrival propagation with a linear
//! cell-delay model and Elmore wire delays.
//!
//! Sources are primary inputs, flip-flop outputs (clock-to-Q) and macro
//! read ports (access latency). Endpoints are flip-flop D pins (setup),
//! macro write/address pins and primary outputs. Globally distributed
//! nets (constants, resets) are treated as ideal networks, as a signoff
//! tool would treat them after dedicated distribution synthesis.

use serde::{Deserialize, Serialize};

use m3d_netlist::{Driver, MacroKind, Netlist, Sink};
use m3d_tech::units::{Megahertz, Nanoseconds};
use m3d_tech::{Pdk, TechResult};

use crate::route::RoutingEstimate;

/// Margin required at macro input pins (address/write-data setup).
const MACRO_SETUP_NS: f64 = 1.0;

/// Load a driver sees on a globally distributed net (the first stage of
/// its dedicated distribution tree).
const GLOBAL_NET_DRIVER_LOAD: m3d_tech::units::Femtofarads =
    m3d_tech::units::Femtofarads::new(20.0);

/// One endpoint row of the report_timing-style table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointSlack {
    /// Endpoint description (flop D pin, macro input or primary output).
    pub endpoint: String,
    /// Arrival including the endpoint's setup requirement, in ns.
    pub arrival_ns: f64,
    /// Slack against the target clock, in ns (negative = violating).
    pub slack_ns: f64,
}

/// Result of a timing analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Worst endpoint arrival including setup (the minimum workable clock
    /// period).
    pub critical_path: Nanoseconds,
    /// Fastest clock the design closes at.
    pub achieved_clock: Megahertz,
    /// Target clock the analysis was run against.
    pub target_clock: Megahertz,
    /// Worst negative slack against the target (negative = violating).
    pub worst_slack: Nanoseconds,
    /// Number of violating endpoints at the target clock.
    pub violations: usize,
    /// Total timing endpoints.
    pub endpoints: usize,
    /// Instance names along the critical path (endpoint last, truncated).
    pub critical_cells: Vec<String>,
    /// Arrival time (ns) at each cell's output along the critical path,
    /// aligned with [`TimingReport::critical_cells`].
    pub critical_arrivals: Vec<f64>,
    /// The worst endpoints, most critical first (report_timing style).
    pub worst_endpoints: Vec<EndpointSlack>,
}

impl TimingReport {
    /// `true` when every endpoint meets the target clock.
    pub fn timing_met(&self) -> bool {
        self.violations == 0
    }
}

/// Runs static timing analysis on a placed-and-routed design.
///
/// # Errors
///
/// Returns technology errors when a cell is missing from the PDK
/// libraries.
///
/// # Panics
///
/// Panics when `routing` does not match `netlist` (different net counts).
pub fn analyze_timing(
    netlist: &Netlist,
    routing: &RoutingEstimate,
    pdk: &Pdk,
    target_clock: Megahertz,
) -> TechResult<TimingReport> {
    assert_eq!(
        routing.nets.len(),
        netlist.net_count(),
        "routing/netlist mismatch"
    );
    let ncells = netlist.cell_count();
    let nnets = netlist.net_count();

    // Arrival time per net; None = not yet resolved.
    let mut arrival: Vec<Option<f64>> = vec![None; nnets];
    // Predecessor cell per net, for critical-path reconstruction.
    let mut pred: Vec<Option<u32>> = vec![None; nnets];

    // Wire delay of a net as seen by its sinks (driver resistance is
    // accounted in the driving cell's delay).
    let wire_delay = |ni: usize| -> f64 {
        let rn = &routing.nets[ni];
        if rn.is_global {
            return 0.0;
        }
        (rn.wire_res * (rn.wire_cap * 0.5 + rn.pin_cap)).value()
    };

    // --- Seed sources ------------------------------------------------------
    let mut remaining_inputs: Vec<u32> = vec![0; ncells];
    for (ci, cell) in netlist.cells().iter().enumerate() {
        if cell.kind.is_sequential() {
            remaining_inputs[ci] = 0; // launched by the clock, not by D
        } else {
            remaining_inputs[ci] = cell.inputs.len() as u32;
        }
    }

    let mut ready: Vec<u32> = Vec::new();
    // Macro and PI driven nets resolve immediately.
    for (ni, net) in netlist.nets().iter().enumerate() {
        match net.driver {
            Some(Driver::PrimaryInput) => {
                arrival[ni] = Some(wire_delay(ni));
            }
            Some(Driver::Macro { id }) => {
                // Macro access paths (sense amplifiers, decoders) are
                // transistor-limited and scale with the process corner.
                let lat = match &netlist.macros()[id.0 as usize].kind {
                    MacroKind::Rram(r) => r.read_latency().value(),
                    MacroKind::Sram(s) => s.latency.value(),
                    // Opaque ingested blocks launch like primary inputs.
                    MacroKind::BlackBox { .. } => 0.0,
                } * pdk.timing_derate;
                arrival[ni] = Some(lat + wire_delay(ni));
            }
            _ => {}
        }
    }
    // Sequential cells launch at clk-to-Q.
    for (ci, cell) in netlist.cells().iter().enumerate() {
        if cell.kind.is_sequential() {
            ready.push(ci as u32);
            let _ = ci;
        }
    }

    // Decrement fanin counters for already-resolved nets.
    let dec_for_net = |ni: usize, remaining: &mut Vec<u32>, ready: &mut Vec<u32>| {
        for s in &netlist.nets()[ni].sinks {
            if let Sink::Cell { cell, .. } = *s {
                let c = &netlist.cells()[cell.0 as usize];
                if !c.kind.is_sequential() {
                    let r = &mut remaining[cell.0 as usize];
                    *r = r.saturating_sub(1);
                    if *r == 0 {
                        ready.push(cell.0);
                    }
                }
            }
        }
    };
    for ni in 0..nnets {
        if arrival[ni].is_some() {
            dec_for_net(ni, &mut remaining_inputs, &mut ready);
        }
    }

    // --- Topological propagation -------------------------------------------
    let mut processed = vec![false; ncells];
    while let Some(ci) = ready.pop() {
        let ci = ci as usize;
        if processed[ci] {
            continue;
        }
        processed[ci] = true;
        let cell = &netlist.cells()[ci];
        let lib = pdk.library(cell.tier)?;
        let lib_cell = lib.cell(cell.kind, cell.drive)?;

        let input_arrival = if cell.kind.is_sequential() {
            0.0 // launch edge
        } else {
            cell.inputs
                .iter()
                .map(|n| arrival[n.0 as usize].unwrap_or(0.0))
                .fold(0.0, f64::max)
        };
        for &out in &cell.outputs {
            let ni = out.0 as usize;
            // Globally distributed nets (constants, resets, broadcast
            // selects) receive a dedicated buffered distribution network,
            // like a clock tree: the driver sees only its first stage.
            let load = if routing.nets[ni].is_global {
                GLOBAL_NET_DRIVER_LOAD
            } else {
                routing.nets[ni].total_cap()
            };
            let d = lib_cell.delay(load).value();
            let a = input_arrival + d + wire_delay(ni);
            if arrival[ni].map_or(true, |prev| a > prev) {
                arrival[ni] = Some(a);
                pred[ni] = Some(ci as u32);
            }
            dec_for_net(ni, &mut remaining_inputs, &mut ready);
        }
    }

    // --- Endpoints -----------------------------------------------------------
    let period = target_clock.period().value();
    let mut worst = 0.0f64;
    let mut worst_net: Option<usize> = None;
    let mut endpoints = 0usize;
    let mut violations = 0usize;
    // Top-k endpoint table (report_timing style).
    const TOP_K: usize = 8;
    let mut top: Vec<EndpointSlack> = Vec::with_capacity(TOP_K + 1);
    let mut check = |required_extra: f64,
                     ni: usize,
                     endpoint: String,
                     arrival: &[Option<f64>],
                     worst: &mut f64,
                     worst_net: &mut Option<usize>,
                     endpoints: &mut usize,
                     violations: &mut usize| {
        let a = arrival[ni].unwrap_or(0.0) + required_extra;
        *endpoints += 1;
        if a > *worst {
            *worst = a;
            *worst_net = Some(ni);
        }
        if a > period {
            *violations += 1;
        }
        if top.len() < TOP_K || a > top.last().map_or(0.0, |e| e.arrival_ns) {
            top.push(EndpointSlack {
                endpoint,
                arrival_ns: a,
                slack_ns: period - a,
            });
            top.sort_by(|x, y| {
                y.arrival_ns
                    .partial_cmp(&x.arrival_ns)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            top.truncate(TOP_K);
        }
    };
    for (ci, cell) in netlist.cells().iter().enumerate() {
        if cell.kind.is_sequential() {
            let lib = pdk.library(cell.tier)?;
            let setup = lib
                .cell(cell.kind, cell.drive)?
                .setup
                .map_or(0.0, |s| s.value());
            for n in &cell.inputs {
                check(
                    setup,
                    n.0 as usize,
                    format!("{}/D", cell.name),
                    &arrival,
                    &mut worst,
                    &mut worst_net,
                    &mut endpoints,
                    &mut violations,
                );
            }
        }
        let _ = ci;
    }
    for m in netlist.macros() {
        for n in &m.receives {
            check(
                MACRO_SETUP_NS,
                n.0 as usize,
                m.name.clone(),
                &arrival,
                &mut worst,
                &mut worst_net,
                &mut endpoints,
                &mut violations,
            );
        }
    }
    for n in &netlist.primary_outputs {
        check(
            0.0,
            n.0 as usize,
            format!("PO {}", netlist.nets()[n.0 as usize].name),
            &arrival,
            &mut worst,
            &mut worst_net,
            &mut endpoints,
            &mut violations,
        );
    }

    // --- Critical path reconstruction ----------------------------------------
    let mut critical_cells = Vec::new();
    let mut critical_arrivals = Vec::new();
    let mut cursor = worst_net;
    while let Some(ni) = cursor {
        match pred[ni] {
            Some(ci) => {
                let cell = &netlist.cells()[ci as usize];
                critical_cells.push(cell.name.clone());
                critical_arrivals.push(arrival[ni].unwrap_or(0.0));
                if cell.kind.is_sequential() || critical_cells.len() >= 64 {
                    break;
                }
                cursor = cell
                    .inputs
                    .iter()
                    .max_by(|a, b| {
                        let aa = arrival[a.0 as usize].unwrap_or(0.0);
                        let ab = arrival[b.0 as usize].unwrap_or(0.0);
                        aa.partial_cmp(&ab).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|n| n.0 as usize);
            }
            None => break,
        }
    }
    // Paths launched directly from a memory macro (e.g. RRAM read →
    // capture register) have no predecessor cell; name the macro.
    if critical_cells.is_empty() {
        if let Some(ni) = worst_net {
            if let Some(m3d_netlist::Driver::Macro { id }) = netlist.nets()[ni].driver {
                critical_cells.push(netlist.macros()[id.0 as usize].name.clone());
                critical_arrivals.push(arrival[ni].unwrap_or(0.0));
            }
        }
    }
    critical_cells.reverse();
    critical_arrivals.reverse();

    let critical = Nanoseconds::new(worst.max(1e-3));
    Ok(TimingReport {
        critical_path: critical,
        achieved_clock: critical.as_frequency(),
        target_clock,
        worst_slack: Nanoseconds::new(period - worst),
        violations,
        endpoints,
        critical_cells,
        critical_arrivals,
        worst_endpoints: top,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::floorplan::Floorplan;
    use crate::place::{place, PlacerConfig};
    use crate::route::{estimate_routing, DEFAULT_DETOUR};
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig, SocConfig};
    use m3d_tech::Pdk;

    fn analyzed() -> (Netlist, TimingReport) {
        let cfg = SocConfig {
            cs: CsConfig {
                rows: 4,
                cols: 4,
                pe: PeConfig::default(),
                global_buffer_kb: 64,
                local_buffer_kb: 8,
            },
            ..SocConfig::baseline_2d()
        };
        let pdk = Pdk::baseline_2d_130nm();
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        let r = estimate_routing(&nl, &p, &pdk, DEFAULT_DETOUR).unwrap();
        let t = analyze_timing(&nl, &r, &pdk, pdk.default_clock).unwrap();
        (nl, t)
    }

    #[test]
    fn arrival_times_are_physical() {
        let (_, t) = analyzed();
        assert!(
            t.critical_path.value() > 1.0,
            "multiplier+adder chains take time"
        );
        assert!(
            t.critical_path.value() < 200.0,
            "path {} suspicious",
            t.critical_path
        );
        assert!(t.endpoints > 100);
        assert!(!t.critical_cells.is_empty());
    }

    #[test]
    fn slack_consistent_with_critical_path() {
        let (_, t) = analyzed();
        let period = t.target_clock.period().value();
        assert!((t.worst_slack.value() - (period - t.critical_path.value())).abs() < 1e-9);
        if t.worst_slack.value() >= 0.0 {
            assert!(t.timing_met());
        } else {
            assert!(!t.timing_met());
        }
    }

    #[test]
    fn achieved_clock_matches_critical_path() {
        let (_, t) = analyzed();
        let f = 1.0e3 / t.critical_path.value();
        assert!((t.achieved_clock.value() - f).abs() < 1e-9);
    }

    #[test]
    fn twenty_megahertz_closes_on_the_relaxed_target() {
        // The paper relaxes the target to 20 MHz for the 130 nm node; the
        // datapath must close comfortably.
        let (_, t) = analyzed();
        assert!(
            t.timing_met(),
            "critical path {} vs period {}",
            t.critical_path,
            t.target_clock.period()
        );
    }

    #[test]
    fn worst_endpoint_table_is_sorted_and_consistent() {
        let (_, t) = analyzed();
        assert!(!t.worst_endpoints.is_empty());
        assert!(t.worst_endpoints.len() <= 8);
        for w in t.worst_endpoints.windows(2) {
            assert!(w[0].arrival_ns >= w[1].arrival_ns, "table not sorted");
        }
        let head = &t.worst_endpoints[0];
        assert!((head.arrival_ns - t.critical_path.value()).abs() < 1e-9);
        let period = t.target_clock.period().value();
        assert!((head.slack_ns - (period - head.arrival_ns)).abs() < 1e-9);
        assert!(!head.endpoint.is_empty());
    }

    #[test]
    fn critical_path_ends_in_real_cells() {
        let (nl, t) = analyzed();
        for name in &t.critical_cells {
            assert!(
                nl.cells().iter().any(|c| &c.name == name)
                    || nl.macros().iter().any(|m| &m.name == name),
                "unknown instance {name} on critical path"
            );
        }
        assert_eq!(t.critical_cells.len(), t.critical_arrivals.len());
    }
}
