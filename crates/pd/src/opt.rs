//! Post-route optimisation: driver upsizing and buffer insertion to meet
//! timing and max-capacitance limits, as the paper's flow performs after
//! 3D routing ("post-route optimization is performed to meet power and
//! timing constraints").

use m3d_netlist::{Driver, Netlist, Sink};
use m3d_tech::stdcell::{CellKind, DriveStrength};
use m3d_tech::units::Megahertz;
use m3d_tech::{Pdk, Tier};

use std::collections::HashSet;

use crate::error::PdResult;
use crate::geom::Point;
use crate::observe::{round_counter, FlowSpan};
use crate::place::Placement;
use crate::route::{estimate_routing, reestimate_routing, RoutingEstimate};
use crate::sta::{analyze_timing, TimingReport};

/// Builds a `route` span from one routing estimate (net count, rounded
/// wirelength, and the paper's headline ILV-crossing counters).
fn route_span(routing: &RoutingEstimate) -> FlowSpan {
    let mut s = FlowSpan::new("route");
    s.counter("nets", routing.nets.len() as u64);
    s.counter(
        "wirelength_um",
        round_counter(routing.total_wirelength.value()),
    );
    s.counter("signal_ilvs", routing.signal_ilvs);
    s.counter("memory_cell_ilvs", routing.memory_cell_ilvs);
    s
}

/// Builds an `sta` span from one timing report (endpoint/violation
/// counts and the critical path in integer picoseconds).
fn sta_span(timing: &TimingReport) -> FlowSpan {
    let mut s = FlowSpan::new("sta");
    s.counter("endpoints", timing.endpoints as u64);
    s.counter("violations", timing.violations as u64);
    s.counter(
        "critical_path_ps",
        round_counter(timing.critical_path.value() * 1_000.0),
    );
    s.counter("timing_met", u64::from(timing.timing_met()));
    s
}

/// Optimisation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptConfig {
    /// Maximum optimisation rounds (route → STA → fix).
    pub max_rounds: usize,
    /// Driver delay (R_drive × C_load) above which the driver is upsized,
    /// in nanoseconds.
    pub upsize_threshold_ns: f64,
    /// Wire length above which a repeater is inserted, in microns.
    pub buffer_length_um: f64,
    /// Routing detour factor.
    pub detour: f64,
}

impl m3d_tech::StableHash for OptConfig {
    fn stable_hash(&self, h: &mut m3d_tech::StableHasher) {
        self.max_rounds.stable_hash(h);
        self.upsize_threshold_ns.stable_hash(h);
        self.buffer_length_um.stable_hash(h);
        self.detour.stable_hash(h);
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        Self {
            max_rounds: 3,
            upsize_threshold_ns: 0.8,
            buffer_length_um: 1500.0,
            detour: crate::route::DEFAULT_DETOUR,
        }
    }
}

/// What post-route optimisation did.
#[derive(Debug, Clone, PartialEq)]
pub struct OptOutcome {
    /// Rounds executed.
    pub rounds: usize,
    /// Drivers upsized to a stronger variant.
    pub upsized: usize,
    /// Repeater buffers inserted.
    pub buffers_inserted: usize,
    /// Routing estimate after the final round.
    pub routing: RoutingEstimate,
    /// Timing after the final round.
    pub timing: TimingReport,
}

fn net_center(netlist: &Netlist, placement: &Placement, ni: usize) -> Point {
    let net = &netlist.nets()[ni];
    let mut min = (f64::INFINITY, f64::INFINITY);
    let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    let mut count = 0usize;
    let mut incl = |p: Point| {
        min.0 = min.0.min(p.x.value());
        min.1 = min.1.min(p.y.value());
        max.0 = max.0.max(p.x.value());
        max.1 = max.1.max(p.y.value());
        count += 1;
    };
    match net.driver {
        Some(Driver::Cell { cell, .. }) => incl(placement.cell_pos[cell.0 as usize]),
        Some(Driver::Macro { id }) => incl(placement.macro_pos[id.0 as usize]),
        _ => {}
    }
    for s in &net.sinks {
        match *s {
            Sink::Cell { cell, .. } => incl(placement.cell_pos[cell.0 as usize]),
            Sink::Macro { id } => incl(placement.macro_pos[id.0 as usize]),
            Sink::PrimaryOutput => {}
        }
    }
    if count == 0 {
        Point::default()
    } else {
        Point::new((min.0 + max.0) / 2.0, (min.1 + max.1) / 2.0)
    }
}

/// Runs post-route optimisation, mutating the netlist (buffer insertion)
/// and placement (positions for the new buffers).
///
/// # Errors
///
/// Propagates routing/timing errors.
pub fn post_route_optimize(
    netlist: &mut Netlist,
    placement: &mut Placement,
    pdk: &Pdk,
    target_clock: Megahertz,
    config: &OptConfig,
) -> PdResult<OptOutcome> {
    post_route_optimize_traced(netlist, placement, pdk, target_clock, config).map(|(o, _)| o)
}

/// [`post_route_optimize`], additionally returning an `opt` [`FlowSpan`]:
/// the initial `route`/`sta` children, then one `round{N}` child per
/// executed round holding that round's fix counters and its re-route /
/// re-timing spans. Deterministic for a given netlist + placement.
///
/// # Errors
///
/// Same as [`post_route_optimize`].
pub fn post_route_optimize_traced(
    netlist: &mut Netlist,
    placement: &mut Placement,
    pdk: &Pdk,
    target_clock: Megahertz,
    config: &OptConfig,
) -> PdResult<(OptOutcome, FlowSpan)> {
    let mut upsized = 0usize;
    let mut buffers = 0usize;
    let mut rounds = 0usize;
    let mut routing = estimate_routing(netlist, placement, pdk, config.detour)?;
    let mut timing = analyze_timing(netlist, &routing, pdk, target_clock)?;
    let mut span = FlowSpan::new("opt");
    span.child(route_span(&routing));
    span.child(sta_span(&timing));

    for round in 0..config.max_rounds {
        rounds = round + 1;
        let mut changed = false;
        let upsized_before = upsized;
        let buffers_before = buffers;
        // Nets whose parasitics the round's fixes perturb: rewired nets
        // and every net loaded by an upsized cell's input pin. Only
        // these are re-routed below — the re-estimate is incremental
        // against the placement/netlist delta, bit-identical to a full
        // re-route.
        let mut dirty: Vec<usize> = Vec::new();
        let mut upsized_cells: HashSet<u32> = HashSet::new();

        // --- Pass 1: upsize weak drivers of heavily loaded nets ---------
        let mut to_upsize: Vec<u32> = Vec::new();
        for (ni, rn) in routing.nets.iter().enumerate() {
            if rn.is_global {
                continue;
            }
            if let Some(Driver::Cell { cell, .. }) = netlist.nets()[ni].driver {
                let c = &netlist.cells()[cell.0 as usize];
                let lib = pdk.library(c.tier)?;
                let lc = lib.cell(c.kind, c.drive)?;
                let drv_delay = (lc.drive_resistance * rn.total_cap()).value();
                if drv_delay > config.upsize_threshold_ns && lib.upsize(lc).is_some() {
                    to_upsize.push(cell.0);
                }
            }
        }
        to_upsize.sort_unstable();
        to_upsize.dedup();
        for ci in to_upsize {
            let (kind, drive, tier) = {
                let c = &netlist.cells()[ci as usize];
                (c.kind, c.drive, c.tier)
            };
            let lib = pdk.library(tier)?;
            if let Some(up) = lib.upsize(lib.cell(kind, drive)?) {
                netlist.cell_mut(m3d_netlist::CellId(ci))?.drive = up.drive;
                upsized += 1;
                changed = true;
                upsized_cells.insert(ci);
            }
        }
        if !upsized_cells.is_empty() {
            // A stronger drive variant presents a larger input pin, so
            // every net with an upsized cell among its sinks carries a
            // stale pin capacitance.
            for (ni, net) in netlist.nets().iter().enumerate() {
                if net.sinks.iter().any(
                    |s| matches!(*s, Sink::Cell { cell, .. } if upsized_cells.contains(&cell.0)),
                ) {
                    dirty.push(ni);
                }
            }
        }

        // --- Pass 2: repeaters on long nets ------------------------------
        let long_nets: Vec<usize> = routing
            .nets
            .iter()
            .enumerate()
            .filter(|(ni, rn)| {
                !rn.is_global
                    && rn.length.value() > config.buffer_length_um
                    && !netlist.nets()[*ni].sinks.is_empty()
                    && !matches!(
                        netlist.nets()[*ni].driver,
                        None | Some(Driver::PrimaryInput)
                    )
            })
            .map(|(ni, _)| ni)
            .collect();
        for ni in long_nets {
            let center = net_center(netlist, placement, ni);
            let from = m3d_netlist::NetId(ni as u32);
            let nb = netlist.add_net(format!("postopt_n{ni}"));
            netlist.rewire_sinks(from, nb)?;
            netlist.add_cell(
                format!("postopt/rep{ni}"),
                CellKind::Buf,
                DriveStrength::X8,
                Tier::SiCmos,
                &[from],
                &[nb],
            )?;
            placement.cell_pos.push(center);
            buffers += 1;
            changed = true;
            // The rewired source net changed topology; the new net is
            // appended past `routing.nets` and re-routed implicitly.
            dirty.push(ni);
        }

        dirty.sort_unstable();
        dirty.dedup();
        routing = reestimate_routing(netlist, placement, pdk, config.detour, &routing, &dirty)?;
        timing = analyze_timing(netlist, &routing, pdk, target_clock)?;
        let mut round_span = FlowSpan::new(format!("round{round}"));
        round_span.counter("upsized", (upsized - upsized_before) as u64);
        round_span.counter("buffers_inserted", (buffers - buffers_before) as u64);
        round_span.child(route_span(&routing));
        round_span.child(sta_span(&timing));
        span.child(round_span);
        if !changed || timing.timing_met() {
            break;
        }
    }
    span.counter("rounds", rounds as u64);
    span.counter("upsized", upsized as u64);
    span.counter("buffers_inserted", buffers as u64);

    Ok((
        OptOutcome {
            rounds,
            upsized,
            buffers_inserted: buffers,
            routing,
            timing,
        },
        span,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::floorplan::Floorplan;
    use crate::place::{place, PlacerConfig};
    use m3d_netlist::{accelerator_soc, CsConfig, PeConfig, SocConfig};

    fn setup() -> (Netlist, Placement, Pdk, Megahertz) {
        let cfg = SocConfig {
            cs: CsConfig {
                rows: 4,
                cols: 4,
                pe: PeConfig::default(),
                global_buffer_kb: 64,
                local_buffer_kb: 8,
            },
            ..SocConfig::baseline_2d()
        };
        let pdk = Pdk::baseline_2d_130nm();
        let mut nl = Netlist::new("soc");
        accelerator_soc(&mut nl, &cfg).unwrap();
        let fp = Floorplan::plan(&pdk, &cfg, &nl, None).unwrap();
        let cl = Clustering::build(&nl, &pdk).unwrap();
        let p = place(&cl, &fp, &PlacerConfig::quick()).unwrap();
        let clock = pdk.default_clock;
        (nl, p, pdk, clock)
    }

    #[test]
    fn optimization_keeps_netlist_clean() {
        let (mut nl, mut p, pdk, clock) = setup();
        let before = nl.cell_count();
        let out = post_route_optimize(&mut nl, &mut p, &pdk, clock, &OptConfig::default()).unwrap();
        assert!(
            nl.lint().is_empty(),
            "{:?}",
            &nl.lint()[..nl.lint().len().min(3)]
        );
        assert_eq!(nl.cell_count(), before + out.buffers_inserted);
        assert_eq!(p.cell_pos.len(), nl.cell_count());
        assert!(out.rounds >= 1);
    }

    #[test]
    fn optimization_helps_or_maintains_timing() {
        let (mut nl, mut p, pdk, clock) = setup();
        let r0 = estimate_routing(&nl, &p, &pdk, crate::route::DEFAULT_DETOUR).unwrap();
        let t0 = analyze_timing(&nl, &r0, &pdk, clock).unwrap();
        let out = post_route_optimize(&mut nl, &mut p, &pdk, clock, &OptConfig::default()).unwrap();
        assert!(
            out.timing.critical_path.value() <= t0.critical_path.value() * 1.001,
            "opt {} vs base {}",
            out.timing.critical_path,
            t0.critical_path
        );
    }

    #[test]
    fn traced_optimisation_records_rounds_and_ilv_counters() {
        let (mut nl, mut p, pdk, clock) = setup();
        let (out, span) =
            post_route_optimize_traced(&mut nl, &mut p, &pdk, clock, &OptConfig::default())
                .unwrap();
        assert_eq!(span.name, "opt");
        assert_eq!(span.counter_value("rounds"), Some(out.rounds as u64));
        assert_eq!(span.counter_value("upsized"), Some(out.upsized as u64));
        // Initial route + sta, then route + sta inside each round span.
        assert_eq!(span.children.len(), 2 + out.rounds);
        // The final round's spans reflect the returned routing/timing.
        let last = span.find(&format!("round{}", out.rounds - 1)).unwrap();
        let route = last.find("route").unwrap();
        assert_eq!(
            route.counter_value("nets"),
            Some(out.routing.nets.len() as u64)
        );
        assert_eq!(
            route.counter_value("signal_ilvs"),
            Some(out.routing.signal_ilvs)
        );
        let sta = last.find("sta").unwrap();
        assert_eq!(
            sta.counter_value("endpoints"),
            Some(out.timing.endpoints as u64)
        );
        assert_eq!(
            sta.counter_value("timing_met"),
            Some(u64::from(out.timing.timing_met()))
        );
    }

    #[test]
    fn incremental_reroute_is_bit_identical_to_full_reroute() {
        let (mut nl, mut p, pdk, clock) = setup();
        // Aggressive thresholds force both fix kinds, so the dirty-set
        // bookkeeping is exercised on upsizes, rewires and new nets.
        let cfg = OptConfig {
            buffer_length_um: 100.0,
            upsize_threshold_ns: 0.05,
            ..OptConfig::default()
        };
        let out = post_route_optimize(&mut nl, &mut p, &pdk, clock, &cfg).unwrap();
        assert!(out.buffers_inserted > 0, "test must insert buffers");
        let full = estimate_routing(&nl, &p, &pdk, cfg.detour).unwrap();
        assert_eq!(
            out.routing, full,
            "incrementally patched estimate must equal a from-scratch one bit-for-bit"
        );
    }

    #[test]
    fn aggressive_thresholds_insert_buffers() {
        let (mut nl, mut p, pdk, clock) = setup();
        let cfg = OptConfig {
            buffer_length_um: 100.0,
            max_rounds: 1,
            ..OptConfig::default()
        };
        let out = post_route_optimize(&mut nl, &mut p, &pdk, clock, &cfg).unwrap();
        assert!(out.buffers_inserted > 0);
        assert!(nl.lint().is_empty());
    }
}
