//! Flow instrumentation: deterministic sub-spans the RTL-to-GDS flow
//! emits per phase and per optimisation iteration.
//!
//! The pd crate sits *below* the experiment engine, so it cannot use
//! `m3d_core::obs::SpanNode` directly. Instead the flow reports into a
//! crate-local [`FlowSpan`] tree through a [`FlowObserver`] hook; the
//! engine's flow cache converts the tree into engine spans and attaches
//! it under the `pd-flow` stage span, which is what `--trace-json`
//! renders. Every counter here is an integer derived from the flow's
//! seeded, single-threaded math (iteration counts, rounded HPWL in µm,
//! ILV crossings, picosecond critical paths), so a given
//! [`crate::FlowConfig`] always produces a byte-identical tree —
//! wall-clock time never enters.

use serde::{Deserialize, Serialize};

/// One instrumented unit of flow work: a phase (`place`, `route`,
/// `cts`, `sta`, …), one annealing temperature step, or one post-route
/// optimisation round.
///
/// Serialisable so recorded spans can ride the on-disk artifact store:
/// a warm-started flow replays the seeding run's `place`/`legalize`
/// spans verbatim, keeping traces byte-identical to a cold run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowSpan {
    /// Span name (phase or iteration label).
    pub name: String,
    /// Named integer counters in insertion order (iteration counts,
    /// HPWL, overflow, ILV crossings, …).
    pub counters: Vec<(String, u64)>,
    /// Nested spans in execution order.
    pub children: Vec<FlowSpan>,
}

impl FlowSpan {
    /// A fresh leaf span.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Appends one named counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Appends a child span.
    pub fn child(&mut self, span: FlowSpan) {
        self.children.push(span);
    }

    /// Looks up a counter on this span by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&FlowSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total spans in this subtree (including `self`).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FlowSpan::span_count)
            .sum::<usize>()
    }
}

/// Rounds a non-negative physical quantity (µm, µW, ps, …) to the
/// nearest integer counter value. Deterministic for deterministic
/// inputs; negatives clamp to 0.
pub fn round_counter(value: f64) -> u64 {
    if value.is_finite() && value > 0.0 {
        value.round() as u64
    } else {
        0
    }
}

/// The hook the flow phases report spans into.
///
/// A disabled observer drops every span unseen, so the untraced
/// [`crate::Rtl2GdsFlow::run`] path pays nothing beyond the integer
/// bookkeeping the phases already do.
#[derive(Debug, Default)]
pub struct FlowObserver {
    enabled: bool,
    phases: Vec<FlowSpan>,
}

impl FlowObserver {
    /// An observer that records every phase span.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            phases: Vec::new(),
        }
    }

    /// An observer that drops everything (the untraced path).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether phases should bother building spans at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one completed phase span (no-op when disabled).
    pub fn record(&mut self, span: FlowSpan) {
        if self.enabled {
            self.phases.push(span);
        }
    }

    /// Consumes the observer into a root span named `name` holding the
    /// recorded phases in execution order.
    pub fn finish(self, name: impl Into<String>) -> FlowSpan {
        FlowSpan {
            name: name.into(),
            counters: Vec::new(),
            children: self.phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_count_and_look_up() {
        let mut root = FlowSpan::new("flow");
        let mut place = FlowSpan::new("place");
        place.counter("steps", 6);
        let mut step = FlowSpan::new("step0");
        step.counter("moves", 120);
        step.counter("accepted", 48);
        place.child(step);
        root.child(place);
        root.child(FlowSpan::new("route"));
        assert_eq!(root.span_count(), 4);
        assert_eq!(root.find("place").unwrap().counter_value("steps"), Some(6));
        assert_eq!(
            root.find("step0").unwrap().counter_value("accepted"),
            Some(48)
        );
        assert_eq!(root.find("step0").unwrap().counter_value("missing"), None);
        assert!(root.find("cts").is_none());
    }

    #[test]
    fn disabled_observer_drops_spans() {
        let mut off = FlowObserver::disabled();
        assert!(!off.is_enabled());
        off.record(FlowSpan::new("place"));
        assert!(off.finish("flow").children.is_empty());

        let mut on = FlowObserver::enabled();
        assert!(on.is_enabled());
        on.record(FlowSpan::new("place"));
        on.record(FlowSpan::new("route"));
        let root = on.finish("flow");
        assert_eq!(root.name, "flow");
        assert_eq!(
            root.children
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            ["place", "route"]
        );
    }

    #[test]
    fn rounding_is_clamped_and_finite() {
        assert_eq!(round_counter(1234.49), 1234);
        assert_eq!(round_counter(1234.5), 1235);
        assert_eq!(round_counter(-3.0), 0);
        assert_eq!(round_counter(f64::NAN), 0);
        assert_eq!(round_counter(f64::INFINITY), 0);
    }
}
