//! Planar geometry primitives used by floorplanning and placement.
//!
//! Coordinates are in microns, stored as `f64` inside the [`Microns`]
//! newtype from `m3d-tech`.

use serde::{Deserialize, Serialize};

use m3d_tech::units::{Microns, SquareMicrons};

/// A point on the die, in microns.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Microns,
    /// Vertical coordinate.
    pub y: Microns,
}

impl Point {
    /// Creates a point from raw micron values.
    pub fn new(x: f64, y: f64) -> Self {
        Self {
            x: Microns::new(x),
            y: Microns::new(y),
        }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Point) -> Microns {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// An axis-aligned rectangle `[x0, x1) × [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x0: Microns,
    /// Bottom edge.
    pub y0: Microns,
    /// Right edge.
    pub x1: Microns,
    /// Top edge.
    pub y1: Microns,
}

impl m3d_tech::StableHash for Rect {
    fn stable_hash(&self, h: &mut m3d_tech::StableHasher) {
        self.x0.stable_hash(h);
        self.y0.stable_hash(h);
        self.x1.stable_hash(h);
        self.y1.stable_hash(h);
    }
}

impl Rect {
    /// Creates a rectangle from raw micron corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the rectangle is inverted.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        debug_assert!(x1 >= x0 && y1 >= y0, "inverted rectangle");
        Self {
            x0: Microns::new(x0),
            y0: Microns::new(y0),
            x1: Microns::new(x1),
            y1: Microns::new(y1),
        }
    }

    /// A rectangle at the origin with the given width and height.
    pub fn with_size(width: Microns, height: Microns) -> Self {
        Self {
            x0: Microns::ZERO,
            y0: Microns::ZERO,
            x1: width,
            y1: height,
        }
    }

    /// Width of the rectangle.
    pub fn width(&self) -> Microns {
        self.x1 - self.x0
    }

    /// Height of the rectangle.
    pub fn height(&self) -> Microns {
        self.y1 - self.y0
    }

    /// Area of the rectangle.
    pub fn area(&self) -> SquareMicrons {
        self.width() * self.height()
    }

    /// Geometric centre.
    pub fn center(&self) -> Point {
        Point {
            x: (self.x0 + self.x1) / 2.0,
            y: (self.y0 + self.y1) / 2.0,
        }
    }

    /// `true` when `p` lies inside (left/bottom inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x < self.x1 && p.y >= self.y0 && p.y < self.y1
    }

    /// `true` when `other` lies entirely inside `self` (edges may touch).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0 && other.x1 <= self.x1 && other.y0 >= self.y0 && other.y1 <= self.y1
    }

    /// `true` when the interiors of the rectangles overlap.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Intersection of two rectangles, if non-empty.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        (x1 > x0 && y1 > y0).then_some(Rect { x0, y0, x1, y1 })
    }

    /// Returns this rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: Microns, dy: Microns) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Returns this rectangle shrunk by `margin` on every side (empty
    /// rectangles collapse to their centre).
    pub fn shrunk(&self, margin: Microns) -> Rect {
        let mut r = Rect {
            x0: self.x0 + margin,
            y0: self.y0 + margin,
            x1: self.x1 - margin,
            y1: self.y1 - margin,
        };
        if r.x1 < r.x0 {
            let c = (self.x0 + self.x1) / 2.0;
            r.x0 = c;
            r.x1 = c;
        }
        if r.y1 < r.y0 {
            let c = (self.y0 + self.y1) / 2.0;
            r.y0 = c;
            r.y1 = c;
        }
        r
    }
}

/// Bounding box accumulator for half-perimeter wirelength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    count: usize,
}

impl BoundingBox {
    /// An empty bounding box.
    pub fn new() -> Self {
        Self {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Expands the box to include `p`.
    pub fn include(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x.value());
        self.min_y = self.min_y.min(p.y.value());
        self.max_x = self.max_x.max(p.x.value());
        self.max_y = self.max_y.max(p.y.value());
        self.count += 1;
    }

    /// Number of included points.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no points were included.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Half-perimeter wirelength of the box (zero for < 2 points).
    pub fn hpwl(&self) -> Microns {
        if self.count < 2 {
            return Microns::ZERO;
        }
        Microns::new((self.max_x - self.min_x) + (self.max_y - self.min_y))
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_basics() {
        let r = Rect::new(0.0, 0.0, 10.0, 5.0);
        assert_eq!(r.width(), Microns::new(10.0));
        assert_eq!(r.height(), Microns::new(5.0));
        assert_eq!(r.area(), SquareMicrons::new(50.0));
        let c = r.center();
        assert_eq!(c, Point::new(5.0, 2.5));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(!r.contains(Point::new(10.0, 0.0)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        let c = Rect::new(10.0, 0.0, 20.0, 10.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching edges do not overlap");
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(5.0, 5.0, 10.0, 10.0));
        assert!(a.intersection(&c).is_none());
        assert!(a.contains_rect(&Rect::new(1.0, 1.0, 9.0, 9.0)));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn translate_and_shrink() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        let t = r.translated(Microns::new(1.0), Microns::new(2.0));
        assert_eq!(t, Rect::new(1.0, 2.0, 5.0, 6.0));
        let s = r.shrunk(Microns::new(1.0));
        assert_eq!(s, Rect::new(1.0, 1.0, 3.0, 3.0));
        let collapsed = r.shrunk(Microns::new(3.0));
        assert_eq!(collapsed.width(), Microns::ZERO);
    }

    #[test]
    fn manhattan_distance() {
        let d = Point::new(0.0, 0.0).manhattan(Point::new(3.0, 4.0));
        assert_eq!(d, Microns::new(7.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_rect() -> impl Strategy<Value = Rect> {
            (0.0..1e4_f64, 0.0..1e4_f64, 0.0..1e3_f64, 0.0..1e3_f64)
                .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
        }

        proptest! {
            #[test]
            fn intersection_is_inside_both(a in arb_rect(), b in arb_rect()) {
                if let Some(i) = a.intersection(&b) {
                    prop_assert!(a.contains_rect(&i));
                    prop_assert!(b.contains_rect(&i));
                    prop_assert!(i.area().value() <= a.area().value() + 1e-6);
                    prop_assert!(i.area().value() <= b.area().value() + 1e-6);
                }
            }

            #[test]
            fn overlap_is_symmetric_and_matches_intersection(a in arb_rect(), b in arb_rect()) {
                prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
                prop_assert_eq!(a.overlaps(&b), a.intersection(&b).is_some());
            }

            #[test]
            fn containment_implies_full_intersection(a in arb_rect()) {
                let inner = a.shrunk(Microns::new(1.0));
                prop_assert!(a.contains_rect(&inner));
                if inner.area().value() > 0.0 {
                    let i = a.intersection(&inner).unwrap();
                    prop_assert!((i.area().value() - inner.area().value()).abs() < 1e-6);
                }
            }

            #[test]
            fn translation_preserves_area(a in arb_rect(), dx in -1e3..1e3_f64, dy in -1e3..1e3_f64) {
                let t = a.translated(Microns::new(dx), Microns::new(dy));
                prop_assert!((t.area().value() - a.area().value()).abs() < 1e-6);
                prop_assert!((t.center().x.value() - a.center().x.value() - dx).abs() < 1e-9);
            }

            #[test]
            fn hpwl_upper_bounds_pairwise_manhattan(
                pts in proptest::collection::vec((0.0..1e4_f64, 0.0..1e4_f64), 2..20)
            ) {
                let mut bb = BoundingBox::new();
                for &(x, y) in &pts {
                    bb.include(Point::new(x, y));
                }
                // HPWL ≥ the Manhattan span between any two points / 1,
                // and ≥ the span between the two extremes.
                for w in pts.windows(2) {
                    let d = Point::new(w[0].0, w[0].1).manhattan(Point::new(w[1].0, w[1].1));
                    prop_assert!(bb.hpwl().value() + 1e-9 >= d.value() * 0.0); // sanity
                }
                let max_d = pts
                    .iter()
                    .flat_map(|&p| pts.iter().map(move |&q| {
                        Point::new(p.0, p.1).manhattan(Point::new(q.0, q.1)).value()
                    }))
                    .fold(0.0f64, f64::max);
                prop_assert!(bb.hpwl().value() + 1e-9 >= max_d);
            }

            #[test]
            fn shrink_never_grows(a in arb_rect(), m in 0.0..1e3_f64) {
                let s = a.shrunk(Microns::new(m));
                prop_assert!(s.area().value() <= a.area().value() + 1e-9);
                prop_assert!(s.width().value() >= -1e-9);
                prop_assert!(s.height().value() >= -1e-9);
            }
        }
    }

    #[test]
    fn hpwl_accumulation() {
        let mut bb = BoundingBox::new();
        assert!(bb.is_empty());
        assert_eq!(bb.hpwl(), Microns::ZERO);
        bb.include(Point::new(0.0, 0.0));
        assert_eq!(bb.hpwl(), Microns::ZERO, "single pin has no wire");
        bb.include(Point::new(3.0, 4.0));
        bb.include(Point::new(1.0, 1.0));
        assert_eq!(bb.hpwl(), Microns::new(7.0));
        assert_eq!(bb.len(), 3);
    }
}
