//! Property tests of the NDJSON wire protocol: serialised lines parse
//! back to the same value, and the request content key is invariant
//! under JSON object field order.

use m3d_core::obs::TraceContext;
use m3d_core::ErrorCode;
use m3d_serve::protocol::{canonical, key_hex, Request, Response};
use proptest::prelude::*;
use serde::Value;

/// A strategy over JSON scalars that survive the wire byte-exactly.
///
/// Two deliberate exclusions mirror the serialiser's number model:
/// non-finite floats (serialised as `null`) and non-negative `I64`s
/// (re-parsed as `U64` — the parser prefers the unsigned reading).
fn scalar() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        Just(Value::Bool(false)),
        Just(Value::Bool(true)),
        (0u64..u64::MAX).prop_map(Value::U64),
        (i64::MIN..0i64).prop_map(Value::I64),
        (-1.0e9..1.0e9_f64).prop_map(Value::F64),
        // Integral-valued floats exercise the ".0" suffix that keeps
        // them floats on re-parse.
        (-1_000_000i64..1_000_000).prop_map(|n| Value::F64(n as f64)),
        (0u64..10_000).prop_map(|n| Value::Str(format!("s{n}"))),
        Just(Value::Str(String::new())),
        Just(Value::Str(
            "quotes \" and \\ and\nnewlines\tand \u{3b1}\u{3b2}".to_owned()
        )),
    ]
    .boxed()
}

/// A JSON tree up to `depth` levels of nesting. Object keys are made
/// unique by position so canonicalisation is a permutation, never a
/// tie-break between duplicates.
fn tree(depth: u32) -> BoxedStrategy<Value> {
    if depth == 0 {
        return scalar();
    }
    let inner = tree(depth - 1);
    prop_oneof![
        scalar(),
        proptest::collection::vec(tree(depth - 1), 0..4).prop_map(Value::Array),
        proptest::collection::vec(inner, 0..4).prop_map(|items| {
            Value::Object(
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (format!("k{i}"), v))
                    .collect(),
            )
        }),
    ]
    .boxed()
}

/// Parameter trees as requests carry them: an object or nothing.
fn params() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        tree(2).prop_map(|v| Value::Object(vec![("p".to_owned(), v)])),
        proptest::collection::vec(tree(1), 0..5).prop_map(|items| {
            Value::Object(
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (format!("arg{i}"), v))
                    .collect(),
            )
        }),
    ]
    .boxed()
}

fn request() -> BoxedStrategy<Request> {
    (0u64..u64::MAX, 0u64..50, 0u64..3, params(), 0u64..1_000_000)
        .prop_map(|(id, case_n, quick_n, params, t)| Request {
            id,
            case: format!("case_{case_n}"),
            quick: quick_n != 0,
            params,
            timeout_ms: if t % 3 == 0 { None } else { Some(t) },
            replica: if t % 5 == 0 { Some(t % 7) } else { None },
            trace: t % 2 == 0,
            trace_ctx: if t % 4 == 0 {
                Some(TraceContext::root("case", t, id).child("attempt:0"))
            } else {
                None
            },
        })
        .boxed()
}

/// Recursively reverses object field order — a key-preserving
/// permutation the content key must not observe.
fn shuffled(v: &Value) -> Value {
    match v {
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .rev()
                .map(|(k, x)| (k.clone(), shuffled(x)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(shuffled).collect()),
        other => other.clone(),
    }
}

/// Flips one aspect of a tree, guaranteed to change its canonical form.
fn perturbed(v: &Value) -> Value {
    match v {
        Value::Object(fields) => {
            let mut out = fields.clone();
            out.push(("zz_extra".to_owned(), Value::Bool(true)));
            Value::Object(out)
        }
        other => Value::Array(vec![other.clone()]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_lines_round_trip(req in request()) {
        let line = req.to_line();
        let back = Request::parse(&line).expect("own line parses");
        prop_assert_eq!(&back, &req);
        // And the line itself is stable: re-serialising the parse
        // reproduces it byte for byte.
        prop_assert_eq!(back.to_line(), line);
    }

    #[test]
    fn ok_responses_round_trip(id in 0u64..u64::MAX, result in tree(2), flags in 0u64..8) {
        let trace = (flags & 4 != 0).then(|| {
            let ctx = TraceContext::root("pd_flow", id, id);
            Value::Object(vec![
                ("trace_id".to_owned(), Value::Str(ctx.trace_id_hex())),
                ("root".to_owned(), Value::Object(vec![
                    ("name".to_owned(), Value::Str("gateway".to_owned())),
                ])),
            ])
        });
        let resp = Response::Ok {
            id,
            case: "pd_flow".to_owned(),
            key: key_hex(id.rotate_left(17)),
            cached: flags & 1 != 0,
            coalesced: flags & 2 != 0,
            result,
            trace,
        };
        let back = Response::parse(&resp.to_line()).expect("own line parses");
        prop_assert_eq!(back.status(), 200);
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn err_responses_round_trip(
        id in 0u64..u64::MAX,
        code_idx in 0usize..ErrorCode::ALL.len(),
        retry in 0u64..10_000,
    ) {
        let code = ErrorCode::ALL[code_idx];
        let resp = Response::Err {
            id,
            code,
            error: format!("failure {id}"),
            retry_after_ms: if code == ErrorCode::Overloaded { Some(retry) } else { None },
        };
        let line = resp.to_line();
        // The wire carries both the symbolic code and its numeric status.
        prop_assert!(line.contains(&format!("\"code\":\"{}\"", code.wire_name())));
        prop_assert!(line.contains(&format!("\"status\":{}", code.status())));
        let back = Response::parse(&line).expect("own line parses");
        prop_assert_eq!(back.status(), code.status());
        prop_assert_eq!(back.error_code(), Some(code));
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn key_is_invariant_under_field_order(p in params()) {
        let a = Request::new(1, "pd_flow", p.clone());
        let mut b = Request::new(999, "pd_flow", shuffled(&p));
        b.timeout_ms = Some(5);
        b.replica = Some(1);
        prop_assert_eq!(a.key(), b.key(), "delivery fields and field order must not matter");
        prop_assert_eq!(canonical(&a.params), canonical(&b.params));
    }

    #[test]
    fn key_tracks_content(p in params()) {
        let a = Request::new(1, "pd_flow", p.clone());
        let b = Request::new(1, "pd_flow", perturbed(&p));
        prop_assert!(a.key() != b.key(), "changed params must change the key");
        let mut c = Request::new(1, "pd_flow", p.clone());
        c.quick = false;
        prop_assert!(a.key() != c.key(), "quick participates in the key");
        let d = Request::new(1, "tier_sweep", p);
        prop_assert!(a.key() != d.key(), "the case name participates in the key");
    }

    #[test]
    fn key_survives_the_wire(p in params()) {
        let req = Request::new(3, "capacity_sweep", p);
        let back = Request::parse(&req.to_line()).expect("parses");
        prop_assert_eq!(req.key(), back.key());
    }
}
