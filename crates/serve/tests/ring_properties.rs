//! Property tests of the fleet routing ring: routing is a pure
//! deterministic function of (key, fleet size), growing the fleet only
//! moves keys *onto* the new replica, shrinking it only moves the
//! removed replica's keys, and the moved fraction stays near 1/N.

use m3d_serve::fleet::{Ring, DEFAULT_VNODES};
use proptest::prelude::*;

/// A spread-out key stream from a compact seed (the golden-ratio
/// multiplier walks the whole 64-bit space evenly).
fn keys(seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (seed ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding replica N to a fleet of N: every key either stays put or
    /// moves to the *new* replica — no key shuffles between survivors.
    #[test]
    fn growth_moves_keys_only_onto_the_new_replica(
        replicas in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let before = Ring::new(replicas, DEFAULT_VNODES);
        let after = Ring::new(replicas + 1, DEFAULT_VNODES);
        for key in keys(seed, 256) {
            let from = before.route(key).unwrap();
            let to = after.route(key).unwrap();
            if from != to {
                prop_assert_eq!(
                    to, replicas,
                    "key {} moved {} -> {} instead of onto the new replica", key, from, to
                );
            }
        }
    }

    /// The fraction of keys the growth moves is about 1/(N+1) — the
    /// consistent-hashing guarantee that makes fleet resizes cheap.
    /// (A modulo router would move ~N/(N+1) of them.)
    #[test]
    fn growth_moves_about_one_nth_of_keys(
        replicas in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let before = Ring::new(replicas, DEFAULT_VNODES);
        let after = Ring::new(replicas + 1, DEFAULT_VNODES);
        let sample = keys(seed, 2_000);
        let moved = sample
            .iter()
            .filter(|&&k| before.route(k) != after.route(k))
            .count();
        let expected = sample.len() / (replicas + 1);
        // Generous bound: vnode placement is uneven, but nowhere near
        // the 3x that would indicate a broken ring.
        prop_assert!(
            moved <= expected * 3 + 32,
            "{} replicas: moved {} of {} keys (expected ~{})",
            replicas, moved, sample.len(), expected
        );
        prop_assert!(moved > 0, "a new replica must receive some keys");
    }

    /// Marking a replica ineligible moves exactly its keys (onto
    /// survivors), and recovery restores the original routing — the
    /// passive-failover / snap-back contract.
    #[test]
    fn failover_touches_only_the_lost_replicas_keys(
        replicas in 2usize..8,
        down in 0usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let down = down % replicas;
        let ring = Ring::new(replicas, DEFAULT_VNODES);
        let all = vec![true; replicas];
        let mut degraded = all.clone();
        degraded[down] = false;
        for key in keys(seed, 256) {
            let healthy = ring.route_available(key, &all).unwrap();
            prop_assert_eq!(healthy, ring.route(key).unwrap());
            let failed_over = ring.route_available(key, &degraded).unwrap();
            prop_assert!(failed_over != down, "a down replica must receive nothing");
            if healthy != down {
                prop_assert_eq!(
                    failed_over, healthy,
                    "keys of surviving replicas must not move during failover"
                );
            }
            // Snap-back: recovery restores the original owner.
            prop_assert_eq!(ring.route_available(key, &all).unwrap(), healthy);
        }
    }

    /// The ring is a pure function: concurrent threads (the `M3D_JOBS`
    /// analogue — routing must not depend on which thread asks) and
    /// freshly rebuilt rings agree on every route.
    #[test]
    fn routing_is_identical_across_threads_and_rebuilds(
        replicas in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let sample = keys(seed, 512);
        let reference: Vec<usize> = {
            let ring = Ring::new(replicas, DEFAULT_VNODES);
            sample.iter().map(|&k| ring.route(k).unwrap()).collect()
        };
        let from_threads: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let sample = &sample;
                    s.spawn(move || {
                        let ring = Ring::new(replicas, DEFAULT_VNODES);
                        sample.iter().map(|&k| ring.route(k).unwrap()).collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for routes in from_threads {
            prop_assert_eq!(&routes, &reference);
        }
    }
}
