//! In-process loopback tests: a real server on an ephemeral port, real
//! TCP clients, the full dispatch → queue → worker → cache path.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::Duration;

use m3d_core::ErrorCode;
use m3d_serve::protocol::{Request, Response};
use m3d_serve::{serve, Handle, ServerConfig};
use serde::Value;

/// One persistent client connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &Handle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Self {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn round_trip_line(&mut self, line: &str) -> Response {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("receive");
        Response::parse(reply.trim()).expect("valid response line")
    }

    fn round_trip(&mut self, req: &Request) -> Response {
        self.round_trip_line(&req.to_line())
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn start(workers: usize, queue_depth: usize) -> Handle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth,
        default_timeout_ms: 60_000,
        // Scrape limiting off: several tests hammer `metrics` in a loop.
        scrape_min_interval_ms: 0,
    })
    .expect("server starts")
}

fn result_bytes(resp: &Response) -> String {
    match resp {
        Response::Ok { result, .. } => serde_json::to_string(result).expect("serialises"),
        Response::Err { code, error, .. } => panic!("expected OK, got {code}: {error}"),
    }
}

fn flags(resp: &Response) -> (bool, bool) {
    match resp {
        Response::Ok {
            cached, coalesced, ..
        } => (*cached, *coalesced),
        Response::Err { code, error, .. } => panic!("expected OK, got {code}: {error}"),
    }
}

fn stats(handle: &Handle) -> Value {
    match Client::connect(handle).round_trip_line(r#"{"case":"stats"}"#) {
        Response::Ok { result, .. } => result,
        other => panic!("stats failed: {other:?}"),
    }
}

#[test]
fn concurrent_identical_requests_execute_one_flow() {
    let handle = start(4, 32);
    let n = 8;
    let gate = Barrier::new(n);
    let req = Request::new(1, "pd_flow", obj(vec![("n_cs", Value::U64(2))]));
    let responses: Vec<Response> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let (handle, req, gate) = (&handle, &req, &gate);
                s.spawn(move || {
                    let mut client = Client::connect(handle);
                    gate.wait();
                    client.round_trip(req)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let payloads: Vec<String> = responses.iter().map(result_bytes).collect();
    assert!(
        payloads.iter().all(|p| p == &payloads[0]),
        "identical keys must yield byte-identical payloads"
    );
    let executed = responses
        .iter()
        .filter(|r| flags(r) == (false, false))
        .count();
    assert_eq!(executed, 1, "exactly one request computes, the rest reuse");

    // The decisive check: the shared FlowCache saw exactly one miss —
    // one flow execution for 8 concurrent identical requests.
    let s = stats(&handle);
    assert_eq!(
        s.get("flow_cache").unwrap().get("misses").unwrap(),
        &Value::U64(1)
    );

    handle.shutdown();
    handle.wait();
}

#[test]
fn distinct_requests_compute_and_repeats_hit_the_cache() {
    let handle = start(2, 16);
    let mut client = Client::connect(&handle);
    let a = Request::new(
        1,
        "sensitivity",
        obj(vec![("samples", Value::U64(40)), ("seed", Value::U64(1))]),
    );
    let b = Request::new(
        2,
        "sensitivity",
        obj(vec![("samples", Value::U64(40)), ("seed", Value::U64(2))]),
    );
    let ra = client.round_trip(&a);
    let rb = client.round_trip(&b);
    assert_eq!(flags(&ra), (false, false));
    assert_eq!(flags(&rb), (false, false), "distinct keys never coalesce");
    assert_ne!(result_bytes(&ra), result_bytes(&rb));

    // Same key again — from a different connection, with fields in a
    // different order — replays from the response cache.
    let mut other = Client::connect(&handle);
    let shuffled = r#"{"params":{"seed":1,"samples":40},"case":"sensitivity","id":9}"#;
    let again = other.round_trip_line(shuffled);
    assert_eq!(flags(&again).0, true, "repeat must be a cache hit");
    assert_eq!(result_bytes(&again), result_bytes(&ra));

    handle.shutdown();
    handle.wait();
}

#[test]
fn overload_is_rejected_with_retry_hint_not_dropped() {
    let handle = start(1, 1);
    let sleep = |tag: u64| {
        Request::new(
            tag,
            "sleep",
            obj(vec![("ms", Value::U64(600)), ("tag", Value::U64(tag))]),
        )
    };
    std::thread::scope(|s| {
        let running = s.spawn(|| Client::connect(&handle).round_trip(&sleep(1)));
        std::thread::sleep(Duration::from_millis(150)); // worker busy on #1
        let queued = s.spawn(|| Client::connect(&handle).round_trip(&sleep(2)));
        std::thread::sleep(Duration::from_millis(150)); // queue holds #2
        let refused = Client::connect(&handle).round_trip(&sleep(3));
        match refused {
            Response::Err {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, ErrorCode::Overloaded);
                assert!(
                    retry_after_ms.is_some(),
                    "overloaded carries a Retry-After hint"
                );
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        // The refused request was shed, not the queued ones: both
        // admitted sleeps complete normally.
        assert_eq!(running.join().unwrap().status(), 200);
        assert_eq!(queued.join().unwrap().status(), 200);
    });
    handle.shutdown();
    handle.wait();
}

#[test]
fn queued_past_its_deadline_returns_408() {
    let handle = start(1, 4);
    std::thread::scope(|s| {
        let blocker = s.spawn(|| {
            Client::connect(&handle).round_trip(&Request::new(
                1,
                "sleep",
                obj(vec![("ms", Value::U64(500)), ("tag", Value::U64(1))]),
            ))
        });
        std::thread::sleep(Duration::from_millis(150));
        let mut impatient = Request::new(
            2,
            "sleep",
            obj(vec![("ms", Value::U64(10)), ("tag", Value::U64(2))]),
        );
        impatient.timeout_ms = Some(50);
        let resp = Client::connect(&handle).round_trip(&impatient);
        match resp {
            Response::Err { code, .. } => assert_eq!(code, ErrorCode::Deadline),
            other => panic!("expected deadline, got {other:?}"),
        }
        assert_eq!(blocker.join().unwrap().status(), 200);
    });
    handle.shutdown();
    handle.wait();
}

#[test]
fn bad_lines_and_unknown_cases_answer_without_closing() {
    let handle = start(1, 4);
    let mut client = Client::connect(&handle);
    match client.round_trip_line("this is not json") {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad-request, got {other:?}"),
    }
    match client.round_trip_line(r#"{"case":"no_such_case"}"#) {
        Response::Err { code, error, .. } => {
            assert_eq!(code, ErrorCode::UnknownCase);
            assert!(error.contains("no_such_case"));
        }
        other => panic!("expected unknown-case, got {other:?}"),
    }
    match client.round_trip_line(r#"{"case":"thermal_cap","params":{"power_w":-1}}"#) {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad-request, got {other:?}"),
    }
    // The connection survived all three failures.
    assert_eq!(client.round_trip_line(r#"{"case":"ping"}"#).status(), 200);
    handle.shutdown();
    handle.wait();
}

/// Outcome counter from a `metrics` response payload.
fn counter(metrics: &Value, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn metrics(client: &mut Client) -> Value {
    match client.round_trip_line(r#"{"case":"metrics"}"#) {
        Response::Ok { result, .. } => result,
        other => panic!("metrics failed: {other:?}"),
    }
}

#[test]
fn metrics_round_trip_counts_every_outcome() {
    let handle = start(2, 16);
    let mut client = Client::connect(&handle);

    let before = metrics(&mut client);
    // The snapshot has the full recorder shape even on a fresh server.
    assert!(before.get("counters").is_some());
    assert!(before.get("histograms").is_some());
    assert!(before.get("spans").is_some());

    // Two distinct computations, then both replayed from the response
    // cache — the same request stream `m3d-loadgen --expect-computed 2`
    // would verify from the client side.
    let mut computed = 0;
    let mut reused = 0;
    for id in 0..4u64 {
        let req = Request::new(
            id,
            "sensitivity",
            obj(vec![
                ("samples", Value::U64(40)),
                ("seed", Value::U64(id % 2)),
            ]),
        );
        let (cached, coalesced) = flags(&client.round_trip(&req));
        if cached || coalesced {
            reused += 1;
        } else {
            computed += 1;
        }
    }
    assert_eq!((computed, reused), (2, 2));

    let after = metrics(&mut client);
    let delta = |name: &str| counter(&after, name) - counter(&before, name);
    assert_eq!(delta("executed"), computed, "server agrees on computed");
    assert_eq!(
        delta("cache_hits") + delta("coalesced"),
        reused,
        "server agrees on reuse"
    );
    assert_eq!(delta("accepted"), 2, "only the leaders were queued");
    assert_eq!(delta("rejected"), 0);
    assert_eq!(delta("failed"), 0);

    // Latency histogram sampled once per finished request, and the
    // per-request span ring retained them.
    let hist_total = |m: &Value| {
        m.get("histograms")
            .and_then(|h| h.get("request_latency_us"))
            .and_then(|h| h.get("total"))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    assert_eq!(hist_total(&after) - hist_total(&before), 4);
    let spans_recorded = after
        .get("spans")
        .and_then(|s| s.get("recorded"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(spans_recorded >= 4, "per-request spans were recorded");

    handle.shutdown();
    handle.wait();
}

#[test]
fn shutdown_drains_queued_work_then_stops() {
    let handle = start(1, 8);
    std::thread::scope(|s| {
        let in_flight = s.spawn(|| {
            Client::connect(&handle).round_trip(&Request::new(
                1,
                "sleep",
                obj(vec![("ms", Value::U64(300)), ("tag", Value::U64(1))]),
            ))
        });
        let queued = s.spawn(|| {
            std::thread::sleep(Duration::from_millis(80));
            Client::connect(&handle).round_trip(&Request::new(
                2,
                "sleep",
                obj(vec![("ms", Value::U64(50)), ("tag", Value::U64(2))]),
            ))
        });
        std::thread::sleep(Duration::from_millis(160));
        let mut admin = Client::connect(&handle);
        assert_eq!(
            admin.round_trip_line(r#"{"case":"shutdown"}"#).status(),
            200
        );
        // Work accepted before the drain completes normally.
        assert_eq!(in_flight.join().unwrap().status(), 200, "in-flight drains");
        assert_eq!(queued.join().unwrap().status(), 200, "queued drains");
        // Work after the drain is refused (`draining` on a live
        // connection).
        match admin.round_trip_line(r#"{"case":"sleep","params":{"ms":1,"tag":9}}"#) {
            Response::Err { code, .. } => assert_eq!(code, ErrorCode::Draining),
            other => panic!("expected draining, got {other:?}"),
        }
    });
    handle.wait(); // returns: accept loop and workers exited
}

#[test]
fn metrics_scrapes_are_rate_limited_per_connection() {
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 4,
        default_timeout_ms: 60_000,
        scrape_min_interval_ms: 150,
    })
    .expect("server starts");

    let mut fast = Client::connect(&handle);
    assert_eq!(fast.round_trip_line(r#"{"case":"metrics"}"#).status(), 200);
    // A second scrape inside the interval is shed with a retry hint —
    // `metrics_text` shares the same per-connection gate.
    let wait_ms = match fast.round_trip_line(r#"{"case":"metrics_text"}"#) {
        Response::Err {
            code,
            retry_after_ms,
            ..
        } => {
            assert_eq!(code, ErrorCode::Overloaded);
            retry_after_ms.expect("rate-limit reply carries a retry hint")
        }
        other => panic!("expected a 429, got {other:?}"),
    };
    assert!(wait_ms > 0 && wait_ms <= 150, "hint {wait_ms} out of range");

    // The gate is per connection: a fresh connection scrapes at once.
    let mut other = Client::connect(&handle);
    assert_eq!(other.round_trip_line(r#"{"case":"metrics"}"#).status(), 200);

    // Sleeping out the hint readmits the scrape, and the shed scrape
    // was counted.
    std::thread::sleep(Duration::from_millis(wait_ms + 20));
    match fast.round_trip_line(r#"{"case":"metrics"}"#) {
        Response::Ok { result, .. } => {
            let limited = result
                .get("counters")
                .and_then(|c| c.get("scrapes_limited"))
                .and_then(Value::as_u64);
            assert_eq!(limited, Some(1), "the shed scrape is counted");
        }
        other => panic!("expected OK after the hinted wait, got {other:?}"),
    }

    // Non-scrape admin cases are never gated.
    assert_eq!(fast.round_trip_line(r#"{"case":"stats"}"#).status(), 200);
    assert_eq!(fast.round_trip_line(r#"{"case":"ping"}"#).status(), 200);

    handle.shutdown();
    handle.wait();
}

#[test]
fn health_and_ready_track_the_drain() {
    let handle = start(1, 4);
    let mut c = Client::connect(&handle);

    match c.round_trip_line(r#"{"case":"health"}"#) {
        Response::Ok { result, .. } => {
            assert_eq!(result.get("healthy"), Some(&Value::Bool(true)));
            assert_eq!(result.get("draining"), Some(&Value::Bool(false)));
        }
        other => panic!("health failed: {other:?}"),
    }
    match c.round_trip_line(r#"{"case":"ready"}"#) {
        Response::Ok { result, .. } => {
            assert_eq!(result.get("ready"), Some(&Value::Bool(true)));
            assert!(result.get("queue_len").is_some(), "ready carries the depth");
        }
        other => panic!("ready failed: {other:?}"),
    }

    assert_eq!(c.round_trip_line(r#"{"case":"shutdown"}"#).status(), 200);

    // On the still-open connection: alive but no longer ready — the
    // distinction the fleet supervisor keys respawn vs routing off.
    match c.round_trip_line(r#"{"case":"health"}"#) {
        Response::Ok { result, .. } => {
            assert_eq!(result.get("healthy"), Some(&Value::Bool(true)));
            assert_eq!(result.get("draining"), Some(&Value::Bool(true)));
        }
        other => panic!("health during drain failed: {other:?}"),
    }
    match c.round_trip_line(r#"{"case":"ready"}"#) {
        Response::Ok { result, .. } => {
            assert_eq!(result.get("ready"), Some(&Value::Bool(false)));
            assert_eq!(result.get("draining"), Some(&Value::Bool(true)));
        }
        other => panic!("ready during drain failed: {other:?}"),
    }

    handle.wait();
}
