//! Fleet integration tests: a real in-process gateway supervising real
//! `m3d-serve` child processes (the binary cargo built for this test
//! run), exercised over real TCP.
//!
//! The contracts pinned here are the fleet's hard gates:
//!
//! * routing affinity — repeats of one request land on one replica,
//! * cross-replica byte-identity — the same request forced through
//!   every replica digests identically,
//! * crash transparency — a replica killed with the gateway unaware
//!   (SIGKILL to the pid, no `kill_replica` bookkeeping) still yields
//!   one successful, payload-identical response via retry, and the
//!   supervisor respawns the replica.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use m3d_serve::fleet::{serve_fleet, FleetHandle, GatewayConfig};
use m3d_serve::protocol::{Request, Response};
use serde::Value;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn start_fleet(replicas: usize) -> FleetHandle {
    serve_fleet(&GatewayConfig {
        addr: "127.0.0.1:0".to_owned(),
        replicas,
        serve_bin: PathBuf::from(env!("CARGO_BIN_EXE_m3d-serve")),
        workers: 2,
        queue_depth: 16,
        default_timeout_ms: 30_000,
        probe_interval_ms: 50,
        scrape_min_interval_ms: 0,
        ..GatewayConfig::default()
    })
    .expect("fleet starts")
}

/// One client connection to the gateway.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to gateway");
        stream.set_nodelay(true).unwrap();
        Self {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    /// Sends one request; returns the raw response line.
    fn roundtrip_raw(&mut self, req: &Request) -> String {
        self.writer
            .write_all(format!("{}\n", req.to_line()).as_bytes())
            .expect("write request");
        self.writer.flush().unwrap();
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "gateway closed the connection");
        line
    }

    fn roundtrip(&mut self, req: &Request) -> (Response, Option<u64>) {
        let line = self.roundtrip_raw(req);
        let replica = serde_json::from_str_value(line.trim())
            .ok()
            .and_then(|v| v.get("replica").and_then(Value::as_u64));
        (
            Response::parse(line.trim()).expect("response parses"),
            replica,
        )
    }
}

fn sensitivity(id: u64, seed: u64) -> Request {
    Request::new(
        id,
        "sensitivity",
        obj(vec![
            ("samples", Value::U64(300)),
            ("seed", Value::U64(seed)),
        ]),
    )
}

/// Serialised `result` payload of an OK response.
fn payload(resp: &Response) -> String {
    match resp {
        Response::Ok { result, .. } => serde_json::to_string(result).expect("result serialises"),
        Response::Err { error, code, .. } => {
            panic!("expected OK response, got {code:?}: {error}")
        }
    }
}

#[test]
fn fleet_routes_with_affinity_and_cross_replica_identity() {
    let fleet = start_fleet(3);
    let addr = fleet.addr();

    // Admin cases answer fleet-wide.
    let mut admin = Client::connect(addr);
    let (health, _) = admin.roundtrip(&Request::new(1, "health", Value::Null));
    match &health {
        Response::Ok { result, .. } => {
            assert_eq!(result.get("healthy"), Some(&Value::Bool(true)));
            assert_eq!(result.get("replicas_up"), Some(&Value::U64(3)));
        }
        other => panic!("health failed: {other:?}"),
    }
    let (ready, _) = admin.roundtrip(&Request::new(2, "ready", Value::Null));
    match &ready {
        Response::Ok { result, .. } => {
            assert_eq!(result.get("ready"), Some(&Value::Bool(true)));
        }
        other => panic!("ready failed: {other:?}"),
    }
    // `ping` forwards round-robin and gets tagged.
    let (pong, replica) = admin.roundtrip(&Request::new(3, "ping", Value::Null));
    assert_eq!(pong.status(), 200);
    assert!(replica.is_some(), "forwarded responses carry a replica tag");

    // Affinity: the same request from several connections always lands
    // on one replica, and repeats replay its response cache.
    let mut owners = Vec::new();
    let mut payloads = Vec::new();
    for conn in 0..4 {
        let mut c = Client::connect(addr);
        for i in 0..3 {
            let (resp, replica) = c.roundtrip(&sensitivity(100 + conn * 10 + i, 7));
            assert_eq!(resp.status(), 200, "routed request failed: {resp:?}");
            owners.push(replica.expect("routed response must be tagged"));
            payloads.push(payload(&resp));
        }
    }
    let owner = owners[0];
    assert!(
        owners.iter().all(|&r| r == owner),
        "affinity broken: owners {owners:?}"
    );
    assert!(
        payloads.iter().all(|p| p == &payloads[0]),
        "repeat payloads must be byte-identical"
    );

    // Cross-replica identity: the same content key forced through
    // every replica must produce byte-identical payloads.
    for k in 0..3u64 {
        let mut c = Client::connect(addr);
        let mut req = sensitivity(200 + k, 7);
        req.replica = Some(k);
        let (resp, replica) = c.roundtrip(&req);
        assert_eq!(resp.status(), 200, "forced route to {k} failed: {resp:?}");
        assert_eq!(replica, Some(k), "forced routing must pin the replica");
        assert_eq!(
            payload(&resp),
            payloads[0],
            "replica {k} diverged from the fleet payload"
        );
    }

    // Drain the owner: fresh traffic for its keys spills elsewhere,
    // undrain snaps it back.
    let (drained, _) = admin.roundtrip(&Request::new(
        300,
        "drain",
        obj(vec![("replica", Value::U64(owner))]),
    ));
    assert_eq!(drained.status(), 200);
    let mut c = Client::connect(addr);
    let (resp, spilled) = c.roundtrip(&sensitivity(301, 7));
    assert_eq!(resp.status(), 200);
    assert_ne!(
        spilled,
        Some(owner),
        "a draining replica must get no new work"
    );
    assert_eq!(payload(&resp), payloads[0], "failover payload identical");
    let (undrained, _) = admin.roundtrip(&Request::new(
        302,
        "undrain",
        obj(vec![("replica", Value::U64(owner))]),
    ));
    assert_eq!(undrained.status(), 200);
    let (resp, back) = c.roundtrip(&sensitivity(303, 7));
    assert_eq!(resp.status(), 200);
    assert_eq!(back, Some(owner), "keys snap back after undrain");

    // Fleet stats name the per-replica routed tallies.
    let (stats, _) = admin.roundtrip(&Request::new(400, "stats", Value::Null));
    match &stats {
        Response::Ok { result, .. } => {
            let Some(Value::Array(replicas)) = result.get("replicas") else {
                panic!("stats carries no replicas array: {result:?}");
            };
            assert_eq!(replicas.len(), 3);
            let routed: u64 = replicas
                .iter()
                .filter_map(|r| r.get("routed").and_then(Value::as_u64))
                .sum();
            assert!(routed >= 16, "expected routed tallies, saw {routed}");
        }
        other => panic!("stats failed: {other:?}"),
    }

    fleet.shutdown();
    fleet.wait();
}

#[test]
fn killed_replica_is_retried_transparently_and_respawned() {
    let fleet = start_fleet(3);
    let addr = fleet.addr();
    let mut c = Client::connect(addr);

    let (first, owner) = c.roundtrip(&sensitivity(1, 42));
    assert_eq!(first.status(), 200);
    let owner = owner.expect("tagged") as usize;
    let reference = payload(&first);

    // SIGKILL the owner behind the gateway's back: the gateway still
    // believes it is up, routes there, hits the dead socket, retries a
    // survivor — the client must see one successful response.
    let pid = fleet.replica_pid(owner).expect("owner has a pid");
    let killed = std::process::Command::new("kill")
        .arg("-9")
        .arg(pid.to_string())
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -9 {pid} failed");
    // Give the kernel a beat to tear the socket down.
    std::thread::sleep(Duration::from_millis(100));

    let (retried, survivor) = c.roundtrip(&sensitivity(2, 42));
    assert_eq!(
        retried.status(),
        200,
        "request lost with the replica: {retried:?}"
    );
    assert_ne!(survivor, Some(owner as u64), "dead replica cannot answer");
    assert_eq!(
        payload(&retried),
        reference,
        "retried response must be byte-identical"
    );

    // The supervisor respawns the owner (250 ms backoff, 50 ms ticks).
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut admin = Client::connect(addr);
    loop {
        let (stats, _) = admin.roundtrip(&Request::new(3, "stats", Value::Null));
        let up_with_restart = match &stats {
            Response::Ok { result, .. } => match result.get("replicas") {
                Some(Value::Array(replicas)) => replicas.get(owner).is_some_and(|r| {
                    matches!(r.get("up"), Some(Value::Bool(true)))
                        && r.get("restarts").and_then(Value::as_u64).unwrap_or(0) >= 1
                }),
                _ => false,
            },
            _ => false,
        };
        if up_with_restart {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica {owner} not respawned in time: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Affinity snaps back to the respawned owner, payload unchanged
    // (its response cache died with it; the result must not differ).
    let (after, back) = c.roundtrip(&sensitivity(4, 42));
    assert_eq!(after.status(), 200);
    assert_eq!(
        back,
        Some(owner as u64),
        "keys return to the respawned owner"
    );
    assert_eq!(payload(&after), reference);

    fleet.shutdown();
    fleet.wait();
}
