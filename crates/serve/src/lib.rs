//! # m3d-serve — the concurrent experiment service
//!
//! Serves every `m3d_bench::registry` experiment case over a
//! newline-delimited-JSON TCP protocol, std-only (no async runtime, no
//! external networking crates):
//!
//! * **Shared caches** — one process-wide
//!   [`m3d_core::engine::FlowCache`] (disk-backed via `M3D_CACHE_DIR`)
//!   and [`m3d_thermal::ThermalCache`] behind all workers, plus a
//!   response cache keyed by request content, so repeated work replays
//!   instead of recomputing.
//! * **Request coalescing** — concurrent identical requests
//!   single-flight onto one execution
//!   ([`m3d_core::engine::InFlight`]): N clients asking for the same
//!   flow trigger exactly one flow run and all receive byte-identical
//!   payloads.
//! * **Backpressure** — a bounded job queue ([`queue::Bounded`]); when
//!   it is full, clients get an immediate 429 with a `retry_after_ms`
//!   hint rather than unbounded buffering.
//! * **Deadlines & drain** — per-request timeouts (408) and graceful
//!   shutdown that completes queued work before exiting.
//!
//! * **Fleet mode** — [`fleet`] scales one server to N supervised
//!   replica processes behind `m3d-gateway`: consistent-hash routing
//!   on the request content key (cache affinity), crash respawn with
//!   bounded backoff, transparent retry of idempotent requests, and a
//!   shared on-disk artifact tier via `M3D_CACHE_DIR`.
//!
//! Binaries: `m3d-serve` (the server), `m3d-gateway` (the fleet
//! router) and `m3d-loadgen` (a closed-loop load generator reporting
//! throughput, latency percentiles and cache hit rates, with a
//! deterministic `--json` artifact). See `EXPERIMENTS.md` for the wire
//! protocol and tuning knobs.

#![warn(missing_docs)]

pub mod fleet;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use fleet::{serve_fleet, FleetHandle, GatewayConfig};
pub use metrics::{LatencySummary, Metrics};
pub use protocol::{Request, Response};
pub use server::{serve, Handle, ServerConfig};
