//! The NDJSON wire protocol: one JSON object per line, both directions.
//!
//! A request names a registered experiment case and its parameters; the
//! response wraps the case's deterministic `result` payload in an
//! envelope carrying delivery metadata (status, cache/coalescing
//! flags). The *envelope* flags depend on arrival order and are
//! explicitly non-deterministic; the `result` payload is byte-identical
//! for identical request keys — across connections, worker counts and
//! server instances.
//!
//! Requests are keyed by content: [`Request::key`] hashes the case
//! name, the quick flag and the *canonicalised* parameter tree
//! (object keys sorted recursively), so `{"a":1,"b":2}` and
//! `{"b":2,"a":1}` coalesce onto one computation.

use m3d_core::obs::TraceContext;
use m3d_core::ErrorCode;
use m3d_tech::{StableHash, StableHasher};
use serde::Value;

/// Reserved case name: drain and stop the server.
pub const CASE_SHUTDOWN: &str = "shutdown";
/// Reserved case name: liveness probe.
pub const CASE_PING: &str = "ping";
/// Reserved case name: cache/queue/worker statistics snapshot.
pub const CASE_STATS: &str = "stats";
/// Reserved case name: full recorder snapshot (counters, latency and
/// queue-depth histograms, span-ring totals), merged with the
/// process-global engine recorder.
pub const CASE_METRICS: &str = "metrics";
/// Reserved case name: the same merged recorder data rendered as
/// Prometheus text exposition format (`{"text": "..."}` result).
pub const CASE_METRICS_TEXT: &str = "metrics_text";
/// Reserved case name: the registered experiment cases with their
/// parameter schemas (registry order, deterministic).
pub const CASE_CASES: &str = "cases";
/// Reserved case name: liveness probe — answers as long as the process
/// can read a line and write one back, even while draining.
pub const CASE_HEALTH: &str = "health";
/// Reserved case name: readiness probe — `ready:false` once a drain
/// has begun (the fleet router stops routing to a non-ready replica).
/// Carries the current queue depth so the prober doubles as a
/// queue-depth gauge source.
pub const CASE_READY: &str = "ready";
/// Reserved case name (gateway only): stop routing to one replica and
/// let its in-flight work finish. Params: `{"replica": K}`.
pub const CASE_DRAIN: &str = "drain";
/// Reserved case name (gateway only): return a drained replica to the
/// routing ring. Params: `{"replica": K}`.
pub const CASE_UNDRAIN: &str = "undrain";
/// Reserved case name: the trace flight recorder — recent stitched
/// traces and slow-request exemplars. On the gateway this is the
/// fleet-wide end-to-end view; on a single server, its local request
/// trees. Optional params filter it: `{"case": name, "trace_id": hex,
/// "min_wall_us": N}`.
pub const CASE_TRACES: &str = "traces";

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Case name: a `m3d_bench::registry` entry or a reserved admin
    /// case ([`CASE_SHUTDOWN`], [`CASE_PING`], [`CASE_STATS`]).
    pub case: String,
    /// Scaled-down configuration (the registry's `--quick` analogue).
    pub quick: bool,
    /// Case parameters; `Value::Null` when omitted.
    pub params: Value,
    /// Per-request deadline override in milliseconds (server default
    /// applies when omitted).
    pub timeout_ms: Option<u64>,
    /// Fleet routing override: force the gateway to forward this
    /// request to replica index `K` instead of consistent-hash
    /// routing. A delivery field like `id`/`timeout_ms`: it does not
    /// participate in the content key, and a plain `m3d-serve` ignores
    /// it — the payload it answers with is byte-identical whichever
    /// replica computes it, which is what the cross-replica identity
    /// check exploits.
    pub replica: Option<u64>,
    /// Opt-in tracing: when set, the response envelope carries the
    /// stitched span tree of this request. A delivery field — never
    /// part of the content key.
    pub trace: bool,
    /// Inbound distributed-trace context (the gateway sets it on
    /// forwarded requests so the replica's spans parent under the
    /// gateway's root span). A delivery field.
    pub trace_ctx: Option<TraceContext>,
}

impl Request {
    /// A request for `case` with `params`, quick by default.
    pub fn new(id: u64, case: &str, params: Value) -> Self {
        Self {
            id,
            case: case.to_owned(),
            quick: true,
            params,
            timeout_ms: None,
            replica: None,
            trace: false,
            trace_ctx: None,
        }
    }

    /// Parses one NDJSON line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the line is not a JSON
    /// object, `case` is missing/mistyped, or a present field has the
    /// wrong type.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = serde_json::from_str_value(line).map_err(|e| format!("malformed JSON: {e}"))?;
        if v.as_object().is_none() {
            return Err("request must be a JSON object".to_owned());
        }
        let case = match v.get("case") {
            Some(Value::Str(s)) if !s.is_empty() => s.clone(),
            Some(_) => return Err("`case` must be a non-empty string".to_owned()),
            None => return Err("missing required field `case`".to_owned()),
        };
        let id = match v.get("id") {
            None => 0,
            Some(x) => x.as_u64().ok_or("`id` must be a non-negative integer")?,
        };
        let quick = match v.get("quick") {
            None => true,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err("`quick` must be a boolean".to_owned()),
        };
        let params = v.get("params").cloned().unwrap_or(Value::Null);
        match &params {
            Value::Null | Value::Object(_) => {}
            _ => return Err("`params` must be an object".to_owned()),
        }
        let timeout_ms = match v.get("timeout_ms") {
            None => None,
            Some(x) => Some(
                x.as_u64()
                    .ok_or("`timeout_ms` must be a non-negative integer")?,
            ),
        };
        let replica = match v.get("replica") {
            None => None,
            Some(x) => Some(
                x.as_u64()
                    .ok_or("`replica` must be a non-negative integer")?,
            ),
        };
        let trace = match v.get("trace") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err("`trace` must be a boolean".to_owned()),
        };
        let trace_ctx = match v.get("trace_ctx") {
            None => None,
            Some(x) => Some(
                TraceContext::from_value(x)
                    .ok_or("`trace_ctx` must be {trace_id: 32 hex, parent_span: 16 hex}")?,
            ),
        };
        Ok(Self {
            id,
            case,
            quick,
            params,
            timeout_ms,
            replica,
            trace,
            trace_ctx,
        })
    }

    /// The content key identical requests share: case + quick +
    /// canonicalised params. Field order and the `id`/`timeout_ms`
    /// delivery fields do not participate.
    pub fn key(&self) -> u64 {
        let mut h = StableHasher::new();
        self.case.stable_hash(&mut h);
        self.quick.stable_hash(&mut h);
        hash_value(&canonical(&self.params), &mut h);
        h.finish()
    }

    /// Serialises the request as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("id".to_owned(), Value::U64(self.id)),
            ("case".to_owned(), Value::Str(self.case.clone())),
            ("quick".to_owned(), Value::Bool(self.quick)),
        ];
        if self.params != Value::Null {
            fields.push(("params".to_owned(), self.params.clone()));
        }
        if let Some(t) = self.timeout_ms {
            fields.push(("timeout_ms".to_owned(), Value::U64(t)));
        }
        if let Some(r) = self.replica {
            fields.push(("replica".to_owned(), Value::U64(r)));
        }
        if self.trace {
            fields.push(("trace".to_owned(), Value::Bool(true)));
        }
        if let Some(ctx) = &self.trace_ctx {
            fields.push(("trace_ctx".to_owned(), ctx.to_value()));
        }
        serde_json::to_string(&Value::Object(fields)).expect("request serialises")
    }
}

/// A response line: either a completed case or a protocol error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The case ran (or was replayed from cache).
    Ok {
        /// Echo of the request id.
        id: u64,
        /// Echo of the case name.
        case: String,
        /// The request content key, as 16 lowercase hex digits.
        key: String,
        /// Served from the response cache (no execution).
        cached: bool,
        /// Joined another request's in-flight execution.
        coalesced: bool,
        /// The deterministic case payload.
        result: Value,
        /// Stitched trace document `{trace_id, root}` — present only
        /// when the request opted in with `trace: true`, so untraced
        /// responses keep their pre-tracing byte layout.
        trace: Option<Value>,
    },
    /// The request was not served.
    Err {
        /// Echo of the request id (0 when the line did not parse).
        id: u64,
        /// Typed failure category; the wire carries both its stable
        /// name (`code`) and its HTTP-flavoured numeric `status`.
        code: ErrorCode,
        /// Human-readable cause.
        error: String,
        /// Backpressure hint: retry after this many milliseconds
        /// (overload only).
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// Status code (200 for [`Response::Ok`]).
    pub fn status(&self) -> u16 {
        match self {
            Response::Ok { .. } => 200,
            Response::Err { code, .. } => code.status(),
        }
    }

    /// The typed error code, when this is an error reply.
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            Response::Ok { .. } => None,
            Response::Err { code, .. } => Some(*code),
        }
    }

    /// Serialises the response as one NDJSON line (no trailing
    /// newline). Field order is fixed, so identical responses are
    /// byte-identical.
    pub fn to_line(&self) -> String {
        let v = match self {
            Response::Ok {
                id,
                case,
                key,
                cached,
                coalesced,
                result,
                trace,
            } => {
                let mut fields = vec![
                    ("id".to_owned(), Value::U64(*id)),
                    ("status".to_owned(), Value::U64(200)),
                    ("case".to_owned(), Value::Str(case.clone())),
                    ("key".to_owned(), Value::Str(key.clone())),
                    ("cached".to_owned(), Value::Bool(*cached)),
                    ("coalesced".to_owned(), Value::Bool(*coalesced)),
                    ("result".to_owned(), result.clone()),
                ];
                if let Some(t) = trace {
                    fields.push(("trace".to_owned(), t.clone()));
                }
                Value::Object(fields)
            }
            Response::Err {
                id,
                code,
                error,
                retry_after_ms,
            } => {
                let mut fields = vec![
                    ("id".to_owned(), Value::U64(*id)),
                    ("status".to_owned(), Value::U64(u64::from(code.status()))),
                    ("code".to_owned(), Value::Str(code.wire_name().to_owned())),
                    ("error".to_owned(), Value::Str(error.clone())),
                ];
                if let Some(ms) = retry_after_ms {
                    fields.push(("retry_after_ms".to_owned(), Value::U64(*ms)));
                }
                Value::Object(fields)
            }
        };
        serde_json::to_string(&v).expect("response serialises")
    }

    /// Parses one NDJSON response line (the loadgen side).
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not a valid response object.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = serde_json::from_str_value(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let id = v.get("id").and_then(Value::as_u64).unwrap_or(0);
        let status = v
            .get("status")
            .and_then(Value::as_u64)
            .ok_or("missing `status`")?;
        if status == 200 {
            let case = match v.get("case") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err("missing `case` in OK response".to_owned()),
            };
            let key = match v.get("key") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err("missing `key` in OK response".to_owned()),
            };
            let flag = |name: &str| match v.get(name) {
                Some(Value::Bool(b)) => Ok(*b),
                _ => Err(format!("missing `{name}` in OK response")),
            };
            Ok(Response::Ok {
                id,
                case,
                key,
                cached: flag("cached")?,
                coalesced: flag("coalesced")?,
                result: v.get("result").cloned().ok_or("missing `result`")?,
                trace: v.get("trace").cloned(),
            })
        } else {
            let error = match v.get("error") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err("missing `error` in error response".to_owned()),
            };
            // Prefer the stable name; fall back to the numeric status
            // for replies from servers that predate the `code` field.
            let status = u16::try_from(status).map_err(|_| "status out of range")?;
            let code = match v.get("code") {
                Some(Value::Str(s)) => {
                    ErrorCode::from_wire(s).ok_or_else(|| format!("unknown error code `{s}`"))?
                }
                _ => ErrorCode::from_status(status)
                    .ok_or_else(|| format!("unmapped error status {status}"))?,
            };
            Ok(Response::Err {
                id,
                code,
                error,
                retry_after_ms: v.get("retry_after_ms").and_then(Value::as_u64),
            })
        }
    }
}

/// Formats a content key the way responses carry it.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Recursively sorts object keys so structurally equal parameter trees
/// serialise (and hash) identically regardless of client field order.
pub fn canonical(v: &Value) -> Value {
    match v {
        Value::Object(fields) => {
            let mut sorted: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, x)| (k.clone(), canonical(x)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        Value::Array(items) => Value::Array(items.iter().map(canonical).collect()),
        other => other.clone(),
    }
}

/// Stable-hashes a canonical [`Value`] tree (tag + payload per node).
fn hash_value(v: &Value, h: &mut StableHasher) {
    match v {
        Value::Null => 0u8.stable_hash(h),
        Value::Bool(b) => {
            1u8.stable_hash(h);
            b.stable_hash(h);
        }
        Value::I64(i) => {
            2u8.stable_hash(h);
            i.stable_hash(h);
        }
        Value::U64(u) => {
            3u8.stable_hash(h);
            u.stable_hash(h);
        }
        Value::F64(f) => {
            4u8.stable_hash(h);
            f.stable_hash(h);
        }
        Value::Str(s) => {
            5u8.stable_hash(h);
            s.stable_hash(h);
        }
        Value::Array(items) => {
            6u8.stable_hash(h);
            items.len().stable_hash(h);
            for item in items {
                hash_value(item, h);
            }
        }
        Value::Object(fields) => {
            7u8.stable_hash(h);
            fields.len().stable_hash(h);
            for (k, x) in fields {
                k.stable_hash(h);
                hash_value(x, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    #[test]
    fn request_round_trips_through_its_own_line() {
        let req = Request {
            id: 42,
            case: "pd_flow".into(),
            quick: false,
            params: obj(vec![("n_cs", Value::U64(8))]),
            timeout_ms: Some(2500),
            replica: Some(2),
            trace: true,
            trace_ctx: Some(TraceContext::root("pd_flow", 0xfeed, 42)),
        };
        assert_eq!(Request::parse(&req.to_line()).unwrap(), req);
    }

    #[test]
    fn defaults_apply_to_a_minimal_request() {
        let req = Request::parse(r#"{"case":"ping"}"#).unwrap();
        assert_eq!(req.id, 0);
        assert!(req.quick);
        assert_eq!(req.params, Value::Null);
        assert_eq!(req.timeout_ms, None);
    }

    #[test]
    fn bad_requests_name_the_field() {
        assert!(Request::parse("{}").unwrap_err().contains("case"));
        assert!(Request::parse(r#"{"case":3}"#)
            .unwrap_err()
            .contains("case"));
        assert!(Request::parse(r#"{"case":"x","params":[1]}"#)
            .unwrap_err()
            .contains("params"));
        assert!(Request::parse("not json").unwrap_err().contains("JSON"));
        assert!(Request::parse(r#"{"case":"x","trace":1}"#)
            .unwrap_err()
            .contains("trace"));
        assert!(
            Request::parse(r#"{"case":"x","trace_ctx":{"trace_id":"nope"}}"#)
                .unwrap_err()
                .contains("trace_ctx")
        );
    }

    #[test]
    fn key_ignores_field_order_and_delivery_fields() {
        let a = Request::parse(r#"{"id":1,"case":"x","params":{"a":1,"b":2}}"#).unwrap();
        let b =
            Request::parse(r#"{"id":9,"timeout_ms":5,"case":"x","params":{"b":2,"a":1}}"#).unwrap();
        assert_eq!(a.key(), b.key());
        let forced =
            Request::parse(r#"{"id":1,"case":"x","replica":2,"params":{"a":1,"b":2}}"#).unwrap();
        assert_eq!(forced.replica, Some(2));
        assert_eq!(
            a.key(),
            forced.key(),
            "the routing override is a delivery field, not content"
        );
        let mut traced = a.clone();
        traced.trace = true;
        traced.trace_ctx = Some(TraceContext::root("x", a.key(), 1));
        assert_eq!(
            a.key(),
            traced.key(),
            "trace identity is a delivery field, not content"
        );
        let c = Request::parse(r#"{"case":"x","params":{"a":1,"b":3}}"#).unwrap();
        assert_ne!(a.key(), c.key());
        let d = Request::parse(r#"{"case":"x","quick":false,"params":{"a":1,"b":2}}"#).unwrap();
        assert_ne!(a.key(), d.key());
    }

    #[test]
    fn canonicalisation_recurses_into_arrays() {
        let v = serde_json::from_str_value(r#"{"z":[{"b":1,"a":2}],"a":0}"#).unwrap();
        let w = serde_json::from_str_value(r#"{"a":0,"z":[{"a":2,"b":1}]}"#).unwrap();
        assert_eq!(canonical(&v), canonical(&w));
    }

    #[test]
    fn responses_round_trip_both_arms() {
        let ok = Response::Ok {
            id: 7,
            case: "tier_sweep".into(),
            key: key_hex(0xdead_beef),
            cached: true,
            coalesced: false,
            result: obj(vec![("points", Value::Array(vec![]))]),
            trace: None,
        };
        assert_eq!(Response::parse(&ok.to_line()).unwrap(), ok);
        assert!(
            !ok.to_line().contains("trace"),
            "untraced responses keep the pre-tracing byte layout"
        );
        let traced = Response::Ok {
            id: 7,
            case: "tier_sweep".into(),
            key: key_hex(0xdead_beef),
            cached: false,
            coalesced: false,
            result: Value::Null,
            trace: Some(obj(vec![("trace_id", Value::Str("00".repeat(16)))])),
        };
        assert_eq!(Response::parse(&traced.to_line()).unwrap(), traced);
        let err = Response::Err {
            id: 8,
            code: ErrorCode::Overloaded,
            error: "queue full".into(),
            retry_after_ms: Some(50),
        };
        assert_eq!(Response::parse(&err.to_line()).unwrap(), err);
        assert_eq!(err.status(), 429);
        assert_eq!(err.error_code(), Some(ErrorCode::Overloaded));
        assert!(err.to_line().contains(r#""code":"overloaded""#));
    }

    #[test]
    fn error_replies_without_a_code_field_fall_back_to_status() {
        let legacy = r#"{"id":3,"status":408,"error":"deadline exceeded"}"#;
        let parsed = Response::parse(legacy).unwrap();
        assert_eq!(parsed.error_code(), Some(ErrorCode::Deadline));
        // An unmapped numeric status is a parse error, not a panic.
        assert!(Response::parse(r#"{"id":3,"status":418,"error":"?"}"#).is_err());
    }
}
