//! The service: TCP accept loop, connection handlers, and the shared
//! worker pool.
//!
//! ```text
//!  client ──NDJSON──▶ connection thread ──▶ bounded queue ──▶ worker pool
//!                         │    ▲                                  │
//!                         │    └──── response slot (Condvar) ◀────┤
//!                         ▼                                       ▼
//!                    429/503 shed                   response cache + InFlight
//!                                                   FlowCache + ThermalCache
//! ```
//!
//! Every request resolves to a content key; the worker pool runs each
//! key at most once concurrently (single-flight) and at most once ever
//! (response cache), so N concurrent identical requests trigger one
//! case execution — one *flow* execution for `pd_flow` — and everyone
//! receives byte-identical payloads. The queue is bounded: when it is
//! full the connection thread answers 429 with a `retry_after_ms` hint
//! instead of buffering unboundedly. Shutdown (`{"case":"shutdown"}` or
//! [`Handle::shutdown`]) drains: queued work completes, new work is
//! refused with 503, workers exit when the queue runs dry.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use m3d_bench::registry::{self, CaseCtx};
use m3d_core::engine::{Flight, FlowCache, InFlight, Pipeline};
use m3d_core::obs::{
    Provenance, Recorder, SpanNode, StitchedTrace, TraceContext, TraceFilter, TraceSink,
};
use m3d_core::ErrorCode;
use m3d_thermal::ThermalCache;
use serde::Value;

use crate::metrics::Metrics;
use crate::protocol::{
    key_hex, Request, Response, CASE_CASES, CASE_HEALTH, CASE_METRICS, CASE_METRICS_TEXT,
    CASE_PING, CASE_READY, CASE_SHUTDOWN, CASE_STATS, CASE_TRACES,
};
use crate::queue::{Bounded, PushError};

/// Backpressure hint clients receive with a 429.
const RETRY_AFTER_MS: u64 = 100;

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Handle::addr`]).
    pub addr: String,
    /// Worker threads executing cases.
    pub workers: usize,
    /// Bounded queue depth; pushes beyond it are refused with 429.
    pub queue_depth: usize,
    /// Default per-request deadline (overridable per request via
    /// `timeout_ms`).
    pub default_timeout_ms: u64,
    /// Minimum interval between `metrics`/`metrics_text` scrapes on one
    /// connection; a faster scraper gets 429 + `retry_after_ms` instead
    /// of occupying the handler with snapshot rendering. `0` disables
    /// the limit.
    pub scrape_min_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_depth: 64,
            default_timeout_ms: 120_000,
            scrape_min_interval_ms: 25,
        }
    }
}

/// Per-connection scrape cadence limiter for the `metrics` /
/// `metrics_text` cases. One gate covers both cases: a scraper
/// alternating them is still held to the interval.
pub(crate) struct ScrapeGate {
    min_interval: Duration,
    last: Option<Instant>,
}

impl ScrapeGate {
    pub(crate) fn new(min_interval: Duration) -> Self {
        Self {
            min_interval,
            last: None,
        }
    }

    /// Admits the scrape (recording its time) or returns how many
    /// milliseconds the caller should wait before retrying.
    pub(crate) fn admit(&mut self) -> Result<(), u64> {
        let now = Instant::now();
        if self.min_interval > Duration::ZERO {
            if let Some(last) = self.last {
                let elapsed = now.saturating_duration_since(last);
                if elapsed < self.min_interval {
                    let wait = (self.min_interval - elapsed).as_millis() as u64;
                    return Err(wait.max(1));
                }
            }
        }
        self.last = Some(now);
        Ok(())
    }
}

/// A finished case, shared between the response cache, in-flight
/// followers and every envelope that replays it.
struct Computed {
    result: Value,
    /// The *case* reported an internal cache hit (flow/thermal cache).
    deep_hit: bool,
    /// The stage spans the leader's pipeline captured while computing
    /// (pd-flow/thermal sub-spans included). Only the leading request
    /// claims them in its trace — cache hits and coalesced followers
    /// did not run the stages, and their traces say so.
    spans: Vec<SpanNode>,
}

/// One queued request and the slot its connection thread waits on.
struct Job {
    req: Request,
    key: u64,
    born: Instant,
    deadline: Instant,
    slot: Arc<Slot>,
}

/// Single-use rendezvous between a worker and a connection thread.
struct Slot {
    response: Mutex<Option<Response>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            response: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, resp: Response) {
        *self.response.lock().expect("slot poisoned") = Some(resp);
        self.ready.notify_all();
    }

    /// Blocks until the worker fulfills the slot. Safe without a
    /// timeout: every successfully queued job is popped and fulfilled,
    /// even during a drain.
    fn wait(&self) -> Response {
        let mut guard = self.response.lock().expect("slot poisoned");
        loop {
            if let Some(resp) = guard.take() {
                return resp;
            }
            guard = self.ready.wait(guard).expect("slot poisoned");
        }
    }
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    flows: FlowCache,
    thermals: ThermalCache,
    responses: Mutex<HashMap<u64, Arc<Computed>>>,
    inflight: InFlight<Arc<Computed>>,
    queue: Bounded<Job>,
    metrics: Metrics,
    traces: TraceSink,
    shutdown: AtomicBool,
    addr: SocketAddr,
    default_timeout: Duration,
    scrape_min_interval: Duration,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        self.queue.close();
        // Unblock the accept loop so it can observe the flag; errors are
        // irrelevant (the listener may already be gone).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// A running server: its resolved address and the threads to join.
pub struct Handle {
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Handle {
    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain, exactly like a `{"case":"shutdown"}`
    /// request.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Joins the accept loop and the worker pool; returns once queued
    /// work has drained. Call [`Handle::shutdown`] (or send the
    /// shutdown case) first, or this blocks forever.
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            t.join().expect("accept thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

/// Binds, spawns the worker pool and the accept loop, and returns
/// immediately.
///
/// # Errors
///
/// Propagates socket bind failures.
pub fn serve(cfg: &ServerConfig) -> std::io::Result<Handle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        flows: FlowCache::persistent(),
        thermals: ThermalCache::new(),
        responses: Mutex::new(HashMap::new()),
        inflight: InFlight::new(),
        queue: Bounded::new(cfg.queue_depth.max(1)),
        metrics: Metrics::new(),
        traces: TraceSink::default(),
        shutdown: AtomicBool::new(false),
        addr,
        default_timeout: Duration::from_millis(cfg.default_timeout_ms.clamp(1, 3_600_000)),
        scrape_min_interval: Duration::from_millis(cfg.scrape_min_interval_ms),
    });

    let workers = (0..cfg.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("m3d-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("m3d-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn accept loop")
    };

    Ok(Handle {
        addr,
        accept: Some(accept),
        workers,
        shared,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break; // the drain's wake-up connection (or later)
                }
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name("m3d-serve-conn".to_owned())
                    .spawn(move || {
                        let _ = handle_connection(&shared, stream);
                    })
                    .expect("spawn connection handler");
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    // Redundant after a shutdown request, but makes `Handle::shutdown`
    // → accept-exit → drain ordering airtight.
    shared.queue.close();
}

/// Reads request lines and writes one response line each, in order.
/// Connection threads block while their request is in flight, so one
/// connection contributes at most one queue slot at a time — client
/// concurrency comes from concurrent connections.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    // Line-sized writes each wait on a delayed ACK under Nagle's
    // algorithm (~40 ms per request); this is a request/response
    // protocol, so send eagerly.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let mut scrapes = ScrapeGate::new(shared.scrape_min_interval);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let resp = match Request::parse(&line) {
            Err(e) => Response::Err {
                id: 0,
                code: ErrorCode::BadRequest,
                error: e,
                retry_after_ms: None,
            },
            Ok(req) => dispatch(shared, req, &mut scrapes),
        };
        writer.write_all(resp.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Routes one parsed request: admin cases inline, experiment cases
/// through the queue and worker pool.
fn dispatch(shared: &Arc<Shared>, req: Request, scrapes: &mut ScrapeGate) -> Response {
    match req.case.as_str() {
        CASE_PING => {
            return admin_ok(
                &req,
                Value::Object(vec![("pong".to_owned(), Value::Bool(true))]),
            )
        }
        CASE_HEALTH => {
            // Liveness: true as long as the connection handler runs,
            // draining or not — the fleet supervisor uses `ready` to
            // decide routing and this case to decide respawning.
            return admin_ok(
                &req,
                Value::Object(vec![
                    ("healthy".to_owned(), Value::Bool(true)),
                    (
                        "draining".to_owned(),
                        Value::Bool(shared.shutdown.load(Ordering::SeqCst)),
                    ),
                ]),
            );
        }
        CASE_READY => {
            let draining = shared.shutdown.load(Ordering::SeqCst);
            return admin_ok(
                &req,
                Value::Object(vec![
                    ("ready".to_owned(), Value::Bool(!draining)),
                    ("draining".to_owned(), Value::Bool(draining)),
                    (
                        "queue_len".to_owned(),
                        Value::U64(shared.queue.len() as u64),
                    ),
                ]),
            );
        }
        CASE_STATS => return stats_response(shared, &req),
        CASE_METRICS => {
            if let Err(wait_ms) = scrapes.admit() {
                shared.metrics.bump("scrapes_limited");
                return scrape_limited(&req, wait_ms);
            }
            // Per-server request counters plus the process-global
            // engine recorder (flow/thermal caches, sweeps, pd-flow
            // tallies) in one snapshot — the namespaces are disjoint.
            return admin_ok(&req, shared.metrics.merged_snapshot(Recorder::global()));
        }
        CASE_METRICS_TEXT => {
            if let Err(wait_ms) = scrapes.admit() {
                shared.metrics.bump("scrapes_limited");
                return scrape_limited(&req, wait_ms);
            }
            return admin_ok(
                &req,
                Value::Object(vec![(
                    "text".to_owned(),
                    Value::Str(shared.metrics.merged_text(Recorder::global())),
                )]),
            );
        }
        CASE_TRACES => {
            return match trace_filter(&req.params) {
                Ok(filter) => admin_ok(&req, shared.traces.render(&filter)),
                Err(e) => Response::Err {
                    id: req.id,
                    code: ErrorCode::BadRequest,
                    error: e,
                    retry_after_ms: None,
                },
            };
        }
        CASE_SHUTDOWN => {
            shared.begin_shutdown();
            return admin_ok(
                &req,
                Value::Object(vec![("draining".to_owned(), Value::Bool(true))]),
            );
        }
        CASE_CASES => {
            return admin_ok(&req, cases_listing());
        }
        other => match registry::find(other) {
            None => {
                return Response::Err {
                    id: req.id,
                    code: ErrorCode::UnknownCase,
                    error: format!("unknown case `{other}`"),
                    retry_after_ms: None,
                };
            }
            Some(case) => {
                // Typed-params validation up front: a malformed request
                // is rejected before it occupies a queue slot or worker.
                if let Err(e) = case.validate(req.quick, &req.params) {
                    shared.metrics.bump("rejected");
                    return Response::Err {
                        id: req.id,
                        code: e.code,
                        error: e.message,
                        retry_after_ms: None,
                    };
                }
            }
        },
    }

    let born = Instant::now();
    let key = req.key();
    // Fast path: an identical request already completed.
    if let Some(done) = shared
        .responses
        .lock()
        .expect("responses poisoned")
        .get(&key)
    {
        let done = Arc::clone(done);
        let trace = finish_request(shared, &req, key, born, Provenance::CacheHit, &[]);
        return ok_envelope(&req, key, done, true, false, trace);
    }

    let timeout = req
        .timeout_ms
        .map_or(shared.default_timeout, Duration::from_millis);
    let job = Job {
        key,
        born,
        deadline: born + timeout,
        slot: Slot::new(),
        req,
    };
    let slot = Arc::clone(&job.slot);
    let (id, retriable) = (job.req.id, job.req.case.clone());
    // Depth observed *before* this push: the distribution of what an
    // arriving request finds ahead of it.
    shared
        .metrics
        .observe_queue_depth(shared.queue.len() as u64);
    match shared.queue.push(job) {
        Ok(()) => {
            shared.metrics.bump("accepted");
            slot.wait()
        }
        Err(PushError::Full { depth }) => {
            shared.metrics.bump("rejected");
            Response::Err {
                id,
                code: ErrorCode::Overloaded,
                error: format!("queue full ({depth} deep) — retry `{retriable}` later"),
                retry_after_ms: Some(RETRY_AFTER_MS),
            }
        }
        Err(PushError::Closed) => {
            shared.metrics.bump("rejected");
            Response::Err {
                id,
                code: ErrorCode::Draining,
                error: "server is draining".to_owned(),
                retry_after_ms: None,
            }
        }
    }
}

/// An OK envelope for an inline admin case (never cached, coalesced or
/// traced).
fn admin_ok(req: &Request, result: Value) -> Response {
    Response::Ok {
        id: req.id,
        case: req.case.clone(),
        key: key_hex(req.key()),
        cached: false,
        coalesced: false,
        result,
        trace: None,
    }
}

/// Parses the optional `traces` filter params: `{case, trace_id,
/// min_wall_us}`, all optional, unknown fields rejected.
pub(crate) fn trace_filter(params: &Value) -> Result<TraceFilter, String> {
    let mut filter = TraceFilter::default();
    let fields = match params {
        Value::Null => return Ok(filter),
        Value::Object(fields) => fields,
        _ => return Err("`traces` params must be an object".to_owned()),
    };
    for (k, v) in fields {
        match (k.as_str(), v) {
            ("case", Value::Str(s)) => filter.case = Some(s.clone()),
            ("trace_id", Value::Str(s)) => filter.trace_id = Some(s.clone()),
            ("min_wall_us", x) => {
                filter.min_wall_us = x
                    .as_u64()
                    .ok_or("`min_wall_us` must be a non-negative integer")?;
            }
            ("case" | "trace_id", _) => {
                return Err(format!("`{k}` must be a string"));
            }
            (other, _) => return Err(format!("unknown `traces` filter field `{other}`")),
        }
    }
    Ok(filter)
}

/// The 429 a too-eager `metrics`/`metrics_text` scraper receives: retry
/// after the remainder of the per-connection minimum interval.
fn scrape_limited(req: &Request, wait_ms: u64) -> Response {
    Response::Err {
        id: req.id,
        code: ErrorCode::Overloaded,
        error: format!("`{}` scraped too fast on this connection", req.case),
        retry_after_ms: Some(wait_ms),
    }
}

/// The `cases` admin payload: every registered experiment case with its
/// summary and parameter schema, in registry order. Served straight off
/// the registry, so the listing can never drift from dispatch.
fn cases_listing() -> Value {
    Value::Object(vec![(
        "cases".to_owned(),
        Value::Array(
            registry::registry()
                .into_iter()
                .map(|case| {
                    Value::Object(vec![
                        ("name".to_owned(), Value::Str(case.name().to_owned())),
                        ("summary".to_owned(), Value::Str(case.summary().to_owned())),
                        (
                            "params".to_owned(),
                            Value::Array(
                                case.param_fields()
                                    .iter()
                                    .map(|f| {
                                        Value::Object(vec![
                                            ("name".to_owned(), Value::Str(f.name.to_owned())),
                                            (
                                                "default".to_owned(),
                                                Value::Str(f.default.to_owned()),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Books a request's terminal accounting: outcome counter, end-to-end
/// latency sample, a per-request span on the metrics recorder, and the
/// request's trace on the flight recorder. `children` are the stage
/// spans the leader's pipeline captured (empty for cache hits and
/// coalesced followers — they did not run the stages).
///
/// Returns the inline trace document `{trace_id, root}` when the
/// request opted in with `trace: true`: the `req:{case}` span subtree
/// in deterministic rendering, parented under the inbound
/// [`TraceContext`] when the gateway supplied one (same derivation
/// otherwise, so direct and fleet-routed traces share ids).
fn finish_request(
    shared: &Shared,
    req: &Request,
    key: u64,
    born: Instant,
    provenance: Provenance,
    children: &[SpanNode],
) -> Option<Value> {
    shared.metrics.bump(match provenance {
        // Warm-started requests still executed the case end to end; the
        // flow-cache warm counter (surfaced in `stats`) carries the
        // seed-reuse signal.
        Provenance::Computed | Provenance::Warm => "executed",
        Provenance::CacheHit | Provenance::DiskHit => "cache_hits",
        Provenance::Coalesced => "coalesced",
    });
    let elapsed = born.elapsed();
    let elapsed_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
    shared.metrics.observe_latency_us(elapsed_us);
    let mut span = SpanNode::new(format!("req:{}", req.case));
    span.wall_ms = elapsed.as_secs_f64() * 1.0e3;
    span.provenance = provenance;
    span.children = children.to_vec();
    shared.metrics.record_span(span.clone());

    let ctx = req
        .trace_ctx
        .unwrap_or_else(|| TraceContext::root(&req.case, key, req.id));
    let trace_id = ctx.trace_id_hex();
    let outcome = shared.traces.record(StitchedTrace {
        trace_id: trace_id.clone(),
        case: req.case.clone(),
        wall_us: elapsed_us,
        root: span.clone(),
    });
    let rec = shared.metrics.recorder();
    rec.incr("trace.recorded", 1);
    if outcome.dropped {
        rec.incr("trace.dropped", 1);
    }
    if outcome.slow_retained {
        rec.incr("trace.slow_retained", 1);
    }
    req.trace.then(|| {
        Value::Object(vec![
            ("trace_id".to_owned(), Value::Str(trace_id)),
            ("root".to_owned(), span.to_value(false)),
        ])
    })
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let resp = execute(shared, &job);
        job.slot.fulfill(resp);
    }
}

/// Runs one dequeued job under deadline, response-cache and
/// single-flight discipline.
fn execute(shared: &Arc<Shared>, job: &Job) -> Response {
    let now = Instant::now();
    if now >= job.deadline {
        shared.metrics.bump("timed_out");
        return timeout_response(job);
    }
    // The key may have completed while this job sat queued.
    if let Some(done) = shared
        .responses
        .lock()
        .expect("responses poisoned")
        .get(&job.key)
    {
        let done = Arc::clone(done);
        let trace = finish_request(
            shared,
            &job.req,
            job.key,
            job.born,
            Provenance::CacheHit,
            &[],
        );
        return ok_envelope(&job.req, job.key, done, true, false, trace);
    }

    let flown = shared.inflight.run(job.key, Some(job.deadline), || {
        // A pipeline rides along so the leader's trace carries the
        // stage spans (pd-flow sub-spans included) the case records.
        let pipeline = std::sync::Mutex::new(Pipeline::new());
        let ctx = CaseCtx::new(&shared.flows, &shared.thermals).with_pipeline(&pipeline);
        let case = registry::find(&job.req.case).expect("checked at dispatch");
        case.run(&ctx, job.req.quick, &job.req.params)
            .map(|outcome| {
                Arc::new(Computed {
                    result: outcome.result,
                    deep_hit: outcome.cache_hit,
                    spans: pipeline
                        .into_inner()
                        .expect("pipeline poisoned")
                        .spans()
                        .to_vec(),
                })
            })
    });
    match flown {
        Ok((Some(done), Flight::Led)) => {
            let trace = finish_request(
                shared,
                &job.req,
                job.key,
                job.born,
                Provenance::Computed,
                &done.spans,
            );
            shared
                .responses
                .lock()
                .expect("responses poisoned")
                .insert(job.key, Arc::clone(&done));
            let deep_hit = done.deep_hit;
            ok_envelope(&job.req, job.key, done, deep_hit, false, trace)
        }
        Ok((Some(done), _)) => {
            let trace = finish_request(
                shared,
                &job.req,
                job.key,
                job.born,
                Provenance::Coalesced,
                &[],
            );
            ok_envelope(&job.req, job.key, done, false, true, trace)
        }
        Ok((None, _)) => {
            shared.metrics.bump("timed_out");
            timeout_response(job)
        }
        Err(e) => {
            shared.metrics.bump("failed");
            Response::Err {
                id: job.req.id,
                code: e.code,
                error: e.message,
                retry_after_ms: None,
            }
        }
    }
}

fn ok_envelope(
    req: &Request,
    key: u64,
    done: Arc<Computed>,
    cached: bool,
    coalesced: bool,
    trace: Option<Value>,
) -> Response {
    Response::Ok {
        id: req.id,
        case: req.case.clone(),
        key: key_hex(key),
        cached,
        coalesced,
        result: done.result.clone(),
        trace,
    }
}

fn timeout_response(job: &Job) -> Response {
    Response::Err {
        id: job.req.id,
        code: ErrorCode::Deadline,
        error: format!("deadline exceeded for `{}`", job.req.case),
        retry_after_ms: None,
    }
}

fn stats_response(shared: &Arc<Shared>, req: &Request) -> Response {
    let cache_stats = |s: m3d_core::engine::CacheStats| {
        Value::Object(vec![
            ("hits".to_owned(), Value::U64(s.hits)),
            ("misses".to_owned(), Value::U64(s.misses)),
            ("disk_hits".to_owned(), Value::U64(s.disk_hits)),
        ])
    };
    let result = Value::Object(vec![
        ("metrics".to_owned(), shared.metrics.counters_snapshot()),
        ("engine".to_owned(), Recorder::global().counters_value()),
        ("flow_cache".to_owned(), cache_stats(shared.flows.stats())),
        (
            "flow_coalesced".to_owned(),
            Value::U64(shared.flows.coalesced_count()),
        ),
        (
            "flow_warm_hits".to_owned(),
            Value::U64(shared.flows.warm_count()),
        ),
        (
            "thermal_cache".to_owned(),
            cache_stats(shared.thermals.stats()),
        ),
        (
            "response_cache_len".to_owned(),
            Value::U64(shared.responses.lock().expect("responses poisoned").len() as u64),
        ),
        (
            "queue_len".to_owned(),
            Value::U64(shared.queue.len() as u64),
        ),
        (
            "draining".to_owned(),
            Value::Bool(shared.shutdown.load(Ordering::SeqCst)),
        ),
    ]);
    Response::Ok {
        id: req.id,
        case: req.case.clone(),
        key: key_hex(req.key()),
        cached: false,
        coalesced: false,
        result,
        trace: None,
    }
}
