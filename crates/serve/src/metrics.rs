//! Service metrics, backed by the shared [`m3d_core::obs::Recorder`].
//!
//! The server owns one [`Metrics`] (its own recorder instance, not the
//! process-global one) so its counters are isolated per server — the
//! loopback tests run several servers in one process. Counters split
//! along the axes the acceptance tests care about: every accepted
//! request is eventually exactly one of `executed` (a leader actually
//! ran the case), `cache_hits` (replayed from the response cache),
//! `coalesced` (joined an in-flight leader), or a failure (`timed_out`,
//! `failed`). `rejected` counts backpressure refusals, which are
//! answered — never silently dropped.
//!
//! On top of the counters, the recorder aggregates per-request latency
//! and queue-depth histograms and retains a ring of per-request spans;
//! the `metrics` wire case returns the whole recorder snapshot.

use std::collections::BTreeMap;

use m3d_core::obs::{render_parts, Histogram, Recorder, SpanNode, DEPTH_EDGES, LATENCY_US_EDGES};
use serde::Value;

/// The request-outcome counters, in stable snapshot order. Every name
/// appears in [`Metrics::counters_snapshot`] even at zero, so the JSON
/// shape is independent of which events have occurred.
pub const COUNTERS: &[&str] = &[
    "accepted",
    "rejected",
    "executed",
    "cache_hits",
    "coalesced",
    "timed_out",
    "failed",
    "scrapes_limited",
];

/// Per-server metrics: named counters, latency/queue-depth histograms
/// and a bounded ring of per-request spans.
#[derive(Debug, Default)]
pub struct Metrics {
    rec: Recorder,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying recorder (span recording, ad-hoc counters).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Adds one to the named counter.
    pub fn bump(&self, name: &str) {
        self.rec.incr(name, 1);
    }

    /// Current value of the named counter.
    pub fn get(&self, name: &str) -> u64 {
        self.rec.counter(name)
    }

    /// Records one end-to-end request latency sample.
    pub fn observe_latency_us(&self, us: u64) {
        self.rec.observe("request_latency_us", us, LATENCY_US_EDGES);
    }

    /// Records the queue depth seen at admission time.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.rec.observe("queue_depth", depth, DEPTH_EDGES);
    }

    /// Retains one completed per-request span.
    pub fn record_span(&self, span: SpanNode) {
        self.rec.record_span(span);
    }

    /// The outcome counters as a JSON object with every [`COUNTERS`]
    /// name present (zeros included) in stable order — the `stats`
    /// case's `metrics` field.
    pub fn counters_snapshot(&self) -> Value {
        Value::Object(
            COUNTERS
                .iter()
                .map(|&n| (n.to_owned(), Value::U64(self.rec.counter(n))))
                .collect(),
        )
    }

    /// The full recorder snapshot (`{counters, histograms, spans}`) —
    /// the `metrics` case's result payload. Deterministic field order;
    /// counts and bucket edges only, no timestamps.
    pub fn snapshot(&self) -> Value {
        self.rec.snapshot()
    }

    /// This server's counters, gauges and histograms merged with a second
    /// recorder (the process-global engine one). The two namespaces are
    /// disjoint by construction — request-outcome counters here,
    /// `flow_cache.*` / `par_map.*` / `pd_flow.*` / `engine.*` there —
    /// so a merge is a union; on an unexpected name collision the
    /// server-local entry wins.
    #[allow(clippy::type_complexity)]
    fn merged(
        &self,
        other: &Recorder,
    ) -> (
        Vec<(String, u64)>,
        Vec<(String, i64)>,
        Vec<(String, Histogram)>,
    ) {
        let mut counters: BTreeMap<String, u64> = other.counters_sorted().into_iter().collect();
        counters.extend(self.rec.counters_sorted());
        // Span-ring accounting joins the counter families (this
        // server's per-request ring, not the global engine ring) so
        // drop accounting is visible to text scrapes too.
        counters.extend(m3d_core::obs::span_ring_counters(&self.rec));
        let mut gauges: BTreeMap<String, i64> = other.gauges_sorted().into_iter().collect();
        gauges.extend(self.rec.gauges_sorted());
        let mut hists: BTreeMap<String, Histogram> = other.hists_sorted().into_iter().collect();
        hists.extend(self.rec.hists_sorted());
        (
            counters.into_iter().collect(),
            gauges.into_iter().collect(),
            hists.into_iter().collect(),
        )
    }

    /// [`Metrics::snapshot`] with `other`'s counters, gauges and
    /// histograms merged in (the `metrics` wire case). The span ring stays
    /// server-local: per-request spans belong to this server, and the
    /// global ring holds whole-run engine spans that are not request
    /// observability.
    pub fn merged_snapshot(&self, other: &Recorder) -> Value {
        let (counters, gauges, hists) = self.merged(other);
        Value::Object(vec![
            (
                "counters".to_owned(),
                Value::Object(
                    counters
                        .into_iter()
                        .map(|(n, v)| (n, Value::U64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Value::Object(
                    gauges
                        .into_iter()
                        .map(|(n, v)| (n, Value::I64(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Value::Object(hists.into_iter().map(|(n, h)| (n, h.to_value())).collect()),
            ),
            (
                "spans".to_owned(),
                Value::Object(vec![
                    ("dropped".to_owned(), Value::U64(self.rec.spans_dropped())),
                    ("recorded".to_owned(), Value::U64(self.rec.spans_recorded())),
                    (
                        "retained".to_owned(),
                        Value::U64(self.rec.spans_retained() as u64),
                    ),
                ]),
            ),
        ])
    }

    /// The merged counters, gauges and histograms rendered as a Prometheus text
    /// exposition (the `metrics_text` wire case). Same grammar and
    /// determinism rules as [`m3d_core::obs::render_text`].
    pub fn merged_text(&self, other: &Recorder) -> String {
        let (counters, gauges, hists) = self.merged(other);
        render_parts(&counters, &gauges, &hists)
    }
}

/// Latency percentile summary over recorded microsecond samples.
///
/// Used by the load generator; percentiles use the nearest-rank
/// definition on the sorted sample set, so equal sample sets summarise
/// identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Median (P50) in µs.
    pub p50_us: u64,
    /// P95 in µs.
    pub p95_us: u64,
    /// P99 in µs.
    pub p99_us: u64,
    /// Slowest sample in µs.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarises `samples_us` (unsorted; empty yields all zeros).
    pub fn of(samples_us: &[u64]) -> Self {
        if samples_us.is_empty() {
            return Self {
                count: 0,
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
                max_us: 0,
            };
        }
        let mut sorted = samples_us.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        Self {
            count: sorted.len(),
            p50_us: rank(0.50),
            p95_us: rank(0.95),
            p99_us: rank(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_reflects_bumps_and_includes_zeros() {
        let m = Metrics::new();
        m.bump("accepted");
        m.bump("accepted");
        m.bump("executed");
        let s = m.counters_snapshot();
        assert_eq!(s.get("accepted").unwrap().as_u64(), Some(2));
        assert_eq!(s.get("executed").unwrap().as_u64(), Some(1));
        assert_eq!(s.get("rejected").unwrap().as_u64(), Some(0));
        assert_eq!(s.get("failed").unwrap().as_u64(), Some(0));
        assert_eq!(m.get("accepted"), 2);
    }

    #[test]
    fn full_snapshot_carries_histograms_and_spans() {
        let m = Metrics::new();
        m.observe_latency_us(1_234);
        m.observe_queue_depth(3);
        m.record_span(SpanNode::new("req:sensitivity"));
        let s = m.snapshot();
        let hists = s.get("histograms").unwrap();
        assert_eq!(
            hists
                .get("request_latency_us")
                .unwrap()
                .get("total")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            hists
                .get("queue_depth")
                .unwrap()
                .get("total")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            s.get("spans").unwrap().get("recorded").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn merged_views_union_disjoint_recorders() {
        let m = Metrics::new();
        m.bump("accepted");
        m.bump("executed");
        m.observe_latency_us(10);
        let global = Recorder::new();
        global.incr("flow_cache.hits", 4);
        global.incr("accepted", 100); // collision: server-local wins
        global.gauge_set("fleet.replica0.in_flight", 2);
        m.recorder().gauge_set("queue_len", 5);

        let s = m.merged_snapshot(&global);
        let counters = s.get("counters").unwrap();
        assert_eq!(counters.get("accepted").unwrap().as_u64(), Some(1));
        assert_eq!(counters.get("flow_cache.hits").unwrap().as_u64(), Some(4));
        let gauges = s.get("gauges").unwrap();
        assert_eq!(
            gauges.get("fleet.replica0.in_flight").unwrap().as_i64(),
            Some(2)
        );
        assert_eq!(gauges.get("queue_len").unwrap().as_i64(), Some(5));
        assert!(s
            .get("histograms")
            .unwrap()
            .get("request_latency_us")
            .is_some());

        let text = m.merged_text(&global);
        m3d_core::obs::validate_exposition(&text).expect("exposition parses");
        assert!(text.contains("flow_cache_hits 4\n"), "{text}");
        assert!(text.contains("executed 1\n"), "{text}");
        assert!(text.contains("fleet_replica0_in_flight 2\n"), "{text}");
        assert!(text.contains("request_latency_us_count 1\n"), "{text}");
        assert!(text.contains("spans_dropped 0\n"), "{text}");
    }

    #[test]
    fn span_drop_accounting_reaches_both_expositions() {
        let m = Metrics::new();
        m.record_span(SpanNode::new("req:pd_flow"));
        let global = Recorder::new();
        let spans = m.merged_snapshot(&global);
        let spans = spans.get("spans").unwrap();
        assert_eq!(spans.get("dropped").unwrap().as_u64(), Some(0));
        assert_eq!(spans.get("recorded").unwrap().as_u64(), Some(1));
        let text = m.merged_text(&global);
        assert!(text.contains("spans_recorded 1\n"), "{text}");
        assert!(text.contains("spans_dropped 0\n"), "{text}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::of(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(LatencySummary::of(&[]).p99_us, 0);
        assert_eq!(LatencySummary::of(&[7]).p50_us, 7);
    }
}
