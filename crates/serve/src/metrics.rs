//! Service counters, lock-free and snapshot-able as a [`Value`].
//!
//! Counters split along the axes the acceptance tests care about:
//! every accepted request is eventually exactly one of `executed`
//! (a leader actually ran the case), `cache_hits` (replayed from the
//! response cache), `coalesced` (joined an in-flight leader), or a
//! failure (`timed_out`, `failed`). `rejected` counts backpressure
//! refusals, which are answered — never silently dropped.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Value;

/// Monotonic service counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests refused with 429 (queue full) or 503 (draining).
    pub rejected: AtomicU64,
    /// Leader executions: the case actually ran.
    pub executed: AtomicU64,
    /// Served from the response cache.
    pub cache_hits: AtomicU64,
    /// Joined another request's in-flight execution.
    pub coalesced: AtomicU64,
    /// Deadline expiries (queued too long or overran while waiting).
    pub timed_out: AtomicU64,
    /// Case executions that returned an error.
    pub failed: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time JSON view (field order fixed).
    pub fn snapshot(&self) -> Value {
        let read = |c: &AtomicU64| Value::U64(c.load(Ordering::Relaxed));
        Value::Object(vec![
            ("accepted".to_owned(), read(&self.accepted)),
            ("rejected".to_owned(), read(&self.rejected)),
            ("executed".to_owned(), read(&self.executed)),
            ("cache_hits".to_owned(), read(&self.cache_hits)),
            ("coalesced".to_owned(), read(&self.coalesced)),
            ("timed_out".to_owned(), read(&self.timed_out)),
            ("failed".to_owned(), read(&self.failed)),
        ])
    }
}

/// Latency percentile summary over recorded microsecond samples.
///
/// Used by the load generator; percentiles use the nearest-rank
/// definition on the sorted sample set, so equal sample sets summarise
/// identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Median (P50) in µs.
    pub p50_us: u64,
    /// P95 in µs.
    pub p95_us: u64,
    /// P99 in µs.
    pub p99_us: u64,
    /// Slowest sample in µs.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarises `samples_us` (unsorted; empty yields all zeros).
    pub fn of(samples_us: &[u64]) -> Self {
        if samples_us.is_empty() {
            return Self {
                count: 0,
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
                max_us: 0,
            };
        }
        let mut sorted = samples_us.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        Self {
            count: sorted.len(),
            p50_us: rank(0.50),
            p95_us: rank(0.95),
            p99_us: rank(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let m = Metrics::new();
        Metrics::bump(&m.accepted);
        Metrics::bump(&m.accepted);
        Metrics::bump(&m.executed);
        let s = m.snapshot();
        assert_eq!(s.get("accepted").unwrap().as_u64(), Some(2));
        assert_eq!(s.get("executed").unwrap().as_u64(), Some(1));
        assert_eq!(s.get("rejected").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::of(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(LatencySummary::of(&[]).p99_us, 0);
        assert_eq!(LatencySummary::of(&[7]).p50_us, 7);
    }
}
