//! One supervised `m3d-serve` child process.
//!
//! The gateway owns N of these. Each wraps a child process plus the
//! routing-relevant view of it: whether it is up (spawned, announced
//! its port, and still answering `ready` probes), whether an operator
//! drained it, and the gauges the fleet metrics report (in-flight
//! forwards, last probed queue depth, restarts).
//!
//! Lifecycle: [`Replica::spawn_now`] starts the child and blocks until
//! it prints its `{"listening":"host:port"}` announce line (the server
//! binds before announcing, so an announced replica is accepting).
//! [`Replica::tick`] — called from the gateway's supervisor thread —
//! reaps crashed children, probes live ones, and respawns dead ones
//! under bounded exponential backoff (250 ms doubling to 4 s, reset by
//! a healthy probe). Forwarders call [`Replica::mark_down`] the moment
//! a connection dies mid-request so routing stops offering the replica
//! before the next tick notices.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use serde::Value;

use crate::protocol::{Request, Response, CASE_READY};

/// First respawn delay after a crash.
const BACKOFF_MIN: Duration = Duration::from_millis(250);
/// Backoff ceiling: a persistently crashing replica is retried at this
/// cadence forever rather than giving up (the fleet may be mid-deploy).
const BACKOFF_MAX: Duration = Duration::from_secs(4);
/// How long a freshly spawned child gets to announce its port.
const ANNOUNCE_TIMEOUT: Duration = Duration::from_secs(10);
/// Connect/read budget for one `ready` probe.
const PROBE_TIMEOUT: Duration = Duration::from_millis(1_500);

/// How a replica child is launched.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Path to the `m3d-serve` binary.
    pub serve_bin: PathBuf,
    /// Worker threads per replica.
    pub workers: usize,
    /// Queue depth per replica.
    pub queue_depth: usize,
    /// Default per-request deadline handed to the replica.
    pub default_timeout_ms: u64,
}

/// The mutable process half, behind one lock: the child handle, its
/// announced address and the respawn backoff schedule.
#[derive(Debug, Default)]
struct Proc {
    child: Option<Child>,
    addr: Option<SocketAddr>,
    /// Delay before the *next* respawn attempt.
    backoff: Option<Duration>,
    /// Earliest instant a respawn may be attempted; `None` = immediately.
    retry_at: Option<Instant>,
}

/// One supervised replica slot.
#[derive(Debug)]
pub struct Replica {
    index: usize,
    cfg: ReplicaConfig,
    proc_: Mutex<Proc>,
    up: AtomicBool,
    draining: AtomicBool,
    /// Requests currently forwarded to this replica.
    pub(crate) in_flight: AtomicI64,
    /// Queue depth from the last successful `ready` probe.
    pub(crate) queue_len: AtomicI64,
    /// Respawns after a crash (the initial spawn does not count).
    pub(crate) restarts: AtomicU64,
}

impl Replica {
    /// An empty slot; call [`Replica::spawn_now`] to start the child.
    pub fn new(index: usize, cfg: ReplicaConfig) -> Self {
        Self {
            index,
            cfg,
            proc_: Mutex::new(Proc::default()),
            up: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            in_flight: AtomicI64::new(0),
            queue_len: AtomicI64::new(0),
            restarts: AtomicU64::new(0),
        }
    }

    /// This replica's fleet index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The child's announced address, while one is running.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.proc_.lock().expect("replica poisoned").addr
    }

    /// The child's OS pid, while one is running.
    pub fn pid(&self) -> Option<u32> {
        self.proc_
            .lock()
            .expect("replica poisoned")
            .child
            .as_ref()
            .map(Child::id)
    }

    /// Spawned, announced, and not yet observed dead.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Operator-drained (up but excluded from routing).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Sets or clears the operator drain flag.
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::SeqCst);
    }

    /// Up and not draining: the ring may route fresh work here.
    pub fn is_routable(&self) -> bool {
        self.is_up() && !self.is_draining()
    }

    /// Called by a forwarder whose connection to this replica died:
    /// stop routing here immediately; the supervisor tick confirms and
    /// respawns.
    pub fn mark_down(&self) {
        self.up.store(false, Ordering::SeqCst);
    }

    /// Starts the child and waits for its announce line.
    ///
    /// # Errors
    ///
    /// Spawn failures, a missing/unparsable announce line, or an
    /// announce timeout. The child is killed on the latter two.
    pub fn spawn_now(&self) -> std::io::Result<SocketAddr> {
        let mut child = Command::new(&self.cfg.serve_bin)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg(self.cfg.workers.to_string())
            .arg("--queue-depth")
            .arg(self.cfg.queue_depth.to_string())
            .arg("--timeout-ms")
            .arg(self.cfg.default_timeout_ms.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        match read_announce(stdout) {
            Ok(addr) => {
                let mut p = self.proc_.lock().expect("replica poisoned");
                p.child = Some(child);
                p.addr = Some(addr);
                p.retry_at = None;
                drop(p);
                self.up.store(true, Ordering::SeqCst);
                Ok(addr)
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(e)
            }
        }
    }

    /// Kills the child outright (crash injection / gateway shutdown).
    /// The supervisor respawns it on a later tick unless the gateway is
    /// draining.
    pub fn kill(&self) {
        self.up.store(false, Ordering::SeqCst);
        let mut p = self.proc_.lock().expect("replica poisoned");
        if let Some(mut child) = p.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        p.addr = None;
    }

    /// One supervisor heartbeat: reap a dead child, probe a live one
    /// (updating the queue-depth gauge and resetting backoff), and
    /// respawn a dead slot once its backoff expires. Returns `true`
    /// when this tick performed a respawn.
    pub fn tick(&self, gateway_draining: bool) -> bool {
        let addr = {
            let mut p = self.proc_.lock().expect("replica poisoned");
            if let Some(child) = p.child.as_mut() {
                if child.try_wait().ok().flatten().is_some() {
                    // Exited on its own (crash or external kill): reap.
                    p.child = None;
                    p.addr = None;
                    self.up.store(false, Ordering::SeqCst);
                }
            }
            p.addr
        };

        if self.is_up() {
            if let Some(addr) = addr {
                match probe_ready(addr) {
                    Ok(queue_len) => {
                        self.queue_len.store(queue_len, Ordering::SeqCst);
                        // A healthy probe forgives crash history.
                        self.proc_.lock().expect("replica poisoned").backoff = None;
                        return false;
                    }
                    Err(_) => {
                        // Wedged: unreachable or not answering probes.
                        self.kill();
                    }
                }
            }
        }
        if gateway_draining {
            return false;
        }

        // Down here. First tick after the death schedules the respawn
        // one backoff out (crashes are never respawned instantly — a
        // crash-looping binary must not spin); later ticks attempt it
        // once the schedule comes due, doubling the delay on failure.
        {
            let mut p = self.proc_.lock().expect("replica poisoned");
            if p.child.is_some() {
                return false; // raced with a concurrent spawn
            }
            let delay = p.backoff.unwrap_or(BACKOFF_MIN);
            match p.retry_at {
                None => {
                    p.retry_at = Some(Instant::now() + delay);
                    p.backoff = Some((delay * 2).min(BACKOFF_MAX));
                    return false;
                }
                Some(at) if Instant::now() < at => return false,
                Some(_) => {}
            }
        }
        match self.spawn_now() {
            Ok(_) => {
                self.restarts.fetch_add(1, Ordering::SeqCst);
                true
            }
            Err(_) => {
                let mut p = self.proc_.lock().expect("replica poisoned");
                let delay = p.backoff.unwrap_or(BACKOFF_MIN);
                p.retry_at = Some(Instant::now() + delay);
                p.backoff = Some((delay * 2).min(BACKOFF_MAX));
                false
            }
        }
    }

    /// Best-effort graceful stop: ask the child to drain over the wire,
    /// then wait for it to exit (killing after `grace`).
    pub fn stop(&self, grace: Duration) {
        self.up.store(false, Ordering::SeqCst);
        let (addr, had_child) = {
            let p = self.proc_.lock().expect("replica poisoned");
            (p.addr, p.child.is_some())
        };
        if let (Some(addr), true) = (addr, had_child) {
            let _ = send_one(addr, &Request::new(0, "shutdown", Value::Null));
        }
        let deadline = Instant::now() + grace;
        loop {
            let mut p = self.proc_.lock().expect("replica poisoned");
            match p.child.as_mut() {
                None => return,
                Some(child) => {
                    if child.try_wait().ok().flatten().is_some() {
                        p.child = None;
                        p.addr = None;
                        return;
                    }
                }
            }
            drop(p);
            if Instant::now() >= deadline {
                self.kill();
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// Reads the child's `{"listening":"host:port"}` announce line off its
/// piped stdout, with a hard timeout (a wedged child must not hang the
/// gateway). The pipe is then drained to EOF on a detached thread so a
/// chatty child never blocks on a full pipe.
fn read_announce(stdout: std::process::ChildStdout) -> std::io::Result<SocketAddr> {
    let (tx, rx) = mpsc::channel();
    std::thread::Builder::new()
        .name("m3d-gateway-announce".to_owned())
        .spawn(move || {
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            let read = reader.read_line(&mut line);
            let _ = tx.send(read.map(|_| line));
            let _ = std::io::copy(&mut reader, &mut std::io::sink());
        })
        .expect("spawn announce reader");
    let line = rx
        .recv_timeout(ANNOUNCE_TIMEOUT)
        .map_err(|_| err_other("replica did not announce within 10s"))??;
    parse_announce(&line).ok_or_else(|| err_other(format!("bad announce line: {line:?}")))
}

/// Extracts the address from an announce line.
fn parse_announce(line: &str) -> Option<SocketAddr> {
    let v = serde_json::from_str_value(line.trim()).ok()?;
    match v.get("listening") {
        Some(Value::Str(s)) => s.parse().ok(),
        _ => None,
    }
}

/// One `ready` probe; returns the replica's queue depth.
fn probe_ready(addr: SocketAddr) -> Result<i64, String> {
    let resp = send_one(addr, &Request::new(0, CASE_READY, Value::Null))?;
    match resp {
        Response::Ok { result, .. } => {
            let ready = matches!(result.get("ready"), Some(Value::Bool(true)));
            if !ready {
                return Err("replica reports not ready".to_owned());
            }
            Ok(result
                .get("queue_len")
                .and_then(Value::as_u64)
                .map_or(0, |n| i64::try_from(n).unwrap_or(i64::MAX)))
        }
        Response::Err { error, .. } => Err(error),
    }
}

/// Sends one request on a fresh short-deadline connection and parses
/// the single response line.
pub(crate) fn send_one(addr: SocketAddr, req: &Request) -> Result<Response, String> {
    let stream = TcpStream::connect_timeout(&addr, PROBE_TIMEOUT).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(PROBE_TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(PROBE_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| e.to_string())?;
    if line.is_empty() {
        return Err("replica closed the connection".to_owned());
    }
    Response::parse(&line)
}

fn err_other(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_lines_parse() {
        assert_eq!(
            parse_announce("{\"listening\":\"127.0.0.1:7733\"}\n"),
            Some("127.0.0.1:7733".parse().unwrap())
        );
        assert_eq!(parse_announce("{\"listening\":42}"), None);
        assert_eq!(parse_announce("starting up..."), None);
    }

    #[test]
    fn flags_gate_routability() {
        let r = Replica::new(
            3,
            ReplicaConfig {
                serve_bin: PathBuf::from("/nonexistent"),
                workers: 1,
                queue_depth: 1,
                default_timeout_ms: 1_000,
            },
        );
        assert_eq!(r.index(), 3);
        assert!(!r.is_up(), "a fresh slot is down until spawned");
        assert!(!r.is_routable());
        r.up.store(true, Ordering::SeqCst);
        assert!(r.is_routable());
        r.set_draining(true);
        assert!(r.is_up() && !r.is_routable(), "draining removes routing");
        r.set_draining(false);
        r.mark_down();
        assert!(!r.is_routable());
    }

    #[test]
    fn spawn_failure_surfaces_as_error() {
        let r = Replica::new(
            0,
            ReplicaConfig {
                serve_bin: PathBuf::from("/nonexistent/m3d-serve"),
                workers: 1,
                queue_depth: 1,
                default_timeout_ms: 1_000,
            },
        );
        assert!(r.spawn_now().is_err());
        assert!(!r.is_up());
    }
}
