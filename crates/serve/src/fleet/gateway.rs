//! The fleet gateway: accept loop, routing, forwarding and fleet
//! metrics.
//!
//! ```text
//!  client ──NDJSON──▶ gateway connection thread
//!                        │ consistent-hash on the request content key
//!                        ▼
//!                ┌─ replica 0 (m3d-serve child) ─┐
//!                ├─ replica 1                    ├─ shared M3D_CACHE_DIR
//!                └─ replica 2                    ┘
//! ```
//!
//! The gateway speaks the exact same wire protocol as a single
//! `m3d-serve`: clients need no changes. Experiment cases are routed by
//! consistent-hashing the request's *content key* — the same
//! [`Request::key`] the replica's response cache is keyed on — so
//! repeats of a request always land on the replica already holding its
//! cached response. Admin cases are answered by the gateway itself
//! (fleet-wide view) or forwarded round-robin (`ping`, `cases`).
//!
//! Every registry case is idempotent and its payload deterministic, so
//! when a replica dies mid-request the gateway transparently retries on
//! the next ring-adjacent survivor; the client sees one response,
//! byte-identical in its `result` payload to what the dead replica
//! would have sent.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use m3d_bench::registry;
use m3d_core::obs::{
    render_parts, span_ring_counters, SpanNode, StitchedTrace, TraceContext, TraceSink,
};
use m3d_core::ErrorCode;
use serde::Value;

use super::replica::{send_one, Replica, ReplicaConfig};
use super::ring::{Ring, DEFAULT_VNODES};
use crate::metrics::Metrics;
use crate::protocol::{
    key_hex, Request, Response, CASE_CASES, CASE_DRAIN, CASE_HEALTH, CASE_METRICS,
    CASE_METRICS_TEXT, CASE_PING, CASE_READY, CASE_SHUTDOWN, CASE_STATS, CASE_TRACES, CASE_UNDRAIN,
};
use crate::server::{trace_filter, ScrapeGate};

/// Backpressure hint when no replica is routable right now.
const NO_REPLICA_RETRY_MS: u64 = 250;
/// Connect budget for a forwarding connection to a replica.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(2_000);
/// How long a graceful replica stop may take before the child is
/// killed.
const STOP_GRACE: Duration = Duration::from_secs(10);

/// Tunables for [`serve_fleet`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Gateway bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Replica child processes to spawn and supervise.
    pub replicas: usize,
    /// Virtual nodes per replica on the routing ring.
    pub vnodes: usize,
    /// Path to the `m3d-serve` binary replicas run.
    pub serve_bin: PathBuf,
    /// Worker threads per replica.
    pub workers: usize,
    /// Queue depth per replica.
    pub queue_depth: usize,
    /// Default per-request deadline handed to replicas.
    pub default_timeout_ms: u64,
    /// Supervisor heartbeat: probe/reap/respawn cadence.
    pub probe_interval_ms: u64,
    /// Per-connection minimum interval between fleet metrics scrapes
    /// (each scrape fans out to every live replica, so this guards N
    /// connections, not one). `0` disables.
    pub scrape_min_interval_ms: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            replicas: 3,
            vnodes: DEFAULT_VNODES,
            serve_bin: PathBuf::from("m3d-serve"),
            workers: 2,
            queue_depth: 64,
            default_timeout_ms: 120_000,
            probe_interval_ms: 200,
            scrape_min_interval_ms: 25,
        }
    }
}

/// State shared by the accept loop, connection threads and the
/// supervisor.
struct FleetShared {
    ring: Ring,
    replicas: Vec<Replica>,
    metrics: Metrics,
    /// Flight recorder of stitched end-to-end traces: the fleet-wide
    /// view behind the `traces` case (each replica also keeps its own
    /// local recorder).
    traces: TraceSink,
    /// Round-robin cursor for admin forwards.
    rr: AtomicUsize,
    shutdown: AtomicBool,
    addr: SocketAddr,
    scrape_min_interval: Duration,
}

impl FleetShared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }

    /// Which replicas the ring may currently route to.
    fn routable_mask(&self) -> Vec<bool> {
        self.replicas.iter().map(Replica::is_routable).collect()
    }
}

/// A running gateway: resolved address, threads to join, and the
/// supervised fleet.
pub struct FleetHandle {
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    shared: Arc<FleetShared>,
}

impl FleetHandle {
    /// The gateway's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replica count (configured, not currently-up).
    pub fn replicas(&self) -> usize {
        self.shared.replicas.len()
    }

    /// The announced address of replica `i`, while it is running.
    pub fn replica_addr(&self, i: usize) -> Option<SocketAddr> {
        self.shared.replicas.get(i).and_then(Replica::addr)
    }

    /// The OS pid of replica `i`'s child, while it is running (crash
    /// injection from outside the gateway's own supervision).
    pub fn replica_pid(&self, i: usize) -> Option<u32> {
        self.shared.replicas.get(i).and_then(Replica::pid)
    }

    /// Kills replica `i`'s child outright (crash injection). The
    /// supervisor respawns it after its backoff. Returns `false` for an
    /// out-of-range index.
    pub fn kill_replica(&self, i: usize) -> bool {
        match self.shared.replicas.get(i) {
            Some(r) => {
                r.kill();
                true
            }
            None => false,
        }
    }

    /// Starts a graceful fleet drain, exactly like a
    /// `{"case":"shutdown"}` request.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Joins the accept loop and supervisor, then stops every replica
    /// gracefully. Call [`FleetHandle::shutdown`] first or this blocks
    /// forever.
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            t.join().expect("gateway accept thread panicked");
        }
        if let Some(t) = self.supervisor.take() {
            t.join().expect("gateway supervisor thread panicked");
        }
        std::thread::scope(|s| {
            for r in &self.shared.replicas {
                s.spawn(|| r.stop(STOP_GRACE));
            }
        });
    }
}

impl Drop for FleetHandle {
    fn drop(&mut self) {
        // Children must not outlive the gateway; a graceful path has
        // already reaped them and this is a no-op.
        for r in &self.shared.replicas {
            r.kill();
        }
    }
}

/// Spawns the replica fleet, binds the gateway socket, and starts the
/// accept loop and supervisor.
///
/// # Errors
///
/// Propagates bind failures and any replica's initial spawn/announce
/// failure (the fleet starts complete or not at all; *re*spawns are
/// the supervisor's retried-with-backoff job).
pub fn serve_fleet(cfg: &GatewayConfig) -> std::io::Result<FleetHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let rcfg = ReplicaConfig {
        serve_bin: cfg.serve_bin.clone(),
        workers: cfg.workers.max(1),
        queue_depth: cfg.queue_depth.max(1),
        default_timeout_ms: cfg.default_timeout_ms.max(1),
    };
    let replicas: Vec<Replica> = (0..cfg.replicas.max(1))
        .map(|i| Replica::new(i, rcfg.clone()))
        .collect();
    for r in &replicas {
        if let Err(e) = r.spawn_now() {
            for spawned in &replicas {
                spawned.kill();
            }
            return Err(e);
        }
    }

    let shared = Arc::new(FleetShared {
        ring: Ring::new(replicas.len(), cfg.vnodes.max(1)),
        replicas,
        metrics: Metrics::new(),
        traces: TraceSink::default(),
        rr: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        addr,
        scrape_min_interval: Duration::from_millis(cfg.scrape_min_interval_ms),
    });

    let supervisor = {
        let shared = Arc::clone(&shared);
        let interval = Duration::from_millis(cfg.probe_interval_ms.clamp(10, 10_000));
        std::thread::Builder::new()
            .name("m3d-gateway-supervisor".to_owned())
            .spawn(move || supervisor_loop(&shared, interval))
            .expect("spawn supervisor")
    };
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("m3d-gateway-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn gateway accept loop")
    };

    Ok(FleetHandle {
        addr,
        accept: Some(accept),
        supervisor: Some(supervisor),
        shared,
    })
}

/// Probes, reaps and respawns replicas, and refreshes the per-replica
/// gauge families, until the gateway drains.
fn supervisor_loop(shared: &Arc<FleetShared>, interval: Duration) {
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        for r in &shared.replicas {
            r.tick(draining);
            let i = r.index();
            let rec = shared.metrics.recorder();
            rec.gauge_set(&format!("fleet.replica{i}.up"), i64::from(r.is_up()));
            rec.gauge_set(
                &format!("fleet.replica{i}.queue_len"),
                r.queue_len.load(Ordering::SeqCst),
            );
            rec.gauge_set(
                &format!("fleet.replica{i}.in_flight"),
                r.in_flight.load(Ordering::SeqCst),
            );
            rec.gauge_set(
                &format!("fleet.replica{i}.restarts"),
                i64::try_from(r.restarts.load(Ordering::SeqCst)).unwrap_or(i64::MAX),
            );
        }
        if draining {
            return;
        }
        std::thread::sleep(interval);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<FleetShared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name("m3d-gateway-conn".to_owned())
                    .spawn(move || {
                        let _ = handle_connection(&shared, stream);
                    })
                    .expect("spawn gateway connection handler");
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

/// A pooled forwarding connection to one replica incarnation.
struct ReplicaConn {
    stream: BufReader<TcpStream>,
    /// The address the connection was made to; a respawned replica
    /// announces a new port, which invalidates the pooled connection.
    addr: SocketAddr,
}

/// Reads client request lines and writes one response line each —
/// answered locally or forwarded to a replica. Forwarding connections
/// are pooled per client connection so a client's repeat requests ride
/// one warm TCP path to their owning replica.
fn handle_connection(shared: &Arc<FleetShared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let mut scrapes = ScrapeGate::new(shared.scrape_min_interval);
    let mut pool: HashMap<usize, ReplicaConn> = HashMap::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let out = match Request::parse(&line) {
            Err(e) => Response::Err {
                id: 0,
                code: ErrorCode::BadRequest,
                error: e,
                retry_after_ms: None,
            }
            .to_line(),
            Ok(req) => dispatch(shared, req, &mut scrapes, &mut pool),
        };
        writer.write_all(out.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Routes one parsed request and returns the response *line* (local
/// responses serialised, forwarded responses passed through with the
/// serving replica's index tagged into the envelope).
fn dispatch(
    shared: &Arc<FleetShared>,
    req: Request,
    scrapes: &mut ScrapeGate,
    pool: &mut HashMap<usize, ReplicaConn>,
) -> String {
    match req.case.as_str() {
        CASE_HEALTH => return health_response(shared, &req).to_line(),
        CASE_READY => return ready_response(shared, &req).to_line(),
        CASE_STATS => return stats_response(shared, &req).to_line(),
        CASE_METRICS | CASE_METRICS_TEXT => {
            if let Err(wait_ms) = scrapes.admit() {
                shared.metrics.bump("scrapes_limited");
                return Response::Err {
                    id: req.id,
                    code: ErrorCode::Overloaded,
                    error: format!("`{}` scraped too fast on this connection", req.case),
                    retry_after_ms: Some(wait_ms),
                }
                .to_line();
            }
            return metrics_response(shared, &req).to_line();
        }
        CASE_DRAIN | CASE_UNDRAIN => return drain_response(shared, &req).to_line(),
        CASE_TRACES => {
            // Answered locally: the gateway's sink holds the stitched
            // fleet-wide traces (replicas answer with their local view
            // when asked directly).
            return match trace_filter(&req.params) {
                Ok(filter) => ok(&req, shared.traces.render(&filter)).to_line(),
                Err(e) => Response::Err {
                    id: req.id,
                    code: ErrorCode::BadRequest,
                    error: e,
                    retry_after_ms: None,
                }
                .to_line(),
            };
        }
        CASE_SHUTDOWN => {
            shared.begin_shutdown();
            return Response::Ok {
                id: req.id,
                case: req.case.clone(),
                key: key_hex(req.key()),
                cached: false,
                coalesced: false,
                result: Value::Object(vec![("draining".to_owned(), Value::Bool(true))]),
                trace: None,
            }
            .to_line();
        }
        CASE_PING | CASE_CASES => return forward_round_robin(shared, &req, pool),
        other => {
            // Same front door as a single server: reject malformed
            // requests before they cost a forward.
            match registry::find(other) {
                None => {
                    return Response::Err {
                        id: req.id,
                        code: ErrorCode::UnknownCase,
                        error: format!("unknown case `{other}`"),
                        retry_after_ms: None,
                    }
                    .to_line();
                }
                Some(case) => {
                    if let Err(e) = case.validate(req.quick, &req.params) {
                        shared.metrics.bump("rejected");
                        return Response::Err {
                            id: req.id,
                            code: e.code,
                            error: e.message,
                            retry_after_ms: None,
                        }
                        .to_line();
                    }
                }
            }
        }
    }
    forward_routed(shared, &req, pool)
}

/// Forwards an experiment case to its ring owner, retrying ring-
/// adjacent survivors when a replica dies mid-request (idempotent
/// cases, deterministic payloads — a retry is always safe). A
/// `replica` delivery field pins the target instead and never fails
/// over (the cross-replica identity check needs *that* replica's
/// answer or an error, not a silent fallback).
///
/// Every forward opens a `gateway` root span: one `attempt:{k}` child
/// per replica tried (the serving replica's own `req:{case}` subtree
/// stitched under the winning attempt), with `attempts`/`retries`
/// counters on the root. The stitched tree lands in the gateway's
/// flight recorder; when the client sent `trace: true` it also
/// replaces the replica's local trace in the response envelope, so the
/// client sees the whole request end to end.
fn forward_routed(
    shared: &Arc<FleetShared>,
    req: &Request,
    pool: &mut HashMap<usize, ReplicaConn>,
) -> String {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.metrics.bump("rejected");
        return Response::Err {
            id: req.id,
            code: ErrorCode::Draining,
            error: "gateway is draining".to_owned(),
            retry_after_ms: None,
        }
        .to_line();
    }

    let born = Instant::now();
    let key = req.key();
    // Root the trace here (or adopt an upstream context): replicas are
    // handed a per-attempt child context so their spans join this trace
    // instead of rooting their own.
    let ctx = req
        .trace_ctx
        .unwrap_or_else(|| TraceContext::root(&req.case, key, req.id));
    let mut fwd = req.clone();
    let mut attempts: Vec<SpanNode> = Vec::new();
    let forced = match req.replica {
        Some(k) => match usize::try_from(k) {
            Ok(k) if k < shared.replicas.len() => Some(k),
            _ => {
                shared.metrics.bump("rejected");
                return Response::Err {
                    id: req.id,
                    code: ErrorCode::BadRequest,
                    error: format!(
                        "`replica` {k} out of range (fleet has {})",
                        shared.replicas.len()
                    ),
                    retry_after_ms: None,
                }
                .to_line();
            }
        },
        None => None,
    };

    let mut eligible = shared.routable_mask();
    let max_attempts = if forced.is_some() {
        1
    } else {
        shared.replicas.len()
    };
    for attempt in 0..max_attempts {
        let target = match forced {
            Some(k) => {
                if !shared.replicas[k].is_up() {
                    shared.metrics.bump("rejected");
                    return Response::Err {
                        id: req.id,
                        code: ErrorCode::Overloaded,
                        error: format!("replica {k} is down"),
                        retry_after_ms: Some(NO_REPLICA_RETRY_MS),
                    }
                    .to_line();
                }
                k
            }
            None => match shared.ring.route_available(key, &eligible) {
                Some(t) => t,
                None => break,
            },
        };
        let mut attempt_span = SpanNode::new(format!("attempt:{attempt}"));
        attempt_span.counter("replica", target as u64);
        fwd.trace_ctx = Some(ctx.child(&format!("attempt:{attempt}")));
        let line = fwd.to_line();
        let r = &shared.replicas[target];
        r.in_flight.fetch_add(1, Ordering::SeqCst);
        let sent = forward_line(pool, r, &line);
        r.in_flight.fetch_sub(1, Ordering::SeqCst);
        match sent {
            Ok(resp_line) => {
                shared.metrics.bump("accepted");
                let rec = shared.metrics.recorder();
                rec.incr("gateway.routed", 1);
                rec.incr(&format!("fleet.replica{target}.routed"), 1);
                let elapsed = born.elapsed();
                let elapsed_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
                shared.metrics.observe_latency_us(elapsed_us);

                let mut fields = match serde_json::from_str_value(resp_line.trim()) {
                    Ok(Value::Object(fields)) => fields,
                    // Not an object (a replica bug): pass it through
                    // untouched, untagged and untraced.
                    _ => return resp_line.trim_end().to_owned(),
                };
                let is_ok = fields
                    .iter()
                    .any(|(n, v)| n == "status" && v.as_u64() == Some(200));
                if is_ok {
                    if let Some(sub) = replica_subtree(&fields, &ctx) {
                        attempt_span.children.push(sub);
                    }
                    attempts.push(attempt_span);
                    let root = gateway_root(elapsed, attempts);
                    shared.metrics.record_span(root.clone());
                    let trace_id = ctx.trace_id_hex();
                    record_trace(
                        shared,
                        StitchedTrace {
                            trace_id: trace_id.clone(),
                            case: req.case.clone(),
                            wall_us: elapsed_us,
                            root: root.clone(),
                        },
                    );
                    if req.trace {
                        let doc = Value::Object(vec![
                            ("trace_id".to_owned(), Value::Str(trace_id)),
                            ("root".to_owned(), root.to_value(false)),
                        ]);
                        match fields.iter_mut().find(|(n, _)| n == "trace") {
                            Some((_, v)) => *v = doc,
                            None => fields.push(("trace".to_owned(), doc)),
                        }
                    }
                }
                fields.push(("replica".to_owned(), Value::U64(target as u64)));
                return serde_json::to_string(&Value::Object(fields))
                    .expect("response re-serialises");
            }
            Err(_) => {
                // The connection died with the replica: stop routing
                // here now (the supervisor confirms and respawns) and
                // retry the next ring-adjacent survivor.
                attempt_span.counter("failed", 1);
                attempts.push(attempt_span);
                r.mark_down();
                eligible[target] = false;
                shared.metrics.recorder().incr("gateway.retried", 1);
            }
        }
    }

    shared.metrics.bump("rejected");
    Response::Err {
        id: req.id,
        code: ErrorCode::Overloaded,
        error: "no routable replica".to_owned(),
        retry_after_ms: Some(NO_REPLICA_RETRY_MS),
    }
    .to_line()
}

/// Forwards an admin case (`ping`, `cases`) to the next live replica
/// round-robin — these are replica-agnostic, so spreading them doubles
/// as a cheap liveness exercise of the whole fleet.
fn forward_round_robin(
    shared: &Arc<FleetShared>,
    req: &Request,
    pool: &mut HashMap<usize, ReplicaConn>,
) -> String {
    let line = req.to_line();
    let n = shared.replicas.len();
    for _ in 0..n {
        let target = shared.rr.fetch_add(1, Ordering::SeqCst) % n;
        let r = &shared.replicas[target];
        if !r.is_up() {
            continue;
        }
        match forward_line(pool, r, &line) {
            Ok(resp_line) => {
                shared.metrics.recorder().incr("gateway.admin_forwarded", 1);
                return tag_replica(&resp_line, target);
            }
            Err(_) => {
                r.mark_down();
                shared.metrics.recorder().incr("gateway.retried", 1);
            }
        }
    }
    Response::Err {
        id: req.id,
        code: ErrorCode::Overloaded,
        error: "no routable replica".to_owned(),
        retry_after_ms: Some(NO_REPLICA_RETRY_MS),
    }
    .to_line()
}

/// Sends one request line over the pooled connection to `replica`,
/// reconnecting when there is none yet or the replica was respawned on
/// a new port. Any I/O failure invalidates the pooled connection.
fn forward_line(
    pool: &mut HashMap<usize, ReplicaConn>,
    replica: &Replica,
    line: &str,
) -> Result<String, String> {
    let addr = replica.addr().ok_or("replica has no address")?;
    let stale = pool.get(&replica.index()).is_none_or(|c| c.addr != addr);
    if stale {
        let stream =
            TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT).map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        pool.insert(
            replica.index(),
            ReplicaConn {
                stream: BufReader::new(stream),
                addr,
            },
        );
    }
    let conn = pool.get_mut(&replica.index()).expect("just inserted");
    let io = (|| -> std::io::Result<String> {
        conn.stream.get_mut().write_all(line.as_bytes())?;
        conn.stream.get_mut().write_all(b"\n")?;
        conn.stream.get_mut().flush()?;
        let mut resp = String::new();
        if conn.stream.read_line(&mut resp)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "replica closed the connection",
            ));
        }
        Ok(resp)
    })();
    match io {
        Ok(resp) => Ok(resp),
        Err(e) => {
            pool.remove(&replica.index());
            Err(e.to_string())
        }
    }
}

/// Assembles the gateway root span over the attempt spans (the last
/// attempt is the serving one, carrying the replica's subtree).
fn gateway_root(elapsed: Duration, attempts: Vec<SpanNode>) -> SpanNode {
    let mut root = SpanNode::new("gateway");
    root.wall_ms = elapsed.as_secs_f64() * 1.0e3;
    root.counter("attempts", attempts.len() as u64);
    root.counter("retries", attempts.len() as u64 - 1);
    root.children = attempts;
    root
}

/// Pulls the replica's span subtree out of a forwarded response
/// envelope, accepting it only when it belongs to this trace and
/// parses cleanly (a replica that answers garbage costs us its
/// subtree, not the whole stitched trace).
fn replica_subtree(fields: &[(String, Value)], ctx: &TraceContext) -> Option<SpanNode> {
    let doc = fields.iter().find(|(n, _)| n == "trace").map(|(_, v)| v)?;
    match doc.get("trace_id") {
        Some(Value::Str(id)) if *id == ctx.trace_id_hex() => {}
        _ => return None,
    }
    SpanNode::from_value(doc.get("root")?).ok()
}

/// Records one stitched trace into the gateway's flight recorder,
/// mirroring the sink accounting into the metrics counters.
fn record_trace(shared: &FleetShared, trace: StitchedTrace) {
    let outcome = shared.traces.record(trace);
    let rec = shared.metrics.recorder();
    rec.incr("trace.recorded", 1);
    if outcome.dropped {
        rec.incr("trace.dropped", 1);
    }
    if outcome.slow_retained {
        rec.incr("trace.slow_retained", 1);
    }
}

/// Tags the serving replica's index into the response envelope so
/// clients can attribute responses without the tag ever touching the
/// deterministic `result` payload.
fn tag_replica(resp_line: &str, replica: usize) -> String {
    match serde_json::from_str_value(resp_line.trim()) {
        Ok(Value::Object(mut fields)) => {
            fields.push(("replica".to_owned(), Value::U64(replica as u64)));
            serde_json::to_string(&Value::Object(fields)).expect("response re-serialises")
        }
        // Not an object (a replica bug): pass it through untouched.
        _ => resp_line.trim_end().to_owned(),
    }
}

fn ok(req: &Request, result: Value) -> Response {
    Response::Ok {
        id: req.id,
        case: req.case.clone(),
        key: key_hex(req.key()),
        cached: false,
        coalesced: false,
        result,
        trace: None,
    }
}

fn health_response(shared: &Arc<FleetShared>, req: &Request) -> Response {
    let up = shared.replicas.iter().filter(|r| r.is_up()).count();
    ok(
        req,
        Value::Object(vec![
            ("healthy".to_owned(), Value::Bool(true)),
            (
                "draining".to_owned(),
                Value::Bool(shared.shutdown.load(Ordering::SeqCst)),
            ),
            (
                "replicas".to_owned(),
                Value::U64(shared.replicas.len() as u64),
            ),
            ("replicas_up".to_owned(), Value::U64(up as u64)),
        ]),
    )
}

fn ready_response(shared: &Arc<FleetShared>, req: &Request) -> Response {
    let draining = shared.shutdown.load(Ordering::SeqCst);
    let routable = shared.replicas.iter().filter(|r| r.is_routable()).count();
    let queue_len: i64 = shared
        .replicas
        .iter()
        .map(|r| r.queue_len.load(Ordering::SeqCst).max(0))
        .sum();
    ok(
        req,
        Value::Object(vec![
            ("ready".to_owned(), Value::Bool(!draining && routable > 0)),
            ("draining".to_owned(), Value::Bool(draining)),
            ("replicas_routable".to_owned(), Value::U64(routable as u64)),
            (
                "queue_len".to_owned(),
                Value::U64(u64::try_from(queue_len).unwrap_or(0)),
            ),
        ]),
    )
}

fn stats_response(shared: &Arc<FleetShared>, req: &Request) -> Response {
    let rec = shared.metrics.recorder();
    let replicas = Value::Array(
        shared
            .replicas
            .iter()
            .map(|r| {
                let i = r.index();
                Value::Object(vec![
                    ("index".to_owned(), Value::U64(i as u64)),
                    (
                        "pid".to_owned(),
                        r.pid().map_or(Value::Null, |p| Value::U64(u64::from(p))),
                    ),
                    (
                        "addr".to_owned(),
                        r.addr().map_or(Value::Null, |a| Value::Str(a.to_string())),
                    ),
                    ("up".to_owned(), Value::Bool(r.is_up())),
                    ("draining".to_owned(), Value::Bool(r.is_draining())),
                    (
                        "restarts".to_owned(),
                        Value::U64(r.restarts.load(Ordering::SeqCst)),
                    ),
                    (
                        "routed".to_owned(),
                        Value::U64(rec.counter(&format!("fleet.replica{i}.routed"))),
                    ),
                    (
                        "in_flight".to_owned(),
                        Value::I64(r.in_flight.load(Ordering::SeqCst)),
                    ),
                    (
                        "queue_len".to_owned(),
                        Value::I64(r.queue_len.load(Ordering::SeqCst)),
                    ),
                ])
            })
            .collect(),
    );
    let up = shared.replicas.iter().filter(|r| r.is_up()).count();
    ok(
        req,
        Value::Object(vec![
            ("metrics".to_owned(), shared.metrics.counters_snapshot()),
            (
                "gateway".to_owned(),
                Value::Object(vec![
                    (
                        "routed".to_owned(),
                        Value::U64(rec.counter("gateway.routed")),
                    ),
                    (
                        "retried".to_owned(),
                        Value::U64(rec.counter("gateway.retried")),
                    ),
                    (
                        "drained".to_owned(),
                        Value::U64(rec.counter("gateway.drained")),
                    ),
                    (
                        "admin_forwarded".to_owned(),
                        Value::U64(rec.counter("gateway.admin_forwarded")),
                    ),
                ]),
            ),
            ("replicas".to_owned(), replicas),
            ("replicas_up".to_owned(), Value::U64(up as u64)),
            (
                "draining".to_owned(),
                Value::Bool(shared.shutdown.load(Ordering::SeqCst)),
            ),
        ]),
    )
}

/// The fleet-wide metrics view: every live replica's counters summed
/// under their plain names (so a `metrics` scrape against the gateway
/// reads like one big server), the gateway's own counters under a
/// `gateway.` prefix (its `fleet.replica*` families keep their names),
/// the per-replica gauge families, and the gateway's own latency
/// histogram. Replica histograms are not aggregated — only counts
/// cross the wire, not bucket edges.
fn fleet_counters(shared: &Arc<FleetShared>) -> Vec<(String, u64)> {
    let mut merged: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for r in &shared.replicas {
        let Some(addr) = r.addr().filter(|_| r.is_up()) else {
            continue;
        };
        let resp = send_one(addr, &Request::new(0, CASE_METRICS, Value::Null));
        if let Ok(Response::Ok { result, .. }) = resp {
            if let Some(Value::Object(counters)) = result.get("counters") {
                for (name, v) in counters {
                    if let Some(n) = v.as_u64() {
                        *merged.entry(name.clone()).or_insert(0) += n;
                    }
                }
            }
        }
    }
    for (name, v) in shared.metrics.recorder().counters_sorted() {
        let key = if name.starts_with("fleet.") || name.starts_with("gateway.") {
            name
        } else {
            format!("gateway.{name}")
        };
        *merged.entry(key).or_insert(0) += v;
    }
    // The gateway's own span-ring accounting (stitched request spans),
    // namespaced apart from the replicas' summed `spans.*` families.
    for (name, v) in span_ring_counters(shared.metrics.recorder()) {
        *merged.entry(format!("gateway.{name}")).or_insert(0) += v;
    }
    merged.into_iter().collect()
}

fn metrics_response(shared: &Arc<FleetShared>, req: &Request) -> Response {
    let counters = fleet_counters(shared);
    let gauges = shared.metrics.recorder().gauges_sorted();
    let hists = shared.metrics.recorder().hists_sorted();
    if req.case == CASE_METRICS_TEXT {
        return ok(
            req,
            Value::Object(vec![(
                "text".to_owned(),
                Value::Str(render_parts(&counters, &gauges, &hists)),
            )]),
        );
    }
    ok(
        req,
        Value::Object(vec![
            (
                "counters".to_owned(),
                Value::Object(
                    counters
                        .into_iter()
                        .map(|(n, v)| (n, Value::U64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Value::Object(
                    gauges
                        .into_iter()
                        .map(|(n, v)| (n, Value::I64(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Value::Object(hists.into_iter().map(|(n, h)| (n, h.to_value())).collect()),
            ),
            (
                "spans".to_owned(),
                Value::Object(vec![
                    (
                        "dropped".to_owned(),
                        Value::U64(shared.metrics.recorder().spans_dropped()),
                    ),
                    (
                        "recorded".to_owned(),
                        Value::U64(shared.metrics.recorder().spans_recorded()),
                    ),
                    (
                        "retained".to_owned(),
                        Value::U64(shared.metrics.recorder().spans_retained() as u64),
                    ),
                ]),
            ),
        ]),
    )
}

/// Handles the gateway-only `drain`/`undrain` cases: take one replica
/// out of (or back into) the routing ring without touching its process.
fn drain_response(shared: &Arc<FleetShared>, req: &Request) -> Response {
    let k = match req.params.get("replica").and_then(Value::as_u64) {
        Some(k) => k,
        None => {
            return Response::Err {
                id: req.id,
                code: ErrorCode::BadRequest,
                error: "`drain`/`undrain` need params `{\"replica\": K}`".to_owned(),
                retry_after_ms: None,
            }
        }
    };
    let Some(r) = usize::try_from(k).ok().and_then(|k| shared.replicas.get(k)) else {
        return Response::Err {
            id: req.id,
            code: ErrorCode::BadRequest,
            error: format!(
                "`replica` {k} out of range (fleet has {})",
                shared.replicas.len()
            ),
            retry_after_ms: None,
        };
    };
    let draining = req.case == CASE_DRAIN;
    r.set_draining(draining);
    if draining {
        shared.metrics.recorder().incr("gateway.drained", 1);
    }
    ok(
        req,
        Value::Object(vec![
            ("replica".to_owned(), Value::U64(k)),
            ("draining".to_owned(), Value::Bool(draining)),
        ]),
    )
}
