//! The consistent-hash ring the gateway routes on.
//!
//! Each replica owns `vnodes` points on a 64-bit ring, placed by the
//! same [`StableHasher`] the request content key uses — no
//! `RandomState`, no per-process seed, so every gateway process (and
//! every thread in one) computes the identical ring. A request key is
//! routed to the replica owning the first point at or after it
//! (wrapping), which gives the two properties the fleet leans on:
//!
//! * **Affinity** — identical keys land on the same replica run after
//!   run, so each replica's response cache concentrates its own key
//!   range instead of every replica cold-missing every key.
//! * **Bounded movement** — adding or removing one of `n` replicas
//!   remaps roughly `1/n` of the key space; the other replicas keep
//!   their (already warm) keys. `tests/ring_properties.rs` pins both.
//!
//! [`Ring::route_available`] walks past points owned by down or
//! draining replicas, so failover is passive: keys of a dead replica
//! spill to ring-adjacent survivors and *snap back* when it returns.

use m3d_tech::{StableHash, StableHasher};

/// Virtual nodes per replica. Enough to keep the largest/smallest
/// ownership ratio low at small fleet sizes without making ring
/// construction or lookup measurable.
pub const DEFAULT_VNODES: usize = 64;

/// An immutable consistent-hash ring over replica indices
/// `0..replicas`.
#[derive(Debug, Clone)]
pub struct Ring {
    replicas: usize,
    /// `(point, replica)` sorted by point; ties broken by replica index
    /// so construction order cannot matter.
    points: Vec<(u64, usize)>,
}

/// The ring position of one virtual node.
fn vnode_point(replica: usize, vnode: usize) -> u64 {
    let mut h = StableHasher::new();
    "m3d-fleet-ring".stable_hash(&mut h);
    (replica as u64).stable_hash(&mut h);
    (vnode as u64).stable_hash(&mut h);
    h.finish()
}

impl Ring {
    /// A ring over `replicas` replicas with `vnodes` points each.
    /// Zero of either yields an empty ring that routes nothing.
    pub fn new(replicas: usize, vnodes: usize) -> Self {
        let mut points: Vec<(u64, usize)> = (0..replicas)
            .flat_map(|r| (0..vnodes).map(move |v| (vnode_point(r, v), r)))
            .collect();
        points.sort_unstable();
        Self { replicas, points }
    }

    /// Replica count the ring was built for.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The replica owning `key`: the one whose point is first at or
    /// after `key` on the wrapping ring. `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(p, _)| p < key);
        Some(self.points[idx % self.points.len()].1)
    }

    /// The first *eligible* replica at or after `key`'s position:
    /// `eligible[r]` is false for down or draining replicas, whose
    /// points are walked past. Falls back to `None` only when no
    /// replica is eligible at all.
    ///
    /// Keys of an ineligible replica spill to the ring-adjacent
    /// survivors (preserving the bounded-movement property) and return
    /// to their owner as soon as it is eligible again.
    pub fn route_available(&self, key: u64, eligible: &[bool]) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        for i in 0..self.points.len() {
            let (_, r) = self.points[(start + i) % self.points.len()];
            if eligible.get(r).copied().unwrap_or(false) {
                return Some(r);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_routes_nothing() {
        assert_eq!(Ring::new(0, DEFAULT_VNODES).route(7), None);
        assert_eq!(Ring::new(3, 0).route(7), None);
        assert_eq!(Ring::new(0, 4).route_available(7, &[]), None);
    }

    #[test]
    fn route_is_deterministic_and_in_range() {
        let ring = Ring::new(5, DEFAULT_VNODES);
        for key in (0..2_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let r = ring.route(key).unwrap();
            assert!(r < 5);
            assert_eq!(Ring::new(5, DEFAULT_VNODES).route(key), Some(r));
        }
    }

    #[test]
    fn every_replica_owns_some_keys() {
        let ring = Ring::new(4, DEFAULT_VNODES);
        let mut owned = [0usize; 4];
        for key in (0..4_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            owned[ring.route(key).unwrap()] += 1;
        }
        for (r, n) in owned.iter().enumerate() {
            assert!(*n > 0, "replica {r} owns no keys: {owned:?}");
        }
    }

    #[test]
    fn route_available_matches_route_when_all_eligible() {
        let ring = Ring::new(3, DEFAULT_VNODES);
        for key in (0..500u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            assert_eq!(
                ring.route_available(key, &[true, true, true]),
                ring.route(key)
            );
        }
    }

    #[test]
    fn ineligible_owner_spills_then_snaps_back() {
        let ring = Ring::new(3, DEFAULT_VNODES);
        let key = 0xfeed_beef_dead_cafe;
        let owner = ring.route(key).unwrap();
        let mut eligible = [true; 3];
        eligible[owner] = false;
        let fallback = ring.route_available(key, &eligible).unwrap();
        assert_ne!(fallback, owner, "a down replica must not be routed to");
        eligible[owner] = true;
        assert_eq!(
            ring.route_available(key, &eligible),
            Some(owner),
            "keys snap back once the owner is eligible again"
        );
    }

    #[test]
    fn no_eligible_replica_routes_none() {
        let ring = Ring::new(2, DEFAULT_VNODES);
        assert_eq!(ring.route_available(1, &[false, false]), None);
        // A short eligibility slice reads as ineligible, not a panic.
        assert_eq!(ring.route_available(1, &[]), None);
    }
}
