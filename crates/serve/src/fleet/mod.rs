//! The fleet layer: `m3d-gateway`, a cache-aware router over N
//! supervised `m3d-serve` replica processes.
//!
//! One gateway process speaks the unchanged NDJSON wire protocol to
//! clients and multiplies a single server into a fleet:
//!
//! * [`ring`] — the deterministic consistent-hash ring that sends each
//!   request content key to the same replica every time (cache
//!   affinity) and moves only ~1/N of keys when the fleet changes
//!   size.
//! * [`replica`] — one supervised `m3d-serve` child: spawn, announce,
//!   `ready` probes, crash reaping and bounded-exponential-backoff
//!   respawn.
//! * [`gateway`] — the router itself: accept loop, routed/round-robin
//!   forwarding with transparent retry of idempotent requests whose
//!   replica died mid-flight, fleet-local admin cases
//!   (`health`/`ready`/`stats`/`drain`/`undrain`) and fleet-wide
//!   metrics aggregation.
//!
//! Replicas share one on-disk artifact tier (`M3D_CACHE_DIR`): a flow
//! report computed by any replica is a disk hit for every other, so
//! the fleet's effective cache is the union, not N cold copies.

pub mod gateway;
pub mod replica;
pub mod ring;

pub use gateway::{serve_fleet, FleetHandle, GatewayConfig};
pub use replica::{Replica, ReplicaConfig};
pub use ring::{Ring, DEFAULT_VNODES};
