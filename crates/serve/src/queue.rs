//! A bounded MPMC job queue with explicit backpressure.
//!
//! Producers never block: [`Bounded::push`] either enqueues or reports
//! [`PushError::Full`] immediately, which the server surfaces to
//! clients as a 429 with a `Retry-After` hint — load is *shed*, not
//! silently buffered into unbounded memory. Consumers block on a
//! condition variable; [`Bounded::close`] starts a graceful drain:
//! further pushes fail, and poppers keep receiving queued items until
//! the queue runs dry, then observe `None` and exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `depth` items (its capacity) — shed load.
    Full {
        /// The configured capacity at refusal time.
        depth: usize,
    },
    /// [`Bounded::close`] was called; the server is draining.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue.
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> Bounded<T> {
    /// A queue refusing pushes beyond `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-depth queue cannot accept work");
        Self {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`Bounded::close`]. The item is returned to the caller inside
    /// neither — backpressure responses need no payload.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full {
                depth: self.capacity,
            });
        }
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).expect("queue poisoned");
        }
    }

    /// Rejects future pushes and lets poppers drain what is queued.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (moves with concurrent pushes/pops).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn fifo_within_capacity() {
        let q = Bounded::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn overflow_is_refused_not_dropped() {
        let q = Bounded::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full { depth: 2 }));
        // The queued items are intact; freeing a slot re-admits work.
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_releases_poppers() {
        let q = Bounded::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1), "queued work survives the close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_consumers_each_item_exactly_once() {
        let q = Bounded::new(64);
        let seen = AtomicUsize::new(0);
        let gate = Barrier::new(5);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    gate.wait();
                    while q.pop().is_some() {
                        seen.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            for i in 0..64 {
                q.push(i).unwrap();
            }
            gate.wait();
            q.close();
        });
        assert_eq!(seen.load(Ordering::SeqCst), 64);
    }
}
