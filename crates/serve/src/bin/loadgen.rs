//! `m3d-loadgen` — closed-loop load generator for `m3d-serve`.
//!
//! ```text
//! m3d-loadgen --addr HOST:PORT [--clients N] [--requests M]
//!             [--mix cold|repeated|flow|sleep|mixed] [--timeout-ms T]
//!             [--json PATH] [--expect-computed K] [--expect-replicas R]
//!             [--metrics-every P] [--check-metrics] [--trace]
//!             [--metrics-text PATH] [--shutdown]
//! ```
//!
//! Spawns `N` concurrent client connections, each sending `M` requests
//! of the chosen mix and waiting for every response (closed loop). The
//! `--json` artifact contains only *deterministic* fields — request
//! counts, how many requests actually executed vs were served from
//! cache/coalescing, and an FNV digest of every distinct result
//! payload — so two runs against equivalent servers diff clean,
//! whatever the timing. Throughput and latency percentiles go to
//! stderr.
//!
//! Mixes (all deterministic in the request stream they produce):
//!
//! * `cold` — every request a distinct `sensitivity` seed: all compute.
//! * `repeated` — all clients send one identical `sensitivity`
//!   request: exactly one computes, the rest coalesce or hit cache.
//! * `flow` — `pd_flow` requests cycling 4 distinct activity factors.
//! * `sleep` — distinct-tag diagnostic stalls (queue/backpressure
//!   exercise).
//! * `mixed` — alternates `cold`- and `repeated`-style requests, every
//!   fourth request samples a registered case from the server's `cases`
//!   listing (fetched once up front, walked in registry order with
//!   default parameters), and every eighth request uploads a constant
//!   inline-EDIF `ingest` payload — so the mix exercises real dispatch
//!   breadth and the external-netlist front door, not just the two
//!   `sensitivity` shapes.
//!
//! A 429 (`overloaded`) reply carrying a `retry_after_ms` hint is
//! honoured: the client sleeps the hinted time (capped) and resends the
//! same request, up to 8 retries, before tallying it as rejected — so
//! scrape rate limits and transient queue-full shedding do not fail a
//! run. A 503 (`draining`) or a hintless 429 is rejected immediately.
//!
//! `--expect-computed K` exits non-zero unless exactly `K` requests
//! report `cached == coalesced == false` — the scripted regression gate
//! for request deduplication.
//!
//! Fleet mode (against `m3d-gateway`): responses carry a `replica`
//! envelope tag, tallied per replica to stderr (never into the
//! deterministic `--json` artifact). `--expect-replicas R` exits
//! non-zero unless the gateway's `stats` reports exactly `R` replicas
//! all up (exit 6), then forces one identical request through *every*
//! replica via the `replica` delivery field and exits non-zero unless
//! all `R` result payloads are byte-identical (exit 7) — the fleet's
//! hard determinism gate.
//!
//! Observability hooks:
//!
//! * `--metrics-every P` — client 0 interleaves a `{"case":"metrics"}`
//!   request after every `P` of its own requests and prints the
//!   server-side outcome counters to stderr (metrics polls are not
//!   tallied).
//! * `--check-metrics` — snapshots the server's `metrics` counters
//!   before and after the run and exits non-zero unless the `executed`
//!   delta equals the client-observed `computed` count and the
//!   `cache_hits + coalesced` delta equals the client-observed `reused`
//!   count. The `request_latency_us` histogram is held to the same
//!   standard: the server samples latency exactly once per resolved
//!   request, so its `_count` delta must equal `computed + reused`. Use
//!   with mixes whose leaders really execute (e.g. `cold`, `repeated`
//!   against a fresh server): a leader whose case internally replays the
//!   flow cache reports `cached == true` to the client while the server
//!   books it as executed.
//!   The span ring is held to it too: when the `metrics` payload
//!   carries a `spans` object, its `recorded` delta must equal
//!   `computed + reused` and its `dropped` delta must equal the
//!   `recorded` delta minus the ring's `retained` growth — overflow is
//!   counted, never silent.
//! * `--metrics-text PATH` — after the run (before `--shutdown`),
//!   scrapes the server's `metrics_text` case once, checks the payload
//!   parses as a Prometheus text exposition, and writes it to `PATH`.
//! * `--trace` — every experiment request opts into distributed
//!   tracing (`trace: true`) and the client checks each `Ok` response
//!   carries an inline trace document with a 32-hex `trace_id` and a
//!   span tree root. With `--metrics-every`, client 0 also asks the
//!   server's `traces` flight recorder for its most recent trace by id
//!   and fails when the recorder copy is missing — the wire trace and
//!   the flight recorder must agree. Any violation exits 8.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use m3d_core::obs::validate_exposition;
use m3d_core::ErrorCode;
use m3d_serve::protocol::{
    Request, Response, CASE_CASES, CASE_METRICS, CASE_METRICS_TEXT, CASE_STATS, CASE_TRACES,
};
use m3d_serve::LatencySummary;
use m3d_tech::{StableHash, StableHasher};
use serde::Value;

/// Retries before a hinted 429 is surfaced as a rejection.
const MAX_RETRIES: u32 = 8;
/// Ceiling on one hinted retry sleep (a misbehaving server must not
/// park the client for minutes).
const RETRY_SLEEP_CAP_MS: u64 = 1_000;

fn usage() -> ! {
    eprintln!(
        "usage: m3d-loadgen --addr HOST:PORT [--clients N] [--requests M] \
         [--mix cold|repeated|flow|sleep|mixed] [--timeout-ms T] [--json PATH] \
         [--expect-computed K] [--expect-replicas R] [--metrics-every P] \
         [--check-metrics] [--trace] [--metrics-text PATH] [--shutdown]"
    );
    std::process::exit(2);
}

#[derive(Clone)]
struct Args {
    addr: String,
    clients: usize,
    requests: usize,
    mix: String,
    timeout_ms: Option<u64>,
    json: Option<String>,
    expect_computed: Option<u64>,
    expect_replicas: Option<usize>,
    metrics_every: Option<usize>,
    check_metrics: bool,
    trace: bool,
    metrics_text: Option<String>,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        clients: 4,
        requests: 4,
        mix: "cold".to_owned(),
        timeout_ms: None,
        json: None,
        expect_computed: None,
        expect_replicas: None,
        metrics_every: None,
        check_metrics: false,
        trace: false,
        metrics_text: None,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {what} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--addr" => out.addr = grab("--addr"),
            "--clients" => out.clients = grab("--clients").parse().unwrap_or_else(|_| usage()),
            "--requests" => out.requests = grab("--requests").parse().unwrap_or_else(|_| usage()),
            "--mix" => out.mix = grab("--mix"),
            "--timeout-ms" => {
                out.timeout_ms = Some(grab("--timeout-ms").parse().unwrap_or_else(|_| usage()));
            }
            "--json" => out.json = Some(grab("--json")),
            "--expect-computed" => {
                out.expect_computed = Some(
                    grab("--expect-computed")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--expect-replicas" => {
                let n: usize = grab("--expect-replicas")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!("error: --expect-replicas must be >= 1");
                    usage();
                }
                out.expect_replicas = Some(n);
            }
            "--metrics-every" => {
                let every: usize = grab("--metrics-every").parse().unwrap_or_else(|_| usage());
                if every == 0 {
                    eprintln!("error: --metrics-every must be >= 1");
                    usage();
                }
                out.metrics_every = Some(every);
            }
            "--check-metrics" => out.check_metrics = true,
            "--trace" => out.trace = true,
            "--metrics-text" => out.metrics_text = Some(grab("--metrics-text")),
            "--shutdown" => out.shutdown = true,
            _ => usage(),
        }
    }
    if out.addr.is_empty() {
        eprintln!("error: --addr is required");
        usage();
    }
    if !matches!(
        out.mix.as_str(),
        "cold" | "repeated" | "flow" | "sleep" | "mixed"
    ) {
        eprintln!("error: unknown mix `{}`", out.mix);
        usage();
    }
    out
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// The constant design the `mixed` mix uploads through the `ingest`
/// case: one inverter, small enough to keep the request line short but
/// real enough to run the whole parse → flatten → flow path. Identical
/// across clients, so concurrent uploads coalesce on the server.
const INGEST_EDIF: &str = "(edif loadgen (library work (cell top (view net \
                           (interface (port a (direction INPUT)) \
                           (port y (direction OUTPUT))) \
                           (contents (instance u1 (cellRef INV_X1)) \
                           (net na (joined (portRef a) (portRef A (instanceRef u1)))) \
                           (net ny (joined (portRef Y (instanceRef u1)) (portRef y))))))) \
                           (design loadgen (cellRef top)))";

/// The deterministic request a (mix, global index) pair maps to.
/// `cases` is the server's registered-case listing (used by `mixed`;
/// empty for the other mixes).
fn request_for(mix: &str, global: u64, cases: &[String]) -> Request {
    let cold = |g: u64| {
        Request::new(
            g,
            "sensitivity",
            obj(vec![
                ("samples", Value::U64(400)),
                ("seed", Value::U64(1_000 + g)),
            ]),
        )
    };
    let repeated = |g: u64| {
        Request::new(
            g,
            "sensitivity",
            obj(vec![("samples", Value::U64(400)), ("seed", Value::U64(7))]),
        )
    };
    match mix {
        "cold" => cold(global),
        "repeated" => repeated(global),
        "flow" => Request::new(
            global,
            "pd_flow",
            obj(vec![(
                "activity_pct",
                Value::F64(5.0 + (global % 4) as f64),
            )]),
        ),
        "sleep" => Request::new(
            global,
            "sleep",
            obj(vec![("ms", Value::U64(20)), ("tag", Value::U64(global))]),
        ),
        "mixed" => {
            // Every fourth request walks the server's own case listing
            // (registry order) with default params, every eighth
            // uploads the constant inline-EDIF design; the rest
            // alternate cold/repeated shapes.
            if global % 4 == 3 && !cases.is_empty() {
                let case = &cases[(global / 4) as usize % cases.len()];
                Request::new(global, case, Value::Object(Vec::new()))
            } else if global % 8 == 5 {
                Request::new(
                    global,
                    "ingest",
                    obj(vec![("source", Value::Str(INGEST_EDIF.to_owned()))]),
                )
            } else if global % 2 == 0 {
                cold(global)
            } else {
                repeated(global)
            }
        }
        _ => unreachable!("mix validated at parse"),
    }
}

/// Per-client tallies, merged after the run.
#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    computed: u64,
    reused: u64,
    /// Hinted-429 resends (diagnostic; not part of `sent`).
    retried: u64,
    /// `--trace` violations: `Ok` responses with a missing or malformed
    /// inline trace document, or traced requests the server's flight
    /// recorder could not produce back.
    trace_bad: u64,
    latencies_us: Vec<u64>,
    /// key hex → FNV digest of the serialised result payload.
    payloads: BTreeMap<String, String>,
    /// Responses served per gateway replica (from the `replica`
    /// envelope tag; empty against a plain `m3d-serve`). Timing-
    /// dependent, so stderr-only — never part of the `--json` artifact.
    by_replica: BTreeMap<u64, u64>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.timed_out += other.timed_out;
        self.errors += other.errors;
        self.computed += other.computed;
        self.reused += other.reused;
        self.retried += other.retried;
        self.trace_bad += other.trace_bad;
        self.latencies_us.extend(other.latencies_us);
        for (k, v) in other.payloads {
            self.payloads.insert(k, v);
        }
        for (r, n) in other.by_replica {
            *self.by_replica.entry(r).or_insert(0) += n;
        }
    }
}

fn run_client(args: &Args, client: usize, cases: &[String]) -> std::io::Result<Tally> {
    let mut tally = Tally::default();
    let stream = TcpStream::connect(&args.addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // The most recent inline trace id this client saw (`--trace` +
    // `--metrics-every`: client 0 asks the flight recorder for it).
    let mut last_trace: Option<String> = None;
    for i in 0..args.requests {
        let global = (client * args.requests + i) as u64;
        let mut req = request_for(&args.mix, global, cases);
        req.timeout_ms = args.timeout_ms;
        req.trace = args.trace;
        let start = Instant::now();
        let mut attempts = 0u32;
        // Resend on hinted 429s; the loop breaks with the terminal
        // response line. Latency spans all attempts — the client-felt
        // time to a real answer.
        let line = loop {
            writer.write_all(req.to_line().as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-request",
                ));
            }
            if let Ok(Response::Err {
                code: ErrorCode::Overloaded,
                retry_after_ms: Some(ms),
                ..
            }) = Response::parse(line.trim())
            {
                if attempts < MAX_RETRIES {
                    attempts += 1;
                    tally.retried += 1;
                    std::thread::sleep(Duration::from_millis(ms.min(RETRY_SLEEP_CAP_MS)));
                    continue;
                }
            }
            break line;
        };
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        tally.sent += 1;
        tally.latencies_us.push(us);
        // The gateway's replica attribution rides outside the typed
        // response; read it off the raw envelope.
        let replica_tag = serde_json::from_str_value(line.trim())
            .ok()
            .and_then(|v| v.get("replica").and_then(Value::as_u64));
        match Response::parse(line.trim()) {
            Ok(Response::Ok {
                key,
                cached,
                coalesced,
                result,
                trace,
                ..
            }) => {
                tally.ok += 1;
                if let Some(r) = replica_tag {
                    *tally.by_replica.entry(r).or_insert(0) += 1;
                }
                if args.trace {
                    match inline_trace_id(trace.as_ref()) {
                        Some(id) => last_trace = Some(id),
                        None => {
                            tally.trace_bad += 1;
                            eprintln!(
                                "error: traced request {global} returned no well-formed \
                                 inline trace document"
                            );
                        }
                    }
                }
                if cached || coalesced {
                    tally.reused += 1;
                } else {
                    tally.computed += 1;
                }
                let bytes = serde_json::to_string(&result).expect("result serialises");
                let mut h = StableHasher::new();
                bytes.stable_hash(&mut h);
                tally.payloads.insert(key, format!("{:016x}", h.finish()));
            }
            Ok(Response::Err { code, .. }) => match code {
                ErrorCode::Overloaded | ErrorCode::Draining => tally.rejected += 1,
                ErrorCode::Deadline => tally.timed_out += 1,
                _ => tally.errors += 1,
            },
            Err(_) => tally.errors += 1,
        }
        if let Some(every) = args.metrics_every {
            if client == 0 && (i + 1) % every == 0 {
                let snap = poll_metrics(&mut writer, &mut reader, 1_000_000 + global)?;
                eprintln!(
                    "# metrics @ {} requests: executed {} cache_hits {} coalesced {} \
                     rejected {} timed_out {}",
                    i + 1,
                    snap.counters.get("executed").copied().unwrap_or(0),
                    snap.counters.get("cache_hits").copied().unwrap_or(0),
                    snap.counters.get("coalesced").copied().unwrap_or(0),
                    snap.counters.get("rejected").copied().unwrap_or(0),
                    snap.counters.get("timed_out").copied().unwrap_or(0),
                );
                // The flight recorder must hold what the wire returned:
                // ask `traces` for the last inline trace id.
                if let Some(id) = &last_trace {
                    if !poll_trace_by_id(&mut writer, &mut reader, 2_000_000 + global, id)? {
                        tally.trace_bad += 1;
                        eprintln!(
                            "error: trace {id} was returned inline but is missing from \
                             the server's flight recorder"
                        );
                    }
                }
            }
        }
    }
    Ok(tally)
}

/// Extracts the trace id from an inline trace document, accepting only
/// a well-formed one: a 32-hex `trace_id` plus a span tree `root`.
fn inline_trace_id(trace: Option<&Value>) -> Option<String> {
    let doc = trace?;
    doc.get("root")?;
    match doc.get("trace_id") {
        Some(Value::Str(id)) if id.len() == 32 && id.bytes().all(|b| b.is_ascii_hexdigit()) => {
            Some(id.clone())
        }
        _ => None,
    }
}

/// Asks the server's `traces` flight recorder for one trace by id;
/// `true` when the recorder still holds it (recent ring or slow-
/// exemplar store).
fn poll_trace_by_id(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    id: u64,
    trace_id: &str,
) -> std::io::Result<bool> {
    let params = obj(vec![("trace_id", Value::Str(trace_id.to_owned()))]);
    let result = poll_case(writer, reader, id, CASE_TRACES, params)?;
    let holds = |arr: Option<&Value>| {
        matches!(arr, Some(Value::Array(items)) if items.iter().any(
            |t| matches!(t.get("trace_id"), Some(Value::Str(s)) if s == trace_id)
        ))
    };
    Ok(holds(result.get("recent")) || holds(result.get("slow")))
}

/// What one `metrics` poll yields: the server's counters, the sample
/// count of its end-to-end `request_latency_us` histogram, and the
/// span-ring accounting when the payload exposes it.
struct MetricsSnap {
    counters: BTreeMap<String, u64>,
    latency_count: u64,
    /// `(dropped, recorded, retained)` from the `spans` object.
    spans: Option<(u64, u64, u64)>,
}

/// Sends one admin request on an established connection and returns the
/// parsed `Ok` result payload. Admin polls are diagnostic — they are
/// never tallied into the run's request counts. A hinted 429 (the
/// per-connection scrape rate limit) is slept out and retried.
fn poll_admin(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    id: u64,
    case: &str,
) -> std::io::Result<Value> {
    poll_case(writer, reader, id, case, Value::Object(Vec::new()))
}

/// [`poll_admin`] with explicit request parameters (e.g. a `traces`
/// filter).
fn poll_case(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    id: u64,
    case: &str,
    params: Value,
) -> std::io::Result<Value> {
    let req = Request::new(id, case, params);
    for _ in 0..=MAX_RETRIES {
        writer.write_all(req.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("server closed the connection during a `{case}` poll"),
            ));
        }
        let resp = Response::parse(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        match resp {
            Response::Ok { result, .. } => return Ok(result),
            Response::Err {
                code: ErrorCode::Overloaded,
                retry_after_ms: Some(ms),
                ..
            } => std::thread::sleep(Duration::from_millis(ms.min(RETRY_SLEEP_CAP_MS))),
            Response::Err { error, .. } => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("`{case}` request was refused: {error}"),
                ))
            }
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::TimedOut,
        format!("`{case}` still rate-limited after {MAX_RETRIES} retries"),
    ))
}

/// Sends one `metrics` request on an established connection.
fn poll_metrics(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    id: u64,
) -> std::io::Result<MetricsSnap> {
    let result = poll_admin(writer, reader, id, CASE_METRICS)?;
    let mut counters = BTreeMap::new();
    if let Some(fields) = result.get("counters").and_then(Value::as_object) {
        for (name, value) in fields {
            if let Some(v) = value.as_u64() {
                counters.insert(name.clone(), v);
            }
        }
    }
    let latency_count = result
        .get("histograms")
        .and_then(|h| h.get("request_latency_us"))
        .and_then(|h| h.get("total"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let spans = result.get("spans").map(|s| {
        let field = |name: &str| s.get(name).and_then(Value::as_u64).unwrap_or(0);
        (field("dropped"), field("recorded"), field("retained"))
    });
    Ok(MetricsSnap {
        counters,
        latency_count,
        spans,
    })
}

/// Fetches the server's registered case names (registry order) over a
/// fresh connection, for the `mixed` mix's dispatch sampling.
fn fetch_cases(addr: &str) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let result = poll_admin(&mut writer, &mut reader, 0, CASE_CASES)?;
    let Some(Value::Array(items)) = result.get("cases") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "cases result carries no `cases` array",
        ));
    };
    Ok(items
        .iter()
        .filter_map(|item| match item.get("name") {
            Some(Value::Str(name)) => Some(name.clone()),
            _ => None,
        })
        .collect())
}

/// Fetches the server's outcome counters over a fresh connection.
fn fetch_metrics(addr: &str) -> std::io::Result<MetricsSnap> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    poll_metrics(&mut writer, &mut reader, 0)
}

/// Scrapes the server's `metrics_text` case once over a fresh
/// connection and returns the Prometheus exposition payload after
/// checking it parses.
fn fetch_metrics_text(addr: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let result = poll_admin(&mut writer, &mut reader, 0, CASE_METRICS_TEXT)?;
    let Some(Value::Str(text)) = result.get("text") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "metrics_text result carries no `text` field",
        ));
    };
    validate_exposition(text).map_err(|line| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("metrics_text exposition failed to parse: {line}"),
        )
    })?;
    Ok(text.clone())
}

/// Fetches the server's `stats` payload over a fresh connection.
fn fetch_stats(addr: &str) -> std::io::Result<Value> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    poll_admin(&mut writer, &mut reader, 0, CASE_STATS)
}

/// The fleet gate behind `--expect-replicas R`: checks the gateway's
/// `stats` reports exactly `R` replicas all up, then forces one
/// identical request through every replica (via the `replica` delivery
/// field, which pins routing without touching the content key) and
/// compares the FNV digests of the returned payloads. Returns the exit
/// code to use (6: fleet shape, 7: payload divergence), or `None` on
/// success.
fn check_fleet(addr: &str, expect: usize) -> std::io::Result<Option<i32>> {
    let stats = fetch_stats(addr)?;
    let Some(Value::Array(replicas)) = stats.get("replicas") else {
        eprintln!(
            "error: --expect-replicas {expect}, but `stats` reports no fleet (plain server?)"
        );
        return Ok(Some(6));
    };
    let up = replicas
        .iter()
        .filter(|r| matches!(r.get("up"), Some(Value::Bool(true))))
        .count();
    if replicas.len() != expect || up != expect {
        eprintln!(
            "error: expected {expect} replicas all up, observed {} configured / {up} up",
            replicas.len()
        );
        return Ok(Some(6));
    }

    // One fixed request, forced through every replica. Identical
    // content key everywhere, so each replica computes (or replays) the
    // same case — the payloads must digest identically.
    let mut digests: Vec<(usize, String)> = Vec::new();
    for k in 0..expect {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut req = Request::new(
            5_000_000 + k as u64,
            "sensitivity",
            obj(vec![
                ("samples", Value::U64(400)),
                ("seed", Value::U64(3_141_592)),
            ]),
        );
        req.replica = Some(k as u64);
        writer.write_all(req.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            eprintln!("error: replica {k} identity probe: connection closed");
            return Ok(Some(7));
        }
        match Response::parse(line.trim()) {
            Ok(Response::Ok { result, .. }) => {
                let bytes = serde_json::to_string(&result).expect("result serialises");
                let mut h = StableHasher::new();
                bytes.stable_hash(&mut h);
                digests.push((k, format!("{:016x}", h.finish())));
            }
            other => {
                eprintln!("error: replica {k} identity probe failed: {other:?}");
                return Ok(Some(7));
            }
        }
    }
    let reference = &digests[0].1;
    if digests.iter().any(|(_, d)| d != reference) {
        eprintln!("error: cross-replica payload divergence: {digests:?}");
        return Ok(Some(7));
    }
    eprintln!("# fleet: {expect} replicas up, cross-replica identity probe OK (fnv {reference})");
    Ok(None)
}

fn send_shutdown(addr: &str) -> std::io::Result<bool> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writer.write_all(br#"{"case":"shutdown"}"#)?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(matches!(Response::parse(line.trim()), Ok(r) if r.status() == 200))
}

fn main() -> std::io::Result<()> {
    let args = parse_args();
    let before = if args.check_metrics {
        Some(fetch_metrics(&args.addr)?)
    } else {
        None
    };
    let cases = if args.mix == "mixed" {
        fetch_cases(&args.addr)?
    } else {
        Vec::new()
    };
    let wall = Instant::now();
    let mut total = Tally::default();
    if args.clients > 0 && args.requests > 0 {
        let tallies: Vec<std::io::Result<Tally>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..args.clients)
                .map(|c| {
                    let args = &args;
                    let cases = &cases;
                    s.spawn(move || run_client(args, c, cases))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        });
        for t in tallies {
            total.merge(t?);
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let after = if args.check_metrics {
        Some(fetch_metrics(&args.addr)?)
    } else {
        None
    };

    if let Some(path) = &args.metrics_text {
        let text = fetch_metrics_text(&args.addr)?;
        std::fs::write(path, &text)?;
        eprintln!("# metrics-text: {path} ({} bytes, parses)", text.len());
    }

    // The fleet gate must probe live replicas, so it runs before any
    // `--shutdown`; its exit is deferred so the artifact still lands.
    let fleet_exit = match args.expect_replicas {
        Some(expect) => check_fleet(&args.addr, expect)?,
        None => None,
    };

    if args.shutdown {
        let ok = send_shutdown(&args.addr)?;
        eprintln!("# shutdown request acknowledged: {ok}");
    }

    let lat = LatencySummary::of(&total.latencies_us);
    let throughput = if wall_s > 0.0 {
        total.ok as f64 / wall_s
    } else {
        0.0
    };
    eprintln!(
        "# mix {} — {} clients x {} requests in {:.0} ms: {:.1} req/s ok, \
         p50 {} us, p95 {} us, p99 {} us, max {} us",
        args.mix,
        args.clients,
        args.requests,
        wall_s * 1.0e3,
        throughput,
        lat.p50_us,
        lat.p95_us,
        lat.p99_us,
        lat.max_us
    );
    eprintln!(
        "# computed {} / reused {} (cache-hit rate {:.0} %)",
        total.computed,
        total.reused,
        if total.ok > 0 {
            100.0 * total.reused as f64 / total.ok as f64
        } else {
            0.0
        }
    );
    if total.retried > 0 {
        eprintln!("# hinted-429 retries: {}", total.retried);
    }
    if !total.by_replica.is_empty() {
        let parts: Vec<String> = total
            .by_replica
            .iter()
            .map(|(r, n)| format!("replica {r}: {n}"))
            .collect();
        eprintln!("# served by {}", parts.join(", "));
    }

    // Deterministic artifact: identical request streams against
    // equivalent servers produce byte-identical JSON, whatever the
    // worker count or timing.
    let payloads = Value::Object(
        total
            .payloads
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect(),
    );
    let checks = obj(vec![
        ("mix", Value::Str(args.mix.clone())),
        ("clients", Value::U64(args.clients as u64)),
        ("requests", Value::U64(args.requests as u64)),
        ("sent", Value::U64(total.sent)),
        ("ok", Value::U64(total.ok)),
        ("rejected", Value::U64(total.rejected)),
        ("timed_out", Value::U64(total.timed_out)),
        ("errors", Value::U64(total.errors)),
        ("computed", Value::U64(total.computed)),
        ("reused", Value::U64(total.reused)),
        ("payload_fnv", payloads),
    ]);
    let rendered = serde_json::to_string_pretty(&checks).expect("checks serialise");
    println!("{rendered}");
    if let Some(path) = &args.json {
        std::fs::write(path, format!("{rendered}\n"))?;
    }

    if let Some(expect) = args.expect_computed {
        if total.computed != expect {
            eprintln!(
                "error: expected exactly {expect} computed request(s), observed {}",
                total.computed
            );
            std::process::exit(3);
        }
    }

    if let (Some(before), Some(after)) = (before, after) {
        let delta = |name: &str| {
            after.counters.get(name).copied().unwrap_or(0)
                - before.counters.get(name).copied().unwrap_or(0)
        };
        let executed = delta("executed");
        let server_reused = delta("cache_hits") + delta("coalesced");
        let latency_samples = after.latency_count - before.latency_count;
        eprintln!(
            "# server metrics delta: executed {executed}, reused {server_reused}, \
             latency samples {latency_samples} (client saw computed {}, reused {})",
            total.computed, total.reused
        );
        if executed != total.computed || server_reused != total.reused {
            eprintln!(
                "error: server counters disagree with client tallies \
                 (executed {executed} vs computed {}, reused {server_reused} vs {})",
                total.computed, total.reused
            );
            std::process::exit(4);
        }
        // The server samples end-to-end latency exactly once per
        // resolved request, so the histogram count must march in step
        // with the outcome counters.
        if latency_samples != total.computed + total.reused {
            eprintln!(
                "error: request_latency_us _count delta {latency_samples} != \
                 computed + reused = {}",
                total.computed + total.reused
            );
            std::process::exit(5);
        }
        // The span ring records exactly one span per resolved request,
        // and every overflow eviction must be counted — the ring bounds
        // retention, never the accounting.
        if let (Some((bd, br, bret)), Some((ad, ar, aret))) = (before.spans, after.spans) {
            let recorded = ar - br;
            let dropped = ad - bd;
            let retained_growth = aret - bret;
            eprintln!(
                "# server spans delta: recorded {recorded}, dropped {dropped}, \
                 ring grew by {retained_growth}"
            );
            if recorded != total.computed + total.reused {
                eprintln!(
                    "error: spans.recorded delta {recorded} != computed + reused = {}",
                    total.computed + total.reused
                );
                std::process::exit(5);
            }
            if dropped != recorded - retained_growth {
                eprintln!(
                    "error: spans.dropped delta {dropped} != recorded - retained \
                     growth = {}",
                    recorded - retained_growth
                );
                std::process::exit(5);
            }
        }
    }
    if args.trace && total.trace_bad > 0 {
        eprintln!(
            "error: {} trace violation(s): inline trace documents missing/malformed \
             or absent from the flight recorder",
            total.trace_bad
        );
        std::process::exit(8);
    }
    if let Some(code) = fleet_exit {
        std::process::exit(code);
    }
    Ok(())
}
