//! `m3d-loadgen` — closed-loop load generator for `m3d-serve`.
//!
//! ```text
//! m3d-loadgen --addr HOST:PORT [--clients N] [--requests M]
//!             [--mix cold|repeated|flow|sleep|mixed] [--timeout-ms T]
//!             [--json PATH] [--expect-computed K] [--shutdown]
//! ```
//!
//! Spawns `N` concurrent client connections, each sending `M` requests
//! of the chosen mix and waiting for every response (closed loop). The
//! `--json` artifact contains only *deterministic* fields — request
//! counts, how many requests actually executed vs were served from
//! cache/coalescing, and an FNV digest of every distinct result
//! payload — so two runs against equivalent servers diff clean,
//! whatever the timing. Throughput and latency percentiles go to
//! stderr.
//!
//! Mixes (all deterministic in the request stream they produce):
//!
//! * `cold` — every request a distinct `sensitivity` seed: all compute.
//! * `repeated` — all clients send one identical `sensitivity`
//!   request: exactly one computes, the rest coalesce or hit cache.
//! * `flow` — `pd_flow` requests cycling 4 distinct activity factors.
//! * `sleep` — distinct-tag diagnostic stalls (queue/backpressure
//!   exercise).
//! * `mixed` — alternates `cold`- and `repeated`-style requests.
//!
//! `--expect-computed K` exits non-zero unless exactly `K` requests
//! report `cached == coalesced == false` — the scripted regression gate
//! for request deduplication.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use m3d_serve::protocol::{Request, Response};
use m3d_serve::LatencySummary;
use m3d_tech::{StableHash, StableHasher};
use serde::Value;

fn usage() -> ! {
    eprintln!(
        "usage: m3d-loadgen --addr HOST:PORT [--clients N] [--requests M] \
         [--mix cold|repeated|flow|sleep|mixed] [--timeout-ms T] [--json PATH] \
         [--expect-computed K] [--shutdown]"
    );
    std::process::exit(2);
}

#[derive(Clone)]
struct Args {
    addr: String,
    clients: usize,
    requests: usize,
    mix: String,
    timeout_ms: Option<u64>,
    json: Option<String>,
    expect_computed: Option<u64>,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        clients: 4,
        requests: 4,
        mix: "cold".to_owned(),
        timeout_ms: None,
        json: None,
        expect_computed: None,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {what} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--addr" => out.addr = grab("--addr"),
            "--clients" => out.clients = grab("--clients").parse().unwrap_or_else(|_| usage()),
            "--requests" => out.requests = grab("--requests").parse().unwrap_or_else(|_| usage()),
            "--mix" => out.mix = grab("--mix"),
            "--timeout-ms" => {
                out.timeout_ms = Some(grab("--timeout-ms").parse().unwrap_or_else(|_| usage()));
            }
            "--json" => out.json = Some(grab("--json")),
            "--expect-computed" => {
                out.expect_computed = Some(
                    grab("--expect-computed")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--shutdown" => out.shutdown = true,
            _ => usage(),
        }
    }
    if out.addr.is_empty() {
        eprintln!("error: --addr is required");
        usage();
    }
    if !matches!(
        out.mix.as_str(),
        "cold" | "repeated" | "flow" | "sleep" | "mixed"
    ) {
        eprintln!("error: unknown mix `{}`", out.mix);
        usage();
    }
    out
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// The deterministic request a (mix, global index) pair maps to.
fn request_for(mix: &str, global: u64) -> Request {
    let cold = |g: u64| {
        Request::new(
            g,
            "sensitivity",
            obj(vec![
                ("samples", Value::U64(400)),
                ("seed", Value::U64(1_000 + g)),
            ]),
        )
    };
    let repeated = |g: u64| {
        Request::new(
            g,
            "sensitivity",
            obj(vec![("samples", Value::U64(400)), ("seed", Value::U64(7))]),
        )
    };
    match mix {
        "cold" => cold(global),
        "repeated" => repeated(global),
        "flow" => Request::new(
            global,
            "pd_flow",
            obj(vec![(
                "activity_pct",
                Value::F64(5.0 + (global % 4) as f64),
            )]),
        ),
        "sleep" => Request::new(
            global,
            "sleep",
            obj(vec![("ms", Value::U64(20)), ("tag", Value::U64(global))]),
        ),
        "mixed" => {
            if global % 2 == 0 {
                cold(global)
            } else {
                repeated(global)
            }
        }
        _ => unreachable!("mix validated at parse"),
    }
}

/// Per-client tallies, merged after the run.
#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    computed: u64,
    reused: u64,
    latencies_us: Vec<u64>,
    /// key hex → FNV digest of the serialised result payload.
    payloads: BTreeMap<String, String>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.timed_out += other.timed_out;
        self.errors += other.errors;
        self.computed += other.computed;
        self.reused += other.reused;
        self.latencies_us.extend(other.latencies_us);
        for (k, v) in other.payloads {
            self.payloads.insert(k, v);
        }
    }
}

fn run_client(args: &Args, client: usize) -> std::io::Result<Tally> {
    let mut tally = Tally::default();
    let stream = TcpStream::connect(&args.addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    for i in 0..args.requests {
        let global = (client * args.requests + i) as u64;
        let mut req = request_for(&args.mix, global);
        req.timeout_ms = args.timeout_ms;
        let start = Instant::now();
        writer.write_all(req.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            ));
        }
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        tally.sent += 1;
        tally.latencies_us.push(us);
        match Response::parse(line.trim()) {
            Ok(Response::Ok {
                key,
                cached,
                coalesced,
                result,
                ..
            }) => {
                tally.ok += 1;
                if cached || coalesced {
                    tally.reused += 1;
                } else {
                    tally.computed += 1;
                }
                let bytes = serde_json::to_string(&result).expect("result serialises");
                let mut h = StableHasher::new();
                bytes.stable_hash(&mut h);
                tally.payloads.insert(key, format!("{:016x}", h.finish()));
            }
            Ok(Response::Err { status: 429, .. }) => tally.rejected += 1,
            Ok(Response::Err { status: 503, .. }) => tally.rejected += 1,
            Ok(Response::Err { status: 408, .. }) => tally.timed_out += 1,
            Ok(Response::Err { .. }) | Err(_) => tally.errors += 1,
        }
    }
    Ok(tally)
}

fn send_shutdown(addr: &str) -> std::io::Result<bool> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writer.write_all(br#"{"case":"shutdown"}"#)?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(matches!(Response::parse(line.trim()), Ok(r) if r.status() == 200))
}

fn main() -> std::io::Result<()> {
    let args = parse_args();
    let wall = Instant::now();
    let mut total = Tally::default();
    if args.clients > 0 && args.requests > 0 {
        let tallies: Vec<std::io::Result<Tally>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..args.clients)
                .map(|c| {
                    let args = &args;
                    s.spawn(move || run_client(args, c))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        });
        for t in tallies {
            total.merge(t?);
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();

    if args.shutdown {
        let ok = send_shutdown(&args.addr)?;
        eprintln!("# shutdown request acknowledged: {ok}");
    }

    let lat = LatencySummary::of(&total.latencies_us);
    let throughput = if wall_s > 0.0 {
        total.ok as f64 / wall_s
    } else {
        0.0
    };
    eprintln!(
        "# mix {} — {} clients x {} requests in {:.0} ms: {:.1} req/s ok, \
         p50 {} us, p95 {} us, p99 {} us, max {} us",
        args.mix,
        args.clients,
        args.requests,
        wall_s * 1.0e3,
        throughput,
        lat.p50_us,
        lat.p95_us,
        lat.p99_us,
        lat.max_us
    );
    eprintln!(
        "# computed {} / reused {} (cache-hit rate {:.0} %)",
        total.computed,
        total.reused,
        if total.ok > 0 {
            100.0 * total.reused as f64 / total.ok as f64
        } else {
            0.0
        }
    );

    // Deterministic artifact: identical request streams against
    // equivalent servers produce byte-identical JSON, whatever the
    // worker count or timing.
    let payloads = Value::Object(
        total
            .payloads
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect(),
    );
    let checks = obj(vec![
        ("mix", Value::Str(args.mix.clone())),
        ("clients", Value::U64(args.clients as u64)),
        ("requests", Value::U64(args.requests as u64)),
        ("sent", Value::U64(total.sent)),
        ("ok", Value::U64(total.ok)),
        ("rejected", Value::U64(total.rejected)),
        ("timed_out", Value::U64(total.timed_out)),
        ("errors", Value::U64(total.errors)),
        ("computed", Value::U64(total.computed)),
        ("reused", Value::U64(total.reused)),
        ("payload_fnv", payloads),
    ]);
    let rendered = serde_json::to_string_pretty(&checks).expect("checks serialise");
    println!("{rendered}");
    if let Some(path) = &args.json {
        std::fs::write(path, format!("{rendered}\n"))?;
    }

    if let Some(expect) = args.expect_computed {
        if total.computed != expect {
            eprintln!(
                "error: expected exactly {expect} computed request(s), observed {}",
                total.computed
            );
            std::process::exit(3);
        }
    }
    Ok(())
}
