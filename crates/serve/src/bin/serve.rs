//! `m3d-serve` — the experiment service daemon.
//!
//! ```text
//! m3d-serve [--addr 127.0.0.1:7733] [--workers N] [--queue-depth D]
//!           [--timeout-ms T] [--scrape-min-interval-ms S]
//! ```
//!
//! Prints a single `{"listening":"host:port"}` line to stdout once the
//! socket is bound (with the ephemeral port resolved when `--addr`
//! ends in `:0`), then serves until a `{"case":"shutdown"}` request
//! arrives, drains queued work, and exits 0.

use m3d_serve::{serve, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: m3d-serve [--addr HOST:PORT] [--workers N] [--queue-depth D] [--timeout-ms T] \
         [--scrape-min-interval-ms S]"
    );
    std::process::exit(2);
}

fn parse_config() -> ServerConfig {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7733".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {what} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--addr" => cfg.addr = grab("--addr"),
            "--workers" => match grab("--workers").parse() {
                Ok(n) if n > 0 => cfg.workers = n,
                _ => usage(),
            },
            "--queue-depth" => match grab("--queue-depth").parse() {
                Ok(n) if n > 0 => cfg.queue_depth = n,
                _ => usage(),
            },
            "--timeout-ms" => match grab("--timeout-ms").parse() {
                Ok(n) if n > 0 => cfg.default_timeout_ms = n,
                _ => usage(),
            },
            // 0 disables per-connection scrape rate limiting.
            "--scrape-min-interval-ms" => match grab("--scrape-min-interval-ms").parse() {
                Ok(n) => cfg.scrape_min_interval_ms = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    cfg
}

fn main() -> std::io::Result<()> {
    let cfg = parse_config();
    let handle = serve(&cfg)?;
    // The machine-readable bind announcement scripts key off.
    println!("{{\"listening\":\"{}\"}}", handle.addr());
    use std::io::Write;
    std::io::stdout().flush()?;
    eprintln!(
        "# m3d-serve on {} — {} workers, queue depth {}, default timeout {} ms",
        handle.addr(),
        cfg.workers,
        cfg.queue_depth,
        cfg.default_timeout_ms
    );
    handle.wait();
    eprintln!("# m3d-serve drained and stopped");
    Ok(())
}
