//! `m3d-gateway` — the cache-aware fleet router.
//!
//! ```text
//! m3d-gateway [--addr 127.0.0.1:7744] [--replicas N] [--workers W]
//!             [--queue-depth D] [--timeout-ms T] [--serve-bin PATH]
//!             [--cache-dir DIR] [--probe-interval-ms P]
//!             [--scrape-min-interval-ms S]
//! ```
//!
//! Spawns and supervises `--replicas` `m3d-serve` child processes
//! (ephemeral ports), then serves the unchanged NDJSON protocol on
//! `--addr`, routing each experiment request to the replica that owns
//! its content key on the consistent-hash ring. Prints a single
//! `{"listening":"host:port"}` line to stdout once the fleet is up and
//! the socket is bound, then serves until a `{"case":"shutdown"}`
//! request arrives, drains the replicas, and exits 0.
//!
//! `--serve-bin` defaults to the `m3d-serve` next to this executable
//! (the cargo target directory layout). `--cache-dir` exports
//! `M3D_CACHE_DIR` so all replicas share one on-disk artifact tier;
//! without it the replicas inherit this process's environment.

use std::path::PathBuf;

use m3d_serve::{serve_fleet, GatewayConfig};

fn usage() -> ! {
    eprintln!(
        "usage: m3d-gateway [--addr HOST:PORT] [--replicas N] [--workers W] [--queue-depth D] \
         [--timeout-ms T] [--serve-bin PATH] [--cache-dir DIR] [--probe-interval-ms P] \
         [--scrape-min-interval-ms S]"
    );
    std::process::exit(2);
}

/// The `m3d-serve` sitting next to this executable, falling back to
/// `$PATH` lookup when the executable path is unavailable.
fn sibling_serve_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            let sibling = exe.with_file_name("m3d-serve");
            sibling.is_file().then_some(sibling)
        })
        .unwrap_or_else(|| PathBuf::from("m3d-serve"))
}

fn parse_config() -> GatewayConfig {
    let mut cfg = GatewayConfig {
        addr: "127.0.0.1:7744".to_owned(),
        serve_bin: sibling_serve_bin(),
        ..GatewayConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {what} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--addr" => cfg.addr = grab("--addr"),
            "--replicas" => match grab("--replicas").parse() {
                Ok(n) if n > 0 => cfg.replicas = n,
                _ => usage(),
            },
            "--workers" => match grab("--workers").parse() {
                Ok(n) if n > 0 => cfg.workers = n,
                _ => usage(),
            },
            "--queue-depth" => match grab("--queue-depth").parse() {
                Ok(n) if n > 0 => cfg.queue_depth = n,
                _ => usage(),
            },
            "--timeout-ms" => match grab("--timeout-ms").parse() {
                Ok(n) if n > 0 => cfg.default_timeout_ms = n,
                _ => usage(),
            },
            "--serve-bin" => cfg.serve_bin = PathBuf::from(grab("--serve-bin")),
            // Exported before any replica spawns; children inherit it.
            "--cache-dir" => std::env::set_var("M3D_CACHE_DIR", grab("--cache-dir")),
            "--probe-interval-ms" => match grab("--probe-interval-ms").parse() {
                Ok(n) if n > 0 => cfg.probe_interval_ms = n,
                _ => usage(),
            },
            "--scrape-min-interval-ms" => match grab("--scrape-min-interval-ms").parse() {
                Ok(n) => cfg.scrape_min_interval_ms = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    cfg
}

fn main() -> std::io::Result<()> {
    let cfg = parse_config();
    let handle = serve_fleet(&cfg)?;
    // The machine-readable bind announcement scripts key off — printed
    // only after every replica announced, so "listening" means the
    // whole fleet is routable.
    println!("{{\"listening\":\"{}\"}}", handle.addr());
    use std::io::Write;
    std::io::stdout().flush()?;
    eprintln!(
        "# m3d-gateway on {} — {} replicas x {} workers (queue depth {}, default timeout {} ms)",
        handle.addr(),
        cfg.replicas,
        cfg.workers,
        cfg.queue_depth,
        cfg.default_timeout_ms
    );
    handle.wait();
    eprintln!("# m3d-gateway drained and stopped");
    Ok(())
}
