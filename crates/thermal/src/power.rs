//! Heat-source maps: per-voxel dissipated power laid onto a
//! [`GridConfig`].
//!
//! Sources come from two places: uniform per-tier budgets (the
//! Observation 10 sweep parameter) and the physical-design sign-off's
//! [`m3d_pd::PowerDensityGrid`], whose 1 mm tiles are conservatively
//! resampled onto the thermal grid by area overlap — total power is
//! preserved exactly, spatial hotspots to the resolution of the coarser
//! of the two grids.

use m3d_pd::power::RRAM_CELL_ENERGY_FRACTION;
use m3d_pd::PowerDensityGrid;
use m3d_tech::thermal_profile::HeatSource;
use m3d_tech::{StableHash, StableHasher};
use serde::{Deserialize, Serialize};

use crate::error::{ThermalError, ThermalResult};
use crate::grid::GridConfig;

/// Per-voxel power, in W, aligned with a [`GridConfig`]'s layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMap {
    /// Lateral cells along x (must match the grid).
    pub nx: usize,
    /// Lateral cells along y (must match the grid).
    pub ny: usize,
    /// Power per lateral cell for each grid layer, bottom-up; passive
    /// layers carry all-zero planes.
    pub layer_w: Vec<Vec<f64>>,
}

impl StableHash for PowerMap {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.nx.stable_hash(h);
        self.ny.stable_hash(h);
        self.layer_w.stable_hash(h);
    }
}

impl PowerMap {
    /// An all-zero map matching `grid`.
    pub fn zero(grid: &GridConfig) -> Self {
        Self {
            nx: grid.nx,
            ny: grid.ny,
            layer_w: vec![vec![0.0; grid.nx * grid.ny]; grid.nz()],
        }
    }

    /// Uniform per-tier-pair power: each pair dissipates
    /// `per_pair_w`, spread evenly over the die and split between the
    /// pair's source layers — active vs BEOL memory by the sign-off's
    /// cell-array energy fraction when both exist, all onto whichever
    /// single source plane a lumped grid has.
    pub fn uniform(grid: &GridConfig, per_pair_w: f64) -> Self {
        let mut map = Self::zero(grid);
        let cells = (grid.nx * grid.ny) as f64;
        let pairs = grid.tier_pairs();
        for pair in 0..pairs {
            let active: Vec<usize> = grid
                .layers
                .iter()
                .enumerate()
                .filter(|(_, s)| s.source == (HeatSource::Active { pair }))
                .map(|(l, _)| l)
                .collect();
            let memory: Vec<usize> = grid
                .layers
                .iter()
                .enumerate()
                .filter(|(_, s)| s.source == (HeatSource::Memory { pair }))
                .map(|(l, _)| l)
                .collect();
            let (w_active, w_memory) = if memory.is_empty() {
                (per_pair_w, 0.0)
            } else if active.is_empty() {
                (0.0, per_pair_w)
            } else {
                (
                    per_pair_w * (1.0 - RRAM_CELL_ENERGY_FRACTION),
                    per_pair_w * RRAM_CELL_ENERGY_FRACTION,
                )
            };
            for (layers, total) in [(&active, w_active), (&memory, w_memory)] {
                if layers.is_empty() || total == 0.0 {
                    continue;
                }
                let per_cell = total / (layers.len() as f64 * cells);
                for &l in layers.iter() {
                    for p in &mut map.layer_w[l] {
                        *p += per_cell;
                    }
                }
            }
        }
        map
    }

    /// Lays the sign-off's tiled power map onto the grid: Si-tier tile
    /// power heats the active device layers, upper-layer tile power the
    /// BEOL memory layers, both resampled by rectangle overlap (exact
    /// power conservation for tiles inside the die outline) and split
    /// evenly across the pairs when the stack interleaves several.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::ShapeMismatch`] when the grid has no
    /// source layers to carry the deposit.
    pub fn from_density_grid(grid: &GridConfig, pd: &PowerDensityGrid) -> ThermalResult<Self> {
        let mut map = Self::zero(grid);
        let active: Vec<usize> = grid
            .layers
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.source, HeatSource::Active { .. }))
            .map(|(l, _)| l)
            .collect();
        let memory: Vec<usize> = grid
            .layers
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.source, HeatSource::Memory { .. }))
            .map(|(l, _)| l)
            .collect();
        if active.is_empty() {
            return Err(ThermalError::ShapeMismatch {
                what: "active source layers",
                expected: 1,
                actual: 0,
            });
        }
        let upper_sinks = if memory.is_empty() { &active } else { &memory };
        let mut lateral_si = vec![0.0f64; grid.nx * grid.ny];
        let mut lateral_up = vec![0.0f64; grid.nx * grid.ny];
        resample(grid, pd, &pd.si_mw, &mut lateral_si);
        resample(grid, pd, &pd.upper_mw, &mut lateral_up);
        for (layers, lateral) in [(&active, &lateral_si), (upper_sinks, &lateral_up)] {
            let share = 1.0 / layers.len() as f64;
            for &l in layers.iter() {
                for (cell, mw) in map.layer_w[l].iter_mut().zip(lateral) {
                    *cell += mw * 1.0e-3 * share; // mW → W
                }
            }
        }
        Ok(map)
    }

    /// Total deposited power in W.
    pub fn total_w(&self) -> f64 {
        self.layer_w.iter().flatten().sum()
    }

    /// Every deposit scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            nx: self.nx,
            ny: self.ny,
            layer_w: self
                .layer_w
                .iter()
                .map(|plane| plane.iter().map(|p| p * factor).collect())
                .collect(),
        }
    }

    /// Validates shape agreement against `grid`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::ShapeMismatch`] on any axis disagreement.
    pub fn check(&self, grid: &GridConfig) -> ThermalResult<()> {
        if self.nx != grid.nx || self.ny != grid.ny {
            return Err(ThermalError::ShapeMismatch {
                what: "power map lateral cells",
                expected: grid.nx * grid.ny,
                actual: self.nx * self.ny,
            });
        }
        if self.layer_w.len() != grid.nz() {
            return Err(ThermalError::ShapeMismatch {
                what: "power map layers",
                expected: grid.nz(),
                actual: self.layer_w.len(),
            });
        }
        Ok(())
    }
}

/// Deposits `tile_mw` (one value per pd tile) into `out` (one value per
/// thermal lateral cell) by rectangle-overlap fractions.
fn resample(grid: &GridConfig, pd: &PowerDensityGrid, tile_mw: &[f64], out: &mut [f64]) {
    let die_w = grid.nx as f64 * grid.dx_um;
    let die_h = grid.ny as f64 * grid.dy_um;
    for ty in 0..pd.ny {
        for tx in 0..pd.nx {
            let mw = tile_mw[ty * pd.nx + tx];
            if mw == 0.0 {
                continue;
            }
            // Tile rectangle relative to the die origin, clamped to it.
            let x0 = (tx as f64 * pd.tile_um).min(die_w);
            let y0 = (ty as f64 * pd.tile_um).min(die_h);
            let x1 = ((tx + 1) as f64 * pd.tile_um).min(die_w);
            let y1 = ((ty + 1) as f64 * pd.tile_um).min(die_h);
            let tile_area = pd.tile_um * pd.tile_um;
            let i0 = ((x0 / grid.dx_um).floor() as usize).min(grid.nx - 1);
            let i1 = ((x1 / grid.dx_um).ceil() as usize).clamp(i0 + 1, grid.nx);
            let j0 = ((y0 / grid.dy_um).floor() as usize).min(grid.ny - 1);
            let j1 = ((y1 / grid.dy_um).ceil() as usize).clamp(j0 + 1, grid.ny);
            let mut deposited = 0.0;
            for j in j0..j1 {
                for i in i0..i1 {
                    let ox = (x1.min((i + 1) as f64 * grid.dx_um) - x0.max(i as f64 * grid.dx_um))
                        .max(0.0);
                    let oy = (y1.min((j + 1) as f64 * grid.dy_um) - y0.max(j as f64 * grid.dy_um))
                        .max(0.0);
                    let frac = ox * oy / tile_area;
                    out[j * grid.nx + i] += mw * frac;
                    deposited += frac;
                }
            }
            // Power falling outside the die outline (clamped tiles,
            // including ones entirely beyond it) is folded into the
            // nearest covered cells to conserve totals.
            if deposited < 1.0 {
                let fold = mw * (1.0 - deposited) / ((j1 - j0) * (i1 - i0)) as f64;
                for j in j0..j1 {
                    for i in i0..i1 {
                        out[j * grid.nx + i] += fold;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_core::ThermalModel;
    use m3d_tech::LayerStack;

    fn grid() -> GridConfig {
        GridConfig::from_stack(&LayerStack::m3d_130nm(), 100.0, 8, 8, 2, 1.0, 60.0).unwrap()
    }

    #[test]
    fn uniform_conserves_power_and_splits_by_energy_fraction() {
        let g = grid();
        let m = PowerMap::uniform(&g, 5.0);
        m.check(&g).unwrap();
        assert!((m.total_w() - 2.0 * 5.0).abs() < 1e-9, "two pairs × 5 W");
        // Memory layers carry the cell-array fraction.
        let mem_w: f64 = g
            .layers
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.source, HeatSource::Memory { .. }))
            .map(|(l, _)| m.layer_w[l].iter().sum::<f64>())
            .sum();
        assert!((mem_w - 2.0 * 5.0 * RRAM_CELL_ENERGY_FRACTION).abs() < 1e-9);
    }

    #[test]
    fn lumped_grid_takes_all_power_on_the_source_plane() {
        let g = GridConfig::lumped(&ThermalModel::conventional(5.0), 3);
        let m = PowerMap::uniform(&g, 5.0);
        assert!((m.total_w() - 15.0).abs() < 1e-12);
        for (l, s) in g.layers.iter().enumerate() {
            let w: f64 = m.layer_w[l].iter().sum();
            match s.source {
                HeatSource::Active { .. } => assert!((w - 5.0).abs() < 1e-12),
                _ => assert_eq!(w, 0.0),
            }
        }
    }

    #[test]
    fn density_resampling_conserves_total_power() {
        let g = grid();
        let die_um = 100.0_f64.sqrt() * 1.0e3;
        let pd = PowerDensityGrid {
            nx: 11,
            ny: 11,
            tile_um: 1000.0,
            x0_um: 0.0,
            y0_um: 0.0,
            si_mw: (0..121).map(|i| i as f64).collect(),
            upper_mw: vec![0.5; 121],
        };
        assert!(11.0 * 1000.0 > die_um, "tiles overhang the die outline");
        let m = PowerMap::from_density_grid(&g, &pd).unwrap();
        let want = (pd.si_mw.iter().sum::<f64>() + pd.upper_mw.iter().sum::<f64>()) * 1.0e-3;
        assert!(
            (m.total_w() - want).abs() < 1e-9,
            "resampled {} vs deposited {want}",
            m.total_w()
        );
    }

    #[test]
    fn scaling_is_linear() {
        let g = grid();
        let m = PowerMap::uniform(&g, 4.0);
        assert!((m.scaled(2.5).total_w() - 2.5 * m.total_w()).abs() < 1e-9);
        assert_ne!(m.stable_key(), m.scaled(2.0).stable_key());
    }

    #[test]
    fn shape_mismatch_detected() {
        let g = grid();
        let other =
            GridConfig::from_stack(&LayerStack::m3d_130nm(), 100.0, 4, 4, 2, 1.0, 60.0).unwrap();
        let m = PowerMap::uniform(&other, 4.0);
        assert!(m.check(&g).is_err());
    }
}
