//! Steady-state temperature solve: red-black successive over-relaxation
//! on the 7-point voxel stencil.
//!
//! The grid is two-colored by `(i + j + l) % 2`; every neighbour of a
//! red cell is black and vice versa, so all cells of one color update
//! independently from a consistent snapshot of the other. The parallel
//! path fans row-segments of one color out over
//! [`m3d_core::engine::par_map`] and scatters the results back by input
//! index — the arithmetic per cell is the same expression the serial
//! in-place sweep evaluates, so the solution is **bitwise identical at
//! any worker count** (the property the determinism harness checks).
//! Convergence is judged on the sweep's maximum absolute update, an
//! order-independent reduction.
//!
//! The solve runs in the *rise* domain: ambient is 0 K and the returned
//! field is the temperature rise above it.

use m3d_core::engine::{jobs, par_map};
use m3d_tech::{StableHash, StableHasher};
use serde::{Deserialize, Serialize};

use crate::error::{ThermalError, ThermalResult};
use crate::grid::{Assembled, GridConfig};
use crate::power::PowerMap;

/// Iteration controls for the SOR solve.
///
/// There is deliberately no parallelism knob here: whether a half-sweep
/// fans out is decided from the worker budget ([`jobs`]) and the grid
/// shape alone (see [`engage_parallel`]), never affects the result, and
/// therefore never splits a cache key.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Iteration cap (one iteration = one red + one black half-sweep).
    pub max_iters: usize,
    /// Convergence threshold on the max per-sweep update, in K.
    pub tol_k: f64,
    /// Over-relaxation factor, in `(0, 2)`.
    pub omega: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            max_iters: 50_000,
            tol_k: 1.0e-7,
            omega: 1.7,
        }
    }
}

impl StableHash for SolverConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.max_iters.stable_hash(h);
        self.tol_k.stable_hash(h);
        self.omega.stable_hash(h);
    }
}

/// Whether a grid's half-sweeps run on the parallel executor: yes as
/// soon as more than one worker is available and there are enough
/// `(layer, row)` segments to hand every worker several chunks.
///
/// This replaces the old fixed cell-count threshold (8192): with
/// chunked work stealing in [`par_map`] the µs-grained rows amortise
/// their claiming cost, so the only shapes kept serial are degenerate
/// ones (lumped 1×1 validation chains and the like) where a half-sweep
/// has fewer segments than would occupy the workers at all.
pub fn engage_parallel(row_segments: usize, workers: usize) -> bool {
    workers > 1 && row_segments >= 4 * workers
}

impl SolverConfig {
    /// Validates the iteration controls.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a zero iteration
    /// cap, a non-positive tolerance or an omega outside `(0, 2)`.
    pub fn check(&self) -> ThermalResult<()> {
        if self.max_iters == 0 {
            return Err(ThermalError::InvalidParameter {
                parameter: "max_iters",
                value: 0.0,
                expected: "at least one iteration",
            });
        }
        if !self.tol_k.is_finite() || self.tol_k <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                parameter: "tol_k",
                value: self.tol_k,
                expected: "finite and > 0",
            });
        }
        if !self.omega.is_finite() || self.omega <= 0.0 || self.omega >= 2.0 {
            return Err(ThermalError::InvalidParameter {
                parameter: "omega",
                value: self.omega,
                expected: "in (0, 2)",
            });
        }
        Ok(())
    }
}

/// The converged temperature field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteadySolution {
    /// Lateral cells along x.
    pub nx: usize,
    /// Lateral cells along y.
    pub ny: usize,
    /// Grid layers.
    pub nz: usize,
    /// Per-voxel temperature rise over ambient, in K (row-major
    /// `(l * ny + j) * nx + i`).
    pub t_k: Vec<f64>,
    /// Hottest voxel's rise, in K.
    pub peak_rise_k: f64,
    /// Iterations spent (red + black half-sweeps count as one).
    pub iterations: usize,
    /// Whether the tolerance was met within the iteration cap.
    pub converged: bool,
}

impl SteadySolution {
    /// Peak rise of one grid layer, in K.
    pub fn layer_peak_k(&self, l: usize) -> f64 {
        let plane = self.nx * self.ny;
        self.t_k[l * plane..(l + 1) * plane]
            .iter()
            .fold(0.0f64, |m, &t| m.max(t))
    }
}

/// The per-cell SOR update and the shared stencil arithmetic.
struct Stencil<'a> {
    asm: &'a Assembled,
    q: &'a [f64],
    omega: f64,
}

impl Stencil<'_> {
    /// The relaxed new value of cell `(i, j, l)` given the current
    /// field `t`. Reads only the cell itself and its six neighbours —
    /// all of the opposite color.
    #[inline]
    fn updated(&self, t: &[f64], i: usize, j: usize, l: usize) -> f64 {
        let a = self.asm;
        let idx = (l * a.ny + j) * a.nx + i;
        let mut num = self.q[idx];
        let mut den = 0.0;
        if i > 0 {
            num += a.g_x[l] * t[idx - 1];
            den += a.g_x[l];
        }
        if i + 1 < a.nx {
            num += a.g_x[l] * t[idx + 1];
            den += a.g_x[l];
        }
        if j > 0 {
            num += a.g_y[l] * t[idx - a.nx];
            den += a.g_y[l];
        }
        if j + 1 < a.ny {
            num += a.g_y[l] * t[idx + a.nx];
            den += a.g_y[l];
        }
        let plane = a.nx * a.ny;
        if l > 0 {
            num += a.g_v[l - 1] * t[idx - plane];
            den += a.g_v[l - 1];
        }
        if l + 1 < a.nz {
            num += a.g_v[l] * t[idx + plane];
            den += a.g_v[l];
        }
        if l == 0 {
            // Sink to ambient (0 K in the rise domain): contributes to
            // the diagonal only.
            den += a.g_sink;
        }
        let t_gs = num / den.max(f64::MIN_POSITIVE);
        (1.0 - self.omega) * t[idx] + self.omega * t_gs
    }

    /// One serial in-place half-sweep over `color`; returns the max
    /// absolute update.
    fn half_sweep_serial(&self, t: &mut [f64], color: usize) -> f64 {
        let a = self.asm;
        let mut max_d = 0.0f64;
        for l in 0..a.nz {
            for j in 0..a.ny {
                for i in ((l + j + color) % 2..a.nx).step_by(2) {
                    let new = self.updated(t, i, j, l);
                    let idx = (l * a.ny + j) * a.nx + i;
                    max_d = max_d.max((new - t[idx]).abs());
                    t[idx] = new;
                }
            }
        }
        max_d
    }

    /// One parallel half-sweep over `color`: each `(l, j)` row segment
    /// is computed out-of-place from the shared snapshot — legal
    /// because same-color cells never read each other — then scattered
    /// back in input order. Produces exactly the serial sweep's values.
    fn half_sweep_parallel(&self, t: &mut Vec<f64>, color: usize, rows: &[(usize, usize)]) -> f64 {
        let a = self.asm;
        let snapshot: &[f64] = t;
        let updated: Vec<(Vec<f64>, f64)> = par_map(rows, |&(l, j)| {
            let mut vals = Vec::with_capacity(a.nx / 2 + 1);
            let mut max_d = 0.0f64;
            for i in ((l + j + color) % 2..a.nx).step_by(2) {
                let new = self.updated(snapshot, i, j, l);
                let idx = (l * a.ny + j) * a.nx + i;
                max_d = max_d.max((new - snapshot[idx]).abs());
                vals.push(new);
            }
            (vals, max_d)
        });
        let mut max_d = 0.0f64;
        for (&(l, j), (vals, row_d)) in rows.iter().zip(&updated) {
            max_d = max_d.max(*row_d);
            for (k, i) in ((l + j + color) % 2..a.nx).step_by(2).enumerate() {
                t[(l * a.ny + j) * a.nx + i] = vals[k];
            }
        }
        max_d
    }
}

/// Solves the steady-state rise field of `power` on `grid`.
///
/// # Errors
///
/// Returns [`ThermalError::ShapeMismatch`] when the map does not fit
/// the grid and [`ThermalError::InvalidParameter`] for bad iteration
/// controls.
pub fn solve_steady(
    grid: &GridConfig,
    power: &PowerMap,
    cfg: &SolverConfig,
) -> ThermalResult<SteadySolution> {
    let row_segments = grid.nz() * grid.ny;
    solve_steady_forced(grid, power, cfg, engage_parallel(row_segments, jobs()))
}

/// [`solve_steady`] with the parallel/serial decision pinned — the
/// bitwise-identity harness drives both paths through this.
fn solve_steady_forced(
    grid: &GridConfig,
    power: &PowerMap,
    cfg: &SolverConfig,
    parallel: bool,
) -> ThermalResult<SteadySolution> {
    power.check(grid)?;
    cfg.check()?;
    let asm = grid.assemble();
    let q: Vec<f64> = power.layer_w.iter().flatten().copied().collect();
    let mut t = vec![0.0f64; grid.cells()];
    let stencil = Stencil {
        asm: &asm,
        q: &q,
        omega: cfg.omega,
    };
    let rows: Vec<(usize, usize)> = (0..asm.nz)
        .flat_map(|l| (0..asm.ny).map(move |j| (l, j)))
        .collect();
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        let mut max_d = 0.0f64;
        for color in 0..2 {
            max_d = max_d.max(if parallel {
                stencil.half_sweep_parallel(&mut t, color, &rows)
            } else {
                stencil.half_sweep_serial(&mut t, color)
            });
        }
        if max_d < cfg.tol_k {
            converged = true;
            break;
        }
    }
    let peak = t.iter().fold(0.0f64, |m, &v| m.max(v));
    let rec = m3d_core::obs::Recorder::global();
    rec.incr("thermal.solves", 1);
    rec.incr(
        if parallel {
            "thermal.solves_parallel"
        } else {
            "thermal.solves_serial"
        },
        1,
    );
    rec.observe(
        "thermal.sor_iterations",
        iterations as u64,
        m3d_core::obs::ITER_EDGES,
    );
    Ok(SteadySolution {
        nx: grid.nx,
        ny: grid.ny,
        nz: asm.nz,
        t_k: t,
        peak_rise_k: peak,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_core::ThermalModel;
    use m3d_tech::LayerStack;

    fn grid() -> GridConfig {
        GridConfig::from_stack(&LayerStack::m3d_130nm(), 100.0, 8, 8, 2, 1.0, 60.0).unwrap()
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let g = grid();
        let s = solve_steady(&g, &PowerMap::zero(&g), &SolverConfig::default()).unwrap();
        assert!(s.converged);
        assert!(s.t_k.iter().all(|&t| t == 0.0));
        assert_eq!(s.peak_rise_k, 0.0);
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_bitwise() {
        let g = grid();
        let p = PowerMap::uniform(&g, 5.0);
        let cfg = SolverConfig::default();
        let a = solve_steady_forced(&g, &p, &cfg, false).unwrap();
        let b = solve_steady_forced(&g, &p, &cfg, true).unwrap();
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.t_k, b.t_k, "bitwise-identical fields");
        assert_eq!(
            a.peak_rise_k.to_bits(),
            b.peak_rise_k.to_bits(),
            "bitwise-identical peak"
        );
    }

    #[test]
    fn parallel_engages_on_worker_budget_and_shape_not_cell_count() {
        // Degenerate shapes (lumped validation chains) stay serial;
        // anything with enough row segments fans out once workers exist.
        assert!(!engage_parallel(8, 1), "one worker is always serial");
        assert!(
            !engage_parallel(7, 2),
            "too few segments to occupy 2 workers"
        );
        assert!(engage_parallel(8, 2));
        assert!(engage_parallel(160, 8), "obs10-scale grids now parallelise");
    }

    #[test]
    fn lumped_grid_reproduces_the_analytic_model() {
        let m = ThermalModel::conventional(5.0);
        for tiers in [1u32, 2, 4] {
            let g = GridConfig::lumped(&m, tiers);
            let p = PowerMap::uniform(&g, 5.0);
            let s = solve_steady(&g, &p, &SolverConfig::default()).unwrap();
            assert!(s.converged);
            let want = m.temperature_rise(tiers);
            let got = s.peak_rise_k;
            assert!(
                (got - want).abs() / want < 0.02,
                "tiers={tiers}: grid {got} vs analytic {want}"
            );
        }
    }

    #[test]
    fn energy_balance_holds_at_the_sink() {
        // In steady state all injected power leaves through the sink:
        // Σ g_sink · T_bottom = P_total.
        let g = grid();
        let p = PowerMap::uniform(&g, 5.0);
        let tight = SolverConfig {
            tol_k: 1.0e-10,
            ..SolverConfig::default()
        };
        let s = solve_steady(&g, &p, &tight).unwrap();
        assert!(s.converged);
        let g_sink = g.assemble().g_sink;
        let bottom_sum: f64 = s.t_k[..g.nx * g.ny].iter().sum();
        let out_w = g_sink * bottom_sum;
        assert!(
            (out_w - p.total_w()).abs() / p.total_w() < 1e-3,
            "sink extracts {out_w} W of {} W injected",
            p.total_w()
        );
    }

    #[test]
    fn hotter_map_means_hotter_peak() {
        let g = grid();
        let cfg = SolverConfig::default();
        let cool = solve_steady(&g, &PowerMap::uniform(&g, 2.0), &cfg).unwrap();
        let hot = solve_steady(&g, &PowerMap::uniform(&g, 8.0), &cfg).unwrap();
        assert!(hot.peak_rise_k > cool.peak_rise_k);
        // The network is linear: 4× the power is 4× the rise.
        assert!((hot.peak_rise_k / cool.peak_rise_k - 4.0).abs() < 1e-3);
    }

    #[test]
    fn solver_config_validation() {
        let g = grid();
        let p = PowerMap::uniform(&g, 1.0);
        let bad_omega = SolverConfig {
            omega: 2.5,
            ..SolverConfig::default()
        };
        assert!(solve_steady(&g, &p, &bad_omega).is_err());
        let bad_iters = SolverConfig {
            max_iters: 0,
            ..SolverConfig::default()
        };
        assert!(solve_steady(&g, &p, &bad_iters).is_err());
        // The stable key tracks exactly the physics knobs.
        let a = SolverConfig::default();
        let c = SolverConfig { omega: 1.5, ..a };
        assert_eq!(a.stable_key(), SolverConfig::default().stable_key());
        assert_ne!(a.stable_key(), c.stable_key());
    }
}
