//! Voxelization of the M3D layer stack into a 3D RC thermal grid.
//!
//! A [`GridConfig`] is `nx × ny` lateral cells by one grid layer per
//! [`ThermalLayerSpec`] slab of the vertical profile. Cell temperatures
//! live at slab mid-planes; conductances between vertically adjacent
//! cells are the series combination of the two half-slab resistances,
//! lateral conductances use each slab's in-plane conductivity, the die
//! bottom couples to ambient through the package/heat-sink resistance
//! and all other boundaries are adiabatic (worst case — no lateral
//! package spreading).

use m3d_core::ThermalModel;
use m3d_tech::thermal_profile::{HeatSource, ThermalLayerSpec};
use m3d_tech::{LayerStack, StableHash, StableHasher};
use serde::{Deserialize, Serialize};

use crate::error::{ThermalError, ThermalResult};

/// µm → m.
pub(crate) const UM: f64 = 1.0e-6;

/// A stand-in conductivity for slabs modelled as thermally transparent
/// (lumped-equivalence source planes); high enough that their series
/// resistance is negligible against any real slab.
const K_TRANSPARENT: f64 = 1.0e4;

/// The voxelized thermal grid: geometry, materials and boundary model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Lateral cells along x.
    pub nx: usize,
    /// Lateral cells along y.
    pub ny: usize,
    /// Lateral cell edge along x, in µm.
    pub dx_um: f64,
    /// Lateral cell edge along y, in µm.
    pub dy_um: f64,
    /// Vertical slabs, bottom-up (one grid layer each).
    pub layers: Vec<ThermalLayerSpec>,
    /// Package + heat-sink resistance from the die bottom to ambient,
    /// in K/W (whole die).
    pub sink_k_per_w: f64,
    /// Maximum allowed temperature rise over ambient, in K.
    pub max_rise_k: f64,
}

impl StableHash for GridConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.nx.stable_hash(h);
        self.ny.stable_hash(h);
        self.dx_um.stable_hash(h);
        self.dy_um.stable_hash(h);
        self.layers.stable_hash(h);
        self.sink_k_per_w.stable_hash(h);
        self.max_rise_k.stable_hash(h);
    }
}

/// Per-cell/per-interface conductances of an assembled grid, in W/K
/// (and per-cell heat capacities in J/K for transient stepping).
#[derive(Debug, Clone)]
pub(crate) struct Assembled {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Lateral x-conductance between in-layer neighbours, per layer.
    pub g_x: Vec<f64>,
    /// Lateral y-conductance between in-layer neighbours, per layer.
    pub g_y: Vec<f64>,
    /// Vertical conductance between layer `l` and `l + 1` (len `nz-1`).
    pub g_v: Vec<f64>,
    /// Bottom-cell conductance to ambient through the sink.
    pub g_sink: f64,
    /// Per-cell heat capacity, per layer.
    pub cap_j_per_k: Vec<f64>,
}

impl GridConfig {
    /// Voxelizes `tier_pairs` pairs of `stack` over a square die of
    /// `die_mm2` at `nx × ny` lateral resolution, with conventional
    /// packaging (sink resistance `sink_k_per_w`, budget `max_rise_k`).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for an empty lateral
    /// grid or a non-positive die.
    pub fn from_stack(
        stack: &LayerStack,
        die_mm2: f64,
        nx: usize,
        ny: usize,
        tier_pairs: u32,
        sink_k_per_w: f64,
        max_rise_k: f64,
    ) -> ThermalResult<Self> {
        if nx == 0 || ny == 0 {
            return Err(ThermalError::InvalidParameter {
                parameter: "nx/ny",
                value: (nx.min(ny)) as f64,
                expected: "at least one lateral cell per axis",
            });
        }
        if !die_mm2.is_finite() || die_mm2 <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                parameter: "die_mm2",
                value: die_mm2,
                expected: "finite and > 0",
            });
        }
        let edge_um = die_mm2.sqrt() * 1.0e3;
        Ok(Self {
            nx,
            ny,
            dx_um: edge_um / nx as f64,
            dy_um: edge_um / ny as f64,
            layers: stack.thermal_profile(tier_pairs),
            sink_k_per_w,
            max_rise_k,
        })
    }

    /// The single-lateral-cell grid whose chain of vertical resistances
    /// reproduces the analytic [`ThermalModel`] (eq. 17) exactly: ambient
    /// `—R₀—` substrate `—R_j—` pair 1 `—R_j—` pair 2 … with power
    /// injected at each pair's source plane. Substrate and source planes
    /// are thermally transparent, so the grid's top-plane rise equals
    /// the analytic `temperature_rise` up to discretization noise — the
    /// limiting-case agreement the solver is validated against.
    pub fn lumped(model: &ThermalModel, tiers: u32) -> Self {
        let tiers = tiers.max(1);
        // The lateral cell area cancels out of a 1×1 chain; any value
        // works as long as the gap conductivities are derived from it.
        let area_m2: f64 = 1.0e-4; // 100 mm²
        let edge_um = area_m2.sqrt() / UM;
        let t_um = 1.0;
        let transparent = |name: String, source: HeatSource| ThermalLayerSpec {
            name,
            thickness_um: t_um,
            k_vertical_w_mk: K_TRANSPARENT,
            k_lateral_w_mk: K_TRANSPARENT,
            volumetric_heat_j_m3k: 1.65e6,
            source,
        };
        // k = t / (R · A) makes a slab's full-thickness vertical
        // resistance exactly R_j.
        let r_j = model.per_tier_k_per_w.max(1.0e-12);
        let k_gap = (t_um * UM) / (r_j * area_m2);
        let mut layers = vec![transparent("substrate".to_owned(), HeatSource::Passive)];
        for pair in 0..tiers {
            layers.push(ThermalLayerSpec {
                name: format!("pair{pair}:gap"),
                thickness_um: t_um,
                k_vertical_w_mk: k_gap,
                k_lateral_w_mk: k_gap,
                volumetric_heat_j_m3k: 1.8e6,
                source: HeatSource::Passive,
            });
            layers.push(transparent(
                format!("pair{pair}:active"),
                HeatSource::Active { pair },
            ));
        }
        Self {
            nx: 1,
            ny: 1,
            dx_um: edge_um,
            dy_um: edge_um,
            layers,
            sink_k_per_w: model.sink_k_per_w,
            max_rise_k: model.max_rise_k,
        }
    }

    /// Grid layers (= vertical slabs).
    pub fn nz(&self) -> usize {
        self.layers.len()
    }

    /// Total voxel count.
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz()
    }

    /// Row-major voxel index of `(i, j, l)` (x, y, layer).
    pub fn idx(&self, i: usize, j: usize, l: usize) -> usize {
        (l * self.ny + j) * self.nx + i
    }

    /// Number of tier pairs represented (max source-pair index + 1).
    pub fn tier_pairs(&self) -> u32 {
        self.layers
            .iter()
            .filter_map(|s| match s.source {
                HeatSource::Active { pair } | HeatSource::Memory { pair } => Some(pair + 1),
                HeatSource::Passive => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Assembles the per-cell conductance network.
    pub(crate) fn assemble(&self) -> Assembled {
        let nz = self.nz();
        let area_m2 = self.dx_um * self.dy_um * UM * UM;
        let dx_m = self.dx_um * UM;
        let dy_m = self.dy_um * UM;
        let mut g_x = Vec::with_capacity(nz);
        let mut g_y = Vec::with_capacity(nz);
        let mut cap = Vec::with_capacity(nz);
        for s in &self.layers {
            let t_m = s.thickness_um * UM;
            g_x.push(s.k_lateral_w_mk * (dy_m * t_m) / dx_m);
            g_y.push(s.k_lateral_w_mk * (dx_m * t_m) / dy_m);
            cap.push(s.volumetric_heat_j_m3k * area_m2 * t_m);
        }
        // Per-area half-slab resistance t/(2k), in m²·K/W; an interface
        // conductance is the cell area over the two half-resistances in
        // series.
        let half_r = |s: &ThermalLayerSpec| (s.thickness_um * UM) / (2.0 * s.k_vertical_w_mk);
        let g_v = self
            .layers
            .windows(2)
            .map(|w| area_m2 / (half_r(&w[0]) + half_r(&w[1])).max(f64::MIN_POSITIVE))
            .collect();
        // The whole-die sink resistance splits across the bottom cells
        // in parallel; each cell additionally crosses its own half
        // substrate thickness.
        let cells = (self.nx * self.ny) as f64;
        let r_cell = self.sink_k_per_w * cells + half_r(&self.layers[0]) / area_m2;
        Assembled {
            nx: self.nx,
            ny: self.ny,
            nz,
            g_x,
            g_y,
            g_v,
            g_sink: 1.0 / r_cell.max(f64::MIN_POSITIVE),
            cap_j_per_k: cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_stack_shapes_the_grid() {
        let stack = LayerStack::m3d_130nm();
        let g = GridConfig::from_stack(&stack, 100.0, 8, 8, 3, 1.0, 60.0).unwrap();
        assert_eq!(g.nz(), 1 + 2 * 3);
        assert_eq!(g.cells(), 8 * 8 * 7);
        assert_eq!(g.tier_pairs(), 3);
        assert!((g.dx_um - 1250.0).abs() < 1e-9, "10 mm / 8 cells");
        assert!(GridConfig::from_stack(&stack, 100.0, 0, 8, 3, 1.0, 60.0).is_err());
        assert!(GridConfig::from_stack(&stack, -1.0, 8, 8, 3, 1.0, 60.0).is_err());
    }

    #[test]
    fn lumped_chain_resistances_match_the_model() {
        let m = ThermalModel::conventional(5.0);
        let g = GridConfig::lumped(&m, 2);
        let asm = g.assemble();
        // Sink conductance ≈ 1/R₀ (one lateral cell).
        assert!((1.0 / asm.g_sink - m.sink_k_per_w).abs() / m.sink_k_per_w < 1e-3);
        // Source-to-source vertical resistance ≈ R_j: two interfaces in
        // series around each gap slab.
        let r_pair: f64 = 1.0 / asm.g_v[1] + 1.0 / asm.g_v[2];
        assert!(
            (r_pair - m.per_tier_k_per_w).abs() / m.per_tier_k_per_w < 1e-3,
            "pair resistance {r_pair} vs Rj {}",
            m.per_tier_k_per_w
        );
    }

    #[test]
    fn indexing_is_row_major() {
        let stack = LayerStack::m3d_130nm();
        let g = GridConfig::from_stack(&stack, 100.0, 4, 3, 1, 1.0, 60.0).unwrap();
        assert_eq!(g.idx(0, 0, 0), 0);
        assert_eq!(g.idx(1, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0), 4);
        assert_eq!(g.idx(0, 0, 1), 12);
    }

    #[test]
    fn stable_key_tracks_content() {
        let stack = LayerStack::m3d_130nm();
        let a = GridConfig::from_stack(&stack, 100.0, 8, 8, 2, 1.0, 60.0).unwrap();
        let b = GridConfig::from_stack(&stack, 100.0, 8, 8, 2, 1.0, 60.0).unwrap();
        let c = GridConfig::from_stack(&stack, 100.0, 8, 8, 3, 1.0, 60.0).unwrap();
        assert_eq!(a.stable_key(), b.stable_key());
        assert_ne!(a.stable_key(), c.stable_key());
    }
}
