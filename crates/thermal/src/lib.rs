//! Voxelized 3D thermal analysis of the M3D stack (Observation 10 at
//! grid fidelity).
//!
//! The analytic eq. 17 lump in `m3d-core` treats each tier pair as one
//! resistance; this crate replaces it, behind the same
//! [`m3d_core::TierThermalModel`] trait, with a physical model:
//!
//! 1. **Voxelize** — [`GridConfig::from_stack`] slices the
//!    `m3d-tech` [`m3d_tech::LayerStack`]'s thermal profile (substrate,
//!    active tiers, BEOL + RRAM slabs) into an `nx × ny × nz` RC grid.
//! 2. **Deposit** — [`PowerMap`] lays heat onto the source layers:
//!    uniform per-pair budgets for sweeps, or the physical-design
//!    sign-off's [`m3d_pd::PowerDensityGrid`] resampled tile-by-tile.
//! 3. **Solve** — [`solve_steady`] runs red-black SOR, fanned out over
//!    [`m3d_core::engine::par_map`] yet bitwise deterministic at any
//!    worker count; [`step_phases`] adds a coarse explicit-Euler
//!    transient driven by `m3d-arch` workload [`m3d_arch::trace::Phase`]s.
//!
//! [`GridThermalModel`] plugs the grid into tier sweeps and sensitivity
//! pruning; [`LumpedGridModel`] solves the analytic chain on the same
//! grid machinery and must agree with eq. 17 within 2 % (the crate's
//! limiting-case validation). [`ThermalCache`] memoizes solves by
//! [`m3d_tech::StableHash`] content key.

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod grid;
pub mod model;
pub mod power;
pub mod solve;
pub mod transient;

pub use cache::ThermalCache;
pub use error::{ThermalError, ThermalResult};
pub use grid::GridConfig;
pub use model::{GridThermalModel, LumpedGridModel};
pub use power::PowerMap;
pub use solve::{engage_parallel, solve_steady, SolverConfig, SteadySolution};
pub use transient::{phase_power, step_phases, PhaseInterval, TransientConfig, TransientResult};
