//! Content-keyed memoization of steady-state solves.
//!
//! The key is the [`StableHash`] of `(grid, power, solver)` — the same
//! content-addressing discipline as the engine's `FlowCache`, so a
//! solve reruns only when an input that affects the answer changed.
//! Statistics surface through the engine's [`CacheStats`] shape for
//! uniform reporting in bench JSON.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use m3d_core::engine::CacheStats;
use m3d_tech::{StableHash, StableHasher};

use crate::error::ThermalResult;
use crate::grid::GridConfig;
use crate::power::PowerMap;
use crate::solve::{solve_steady, SolverConfig, SteadySolution};

/// In-memory memo of steady solves, shareable across threads.
#[derive(Debug, Default)]
pub struct ThermalCache {
    entries: Mutex<HashMap<u64, Arc<SteadySolution>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl ThermalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The content key a `(grid, power, solver)` triple memoizes under.
    pub fn key(grid: &GridConfig, power: &PowerMap, solver: &SolverConfig) -> u64 {
        let mut h = StableHasher::new();
        grid.stable_hash(&mut h);
        power.stable_hash(&mut h);
        solver.stable_hash(&mut h);
        h.finish()
    }

    /// Solves `(grid, power, solver)`, reusing a previous identical
    /// solve when one is cached.
    ///
    /// # Errors
    ///
    /// Propagates [`solve_steady`] validation failures (never cached).
    pub fn solve(
        &self,
        grid: &GridConfig,
        power: &PowerMap,
        solver: &SolverConfig,
    ) -> ThermalResult<Arc<SteadySolution>> {
        let key = Self::key(grid, power, solver);
        if let Some(hit) = self.entries.lock().expect("cache poisoned").get(&key) {
            *self.hits.lock().expect("stats poisoned") += 1;
            m3d_core::obs::Recorder::global().incr("thermal_cache.hits", 1);
            return Ok(Arc::clone(hit));
        }
        *self.misses.lock().expect("stats poisoned") += 1;
        m3d_core::obs::Recorder::global().incr("thermal_cache.misses", 1);
        let solution = Arc::new(solve_steady(grid, power, solver)?);
        self.entries
            .lock()
            .expect("cache poisoned")
            .insert(key, Arc::clone(&solution));
        Ok(solution)
    }

    /// Cached solve count.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters in the engine's stats shape (this cache has no
    /// disk tier, so `disk_hits` is always 0).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: *self.hits.lock().expect("stats poisoned"),
            misses: *self.misses.lock().expect("stats poisoned"),
            disk_hits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::LayerStack;

    fn grid() -> GridConfig {
        GridConfig::from_stack(&LayerStack::m3d_130nm(), 100.0, 4, 4, 2, 1.0, 60.0).unwrap()
    }

    #[test]
    fn second_identical_solve_hits() {
        let cache = ThermalCache::new();
        let g = grid();
        let p = PowerMap::uniform(&g, 5.0);
        let cfg = SolverConfig::default();
        let a = cache.solve(&g, &p, &cfg).unwrap();
        let b = cache.solve(&g, &p, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second solve reuses the entry");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                disk_hits: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_power_is_a_different_entry() {
        let cache = ThermalCache::new();
        let g = grid();
        let cfg = SolverConfig::default();
        cache.solve(&g, &PowerMap::uniform(&g, 5.0), &cfg).unwrap();
        cache.solve(&g, &PowerMap::uniform(&g, 6.0), &cfg).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ThermalCache::new();
        let g = grid();
        let p = PowerMap::uniform(&g, 5.0);
        let bad = SolverConfig {
            omega: 3.0,
            ..SolverConfig::default()
        };
        assert!(cache.solve(&g, &p, &bad).is_err());
        assert!(cache.is_empty());
    }
}
