//! Coarse transient stepping: explicit-Euler integration of the voxel
//! RC network through a schedule of workload phases.
//!
//! Each [`m3d_arch::trace::Phase`] scales the steady power map — active
//! device layers by [`Phase::compute_weight`], BEOL memory layers by
//! [`Phase::memory_weight`] — so a `WeightLoad → Stream → FillDrain`
//! trace produces the heat-up/cool-down excursions the steady solve
//! averages away. The step size is the explicit-stability limit
//! `min(C / ΣG)` scaled by a safety factor, and the integration is a
//! plain serial loop (deterministic by construction; the heavy parallel
//! path is the steady SOR solve).

use m3d_arch::trace::Phase;
use m3d_tech::thermal_profile::HeatSource;

use crate::error::{ThermalError, ThermalResult};
use crate::grid::GridConfig;
use crate::power::PowerMap;

/// One entry of a phase schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseInterval {
    /// What the chip is doing.
    pub phase: Phase,
    /// For how long, in seconds.
    pub duration_s: f64,
}

/// Stepper controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Fraction of the explicit-stability step limit actually used
    /// (in `(0, 1]`).
    pub dt_safety: f64,
    /// Cap on integration steps per phase; longer phases error out
    /// rather than silently burn time.
    pub max_steps_per_phase: usize,
}

impl Default for TransientConfig {
    fn default() -> Self {
        Self {
            dt_safety: 0.5,
            max_steps_per_phase: 200_000,
        }
    }
}

/// The sampled transient response.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Elapsed time at the end of each phase, in s.
    pub times_s: Vec<f64>,
    /// Peak voxel rise at the end of each phase, in K.
    pub peak_rise_k: Vec<f64>,
    /// Hottest peak observed at any sampled instant, in K.
    pub max_peak_k: f64,
    /// Total integration steps taken.
    pub steps: usize,
}

/// `base` rescaled for `phase`: active layers by the compute weight,
/// memory layers by the memory weight, passive layers untouched (they
/// carry no power).
pub fn phase_power(grid: &GridConfig, base: &PowerMap, phase: Phase) -> PowerMap {
    let mut map = base.clone();
    for (l, spec) in grid.layers.iter().enumerate() {
        let w = match spec.source {
            HeatSource::Active { .. } => phase.compute_weight(),
            HeatSource::Memory { .. } => phase.memory_weight(),
            HeatSource::Passive => continue,
        };
        for p in &mut map.layer_w[l] {
            *p *= w;
        }
    }
    map
}

/// Integrates the grid through `phases`, starting from ambient.
///
/// # Errors
///
/// Returns [`ThermalError::ShapeMismatch`] when `base` does not fit the
/// grid, and [`ThermalError::InvalidParameter`] for bad controls, a
/// non-positive phase duration, or a phase needing more steps than the
/// configured cap.
pub fn step_phases(
    grid: &GridConfig,
    base: &PowerMap,
    phases: &[PhaseInterval],
    cfg: &TransientConfig,
) -> ThermalResult<TransientResult> {
    base.check(grid)?;
    if !cfg.dt_safety.is_finite() || cfg.dt_safety <= 0.0 || cfg.dt_safety > 1.0 {
        return Err(ThermalError::InvalidParameter {
            parameter: "dt_safety",
            value: cfg.dt_safety,
            expected: "in (0, 1]",
        });
    }
    if cfg.max_steps_per_phase == 0 {
        return Err(ThermalError::InvalidParameter {
            parameter: "max_steps_per_phase",
            value: 0.0,
            expected: "at least one step",
        });
    }
    let asm = grid.assemble();
    let plane = asm.nx * asm.ny;
    // Per-cell total conductance for the stability bound.
    let mut sum_g = vec![0.0f64; grid.cells()];
    for l in 0..asm.nz {
        for j in 0..asm.ny {
            for i in 0..asm.nx {
                let idx = (l * asm.ny + j) * asm.nx + i;
                let mut g = 0.0;
                if i > 0 {
                    g += asm.g_x[l];
                }
                if i + 1 < asm.nx {
                    g += asm.g_x[l];
                }
                if j > 0 {
                    g += asm.g_y[l];
                }
                if j + 1 < asm.ny {
                    g += asm.g_y[l];
                }
                if l > 0 {
                    g += asm.g_v[l - 1];
                }
                if l + 1 < asm.nz {
                    g += asm.g_v[l];
                }
                if l == 0 {
                    g += asm.g_sink;
                }
                sum_g[idx] = g;
            }
        }
    }
    let dt_limit = (0..grid.cells())
        .map(|idx| asm.cap_j_per_k[idx / plane] / sum_g[idx].max(f64::MIN_POSITIVE))
        .fold(f64::INFINITY, f64::min);
    let dt_stable = cfg.dt_safety * dt_limit;

    let mut t = vec![0.0f64; grid.cells()];
    let mut t_next = vec![0.0f64; grid.cells()];
    let mut out = TransientResult {
        times_s: Vec::with_capacity(phases.len()),
        peak_rise_k: Vec::with_capacity(phases.len()),
        max_peak_k: 0.0,
        steps: 0,
    };
    let mut elapsed = 0.0f64;
    for pi in phases {
        if !pi.duration_s.is_finite() || pi.duration_s <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                parameter: "duration_s",
                value: pi.duration_s,
                expected: "finite and > 0",
            });
        }
        let steps = (pi.duration_s / dt_stable).ceil().max(1.0) as usize;
        if steps > cfg.max_steps_per_phase {
            return Err(ThermalError::InvalidParameter {
                parameter: "phase duration",
                value: pi.duration_s,
                expected: "short enough for the per-phase step cap",
            });
        }
        let dt = pi.duration_s / steps as f64;
        let q = phase_power(grid, base, pi.phase);
        let q_flat: Vec<f64> = q.layer_w.iter().flatten().copied().collect();
        for _ in 0..steps {
            for l in 0..asm.nz {
                for j in 0..asm.ny {
                    for i in 0..asm.nx {
                        let idx = (l * asm.ny + j) * asm.nx + i;
                        let mut flow = q_flat[idx] - sum_g[idx] * t[idx];
                        if i > 0 {
                            flow += asm.g_x[l] * t[idx - 1];
                        }
                        if i + 1 < asm.nx {
                            flow += asm.g_x[l] * t[idx + 1];
                        }
                        if j > 0 {
                            flow += asm.g_y[l] * t[idx - asm.nx];
                        }
                        if j + 1 < asm.ny {
                            flow += asm.g_y[l] * t[idx + asm.nx];
                        }
                        if l > 0 {
                            flow += asm.g_v[l - 1] * t[idx - plane];
                        }
                        if l + 1 < asm.nz {
                            flow += asm.g_v[l] * t[idx + plane];
                        }
                        t_next[idx] = t[idx] + dt * flow / asm.cap_j_per_k[l];
                    }
                }
            }
            std::mem::swap(&mut t, &mut t_next);
            out.steps += 1;
        }
        elapsed += pi.duration_s;
        let peak = t.iter().fold(0.0f64, |m, &v| m.max(v));
        out.times_s.push(elapsed);
        out.peak_rise_k.push(peak);
        out.max_peak_k = out.max_peak_k.max(peak);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{solve_steady, SolverConfig};
    use m3d_tech::LayerStack;

    fn grid() -> GridConfig {
        GridConfig::from_stack(&LayerStack::m3d_130nm(), 100.0, 4, 4, 2, 1.0, 60.0).unwrap()
    }

    #[test]
    fn heats_up_monotonically_under_sustained_streaming() {
        let g = grid();
        let base = PowerMap::uniform(&g, 5.0);
        let phases: Vec<PhaseInterval> = (0..4)
            .map(|_| PhaseInterval {
                phase: Phase::Stream,
                duration_s: 2.0e-4,
            })
            .collect();
        let r = step_phases(&g, &base, &phases, &TransientConfig::default()).unwrap();
        assert_eq!(r.peak_rise_k.len(), 4);
        for w in r.peak_rise_k.windows(2) {
            assert!(w[1] >= w[0], "monotone heat-up: {:?}", r.peak_rise_k);
        }
        assert!(r.peak_rise_k[0] > 0.0);
    }

    #[test]
    fn idle_phase_cools_the_die() {
        let g = grid();
        let base = PowerMap::uniform(&g, 8.0);
        let phases = [
            PhaseInterval {
                phase: Phase::Stream,
                duration_s: 5.0e-4,
            },
            PhaseInterval {
                phase: Phase::Idle,
                duration_s: 5.0e-4,
            },
        ];
        let r = step_phases(&g, &base, &phases, &TransientConfig::default()).unwrap();
        assert!(
            r.peak_rise_k[1] < r.peak_rise_k[0],
            "idle cools: {:?}",
            r.peak_rise_k
        );
        assert_eq!(r.max_peak_k, r.peak_rise_k[0]);
    }

    #[test]
    fn long_streaming_approaches_the_steady_solve() {
        // A fast sink keeps the slowest time constant (R_sink · C_die)
        // in the milliseconds so 20 ms of streaming fully settles.
        let g =
            GridConfig::from_stack(&LayerStack::m3d_130nm(), 100.0, 4, 4, 2, 0.05, 60.0).unwrap();
        let base = PowerMap::uniform(&g, 5.0);
        let phases = [PhaseInterval {
            phase: Phase::Stream,
            duration_s: 2.0e-2,
        }];
        let r = step_phases(&g, &base, &phases, &TransientConfig::default()).unwrap();
        let steady = solve_steady(
            &g,
            &phase_power(&g, &base, Phase::Stream),
            &SolverConfig::default(),
        )
        .unwrap();
        let err = (r.max_peak_k - steady.peak_rise_k).abs() / steady.peak_rise_k;
        assert!(
            err < 0.02,
            "transient settles to steady: {} vs {}",
            r.max_peak_k,
            steady.peak_rise_k
        );
    }

    #[test]
    fn phase_scaling_orders_power() {
        let g = grid();
        let base = PowerMap::uniform(&g, 5.0);
        let stream = phase_power(&g, &base, Phase::Stream).total_w();
        let idle = phase_power(&g, &base, Phase::Idle).total_w();
        assert!(stream > idle);
        assert!(idle > 0.0);
    }

    #[test]
    fn bad_controls_are_rejected() {
        let g = grid();
        let base = PowerMap::uniform(&g, 5.0);
        let phases = [PhaseInterval {
            phase: Phase::Stream,
            duration_s: 1.0e-4,
        }];
        let bad = TransientConfig {
            dt_safety: 0.0,
            ..TransientConfig::default()
        };
        assert!(step_phases(&g, &base, &phases, &bad).is_err());
        let tiny_cap = TransientConfig {
            max_steps_per_phase: 1,
            ..TransientConfig::default()
        };
        assert!(step_phases(&g, &base, &phases, &tiny_cap).is_err());
        let neg = [PhaseInterval {
            phase: Phase::Stream,
            duration_s: -1.0,
        }];
        assert!(step_phases(&g, &base, &neg, &TransientConfig::default()).is_err());
    }
}
