//! [`TierThermalModel`] implementations backed by the voxel grid.
//!
//! [`GridThermalModel`] is the physical model: each queried tier count
//! voxelizes the stack afresh, deposits a uniform per-pair power budget
//! and solves steady state — so exploration and sensitivity prune
//! design points against grid-predicted peaks instead of the eq. 17
//! lump. [`LumpedGridModel`] runs the same solver on the
//! [`GridConfig::lumped`] chain, which must agree with the analytic
//! model within discretization noise — the crate's limiting-case
//! validation, exercised by `tests/analytic_agreement.rs`.

use std::collections::HashMap;
use std::sync::Mutex;

use m3d_core::{ThermalModel, TierThermalModel};
use m3d_tech::{LayerStack, StableHash, StableHasher};

use crate::error::ThermalResult;
use crate::grid::GridConfig;
use crate::power::PowerMap;
use crate::solve::{solve_steady, SolverConfig};

/// Grid-fidelity thermal model: voxelize, deposit, solve per tier count.
#[derive(Debug)]
pub struct GridThermalModel {
    /// The process stack voxelized per query.
    pub stack: LayerStack,
    /// Die footprint, in mm².
    pub die_mm2: f64,
    /// Lateral resolution along x.
    pub nx: usize,
    /// Lateral resolution along y.
    pub ny: usize,
    /// Uniform power per tier pair, in W.
    pub power_per_tier_w: f64,
    /// Package + heat-sink resistance, in K/W.
    pub sink_k_per_w: f64,
    /// Thermal budget (max rise over ambient), in K.
    pub max_rise_k: f64,
    /// Iteration controls for the steady solve.
    pub solver: SolverConfig,
    memo: Mutex<HashMap<u32, f64>>,
}

impl GridThermalModel {
    /// Conventional-package grid model over the Table I case-study die
    /// (same R₀ = 1 K/W sink and 60 K budget as
    /// [`ThermalModel::conventional`]) at an 8×8 lateral resolution.
    pub fn conventional(stack: LayerStack, die_mm2: f64, power_per_tier_w: f64) -> Self {
        Self {
            stack,
            die_mm2,
            nx: 8,
            ny: 8,
            power_per_tier_w,
            sink_k_per_w: 1.0,
            max_rise_k: 60.0,
            solver: SolverConfig::default(),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The voxelization this model solves for `tiers` pairs.
    ///
    /// # Errors
    ///
    /// Propagates [`GridConfig::from_stack`] validation failures.
    pub fn grid(&self, tiers: u32) -> ThermalResult<GridConfig> {
        GridConfig::from_stack(
            &self.stack,
            self.die_mm2,
            self.nx,
            self.ny,
            tiers,
            self.sink_k_per_w,
            self.max_rise_k,
        )
    }

    fn solve_rise(&self, tiers: u32) -> f64 {
        let grid = match self.grid(tiers) {
            Ok(g) => g,
            Err(_) => return f64::INFINITY,
        };
        let power = PowerMap::uniform(&grid, self.power_per_tier_w);
        match solve_steady(&grid, &power, &self.solver) {
            Ok(s) if s.converged => s.peak_rise_k,
            // A diverged or failed solve must never pass a thermal
            // check.
            _ => f64::INFINITY,
        }
    }
}

impl StableHash for GridThermalModel {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.stack.stable_hash(h);
        self.die_mm2.stable_hash(h);
        self.nx.stable_hash(h);
        self.ny.stable_hash(h);
        self.power_per_tier_w.stable_hash(h);
        self.sink_k_per_w.stable_hash(h);
        self.max_rise_k.stable_hash(h);
        self.solver.stable_hash(h);
    }
}

impl TierThermalModel for GridThermalModel {
    fn temperature_rise(&self, tiers: u32) -> f64 {
        if let Some(&r) = self.memo.lock().expect("memo poisoned").get(&tiers) {
            return r;
        }
        let r = self.solve_rise(tiers);
        self.memo.lock().expect("memo poisoned").insert(tiers, r);
        r
    }

    fn max_rise_k(&self) -> f64 {
        self.max_rise_k
    }
}

/// The analytic chain solved on the grid: a 1×1-cell stack whose
/// vertical resistances reproduce eq. 17 exactly.
#[derive(Debug, Clone)]
pub struct LumpedGridModel {
    /// The analytic model being mirrored.
    pub analytic: ThermalModel,
    /// Iteration controls for the steady solve.
    pub solver: SolverConfig,
}

impl LumpedGridModel {
    /// Mirrors `analytic` with default solver controls.
    pub fn new(analytic: ThermalModel) -> Self {
        Self {
            analytic,
            solver: SolverConfig::default(),
        }
    }
}

impl TierThermalModel for LumpedGridModel {
    fn temperature_rise(&self, tiers: u32) -> f64 {
        let grid = GridConfig::lumped(&self.analytic, tiers);
        let power = PowerMap::uniform(&grid, self.analytic.power_per_tier_w);
        match solve_steady(&grid, &power, &self.solver) {
            Ok(s) if s.converged => s.peak_rise_k,
            _ => f64::INFINITY,
        }
    }

    fn max_rise_k(&self) -> f64 {
        self.analytic.max_rise_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_model_rise_is_monotone_in_tiers() {
        let m = GridThermalModel::conventional(LayerStack::m3d_130nm(), 100.0, 5.0);
        let r1 = m.temperature_rise(1);
        let r2 = m.temperature_rise(2);
        let r4 = m.temperature_rise(4);
        assert!(r1 > 0.0);
        assert!(r2 > r1);
        assert!(r4 > r2);
    }

    #[test]
    fn memoization_returns_identical_values() {
        let m = GridThermalModel::conventional(LayerStack::m3d_130nm(), 100.0, 5.0);
        let a = m.temperature_rise(3);
        let b = m.temperature_rise(3);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn grid_model_caps_tiers_through_the_trait() {
        // Enough power that the budget binds within the search range.
        let mut m = GridThermalModel::conventional(LayerStack::m3d_130nm(), 100.0, 25.0);
        m.max_rise_k = 30.0;
        let y = m.max_tiers().unwrap();
        assert!(y >= 1);
        assert!(m.temperature_rise(y) <= 30.0);
        assert!(m.temperature_rise(y + 1) > 30.0);
    }

    #[test]
    fn lumped_grid_model_tracks_the_analytic_cap() {
        let analytic = ThermalModel::conventional(5.0);
        let lumped = LumpedGridModel::new(analytic);
        assert_eq!(
            lumped.max_tiers().unwrap(),
            analytic.max_tiers().unwrap(),
            "same tier cap through either fidelity"
        );
    }

    #[test]
    fn stable_key_tracks_model_content() {
        let a = GridThermalModel::conventional(LayerStack::m3d_130nm(), 100.0, 5.0);
        let b = GridThermalModel::conventional(LayerStack::m3d_130nm(), 100.0, 5.0);
        let c = GridThermalModel::conventional(LayerStack::m3d_130nm(), 100.0, 7.0);
        assert_eq!(a.stable_key(), b.stable_key());
        assert_ne!(a.stable_key(), c.stable_key());
    }
}
