//! Error type of the thermal subsystem.

/// Errors raised while voxelizing or solving a thermal grid.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// A configuration parameter is out of range.
    InvalidParameter {
        /// Which parameter.
        parameter: &'static str,
        /// The offending value.
        value: f64,
        /// What would have been accepted.
        expected: &'static str,
    },
    /// A power map does not match the grid it is applied to.
    ShapeMismatch {
        /// What disagreed (e.g. `"power map lateral cells"`).
        what: &'static str,
        /// The grid's size.
        expected: usize,
        /// The map's size.
        actual: usize,
    },
}

impl std::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermalError::InvalidParameter {
                parameter,
                value,
                expected,
            } => write!(f, "invalid {parameter} = {value}: expected {expected}"),
            ThermalError::ShapeMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: grid has {expected}, got {actual}"),
        }
    }
}

impl std::error::Error for ThermalError {}

/// Convenience result alias.
pub type ThermalResult<T> = Result<T, ThermalError>;
