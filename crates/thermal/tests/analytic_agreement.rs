//! Limiting-case validation: on a single-lateral-cell grid whose chain
//! of vertical resistances mirrors eq. 17, the SOR solve must agree
//! with the analytic [`ThermalModel`] within 2 % (the acceptance
//! criterion for the grid solver).

use m3d_core::{ThermalModel, TierThermalModel};
use m3d_thermal::{solve_steady, GridConfig, LumpedGridModel, PowerMap, SolverConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lumped_grid_matches_eq17_within_two_percent(
        power in 1.0..20.0_f64,
        sink in 0.5..2.0_f64,
        per_tier in 0.1..0.8_f64,
        tiers in 1u32..=8,
    ) {
        let model = ThermalModel {
            sink_k_per_w: sink,
            per_tier_k_per_w: per_tier,
            power_per_tier_w: power,
            max_rise_k: 60.0,
        };
        let grid = GridConfig::lumped(&model, tiers);
        let map = PowerMap::uniform(&grid, power);
        let sol = solve_steady(&grid, &map, &SolverConfig::default()).unwrap();
        prop_assert!(sol.converged);
        let analytic = model.temperature_rise(tiers);
        let rel = (sol.peak_rise_k - analytic).abs() / analytic;
        prop_assert!(
            rel < 0.02,
            "tiers={} grid={} analytic={} rel={}",
            tiers, sol.peak_rise_k, analytic, rel
        );
    }
}

#[test]
fn conventional_case_matches_across_the_obs10_power_sweep() {
    // The Obs 10 power points the bench sweeps.
    for power in [2.0, 5.0, 10.0, 20.0] {
        let model = ThermalModel::conventional(power);
        for tiers in 1..=6 {
            let grid = GridConfig::lumped(&model, tiers);
            let map = PowerMap::uniform(&grid, power);
            let sol = solve_steady(&grid, &map, &SolverConfig::default()).unwrap();
            assert!(sol.converged);
            let analytic = model.temperature_rise(tiers);
            assert!(
                (sol.peak_rise_k - analytic).abs() / analytic < 0.02,
                "P={power} Y={tiers}: {} vs {analytic}",
                sol.peak_rise_k
            );
        }
    }
}

#[test]
fn lumped_model_reproduces_the_analytic_tier_cap() {
    for power in [2.0, 5.0, 10.0] {
        let analytic = ThermalModel::conventional(power);
        let lumped = LumpedGridModel::new(analytic);
        assert_eq!(
            lumped.max_tiers().unwrap(),
            analytic.max_tiers().unwrap(),
            "P={power}"
        );
    }
}
