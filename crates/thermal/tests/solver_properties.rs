//! Property tests of the steady-state solver: physics invariants that
//! must hold across randomized grids, powers and stack depths.

use m3d_tech::LayerStack;
use m3d_thermal::{solve_steady, GridConfig, PowerMap, SolverConfig};
use proptest::prelude::*;

fn grid(die_mm2: f64, n: usize, pairs: u32, sink: f64) -> GridConfig {
    GridConfig::from_stack(&LayerStack::m3d_130nm(), die_mm2, n, n, pairs, sink, 60.0)
        .expect("valid grid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn more_power_means_a_hotter_peak(
        p in 0.5..10.0_f64,
        extra in 0.5..10.0_f64,
        pairs in 1u32..=4,
        sink in 0.5..2.0_f64,
    ) {
        let g = grid(100.0, 4, pairs, sink);
        let cfg = SolverConfig::default();
        let cool = solve_steady(&g, &PowerMap::uniform(&g, p), &cfg).unwrap();
        let hot = solve_steady(&g, &PowerMap::uniform(&g, p + extra), &cfg).unwrap();
        prop_assert!(cool.converged && hot.converged);
        prop_assert!(
            hot.peak_rise_k > cool.peak_rise_k,
            "P={} K={} vs P={} K={}",
            p, cool.peak_rise_k, p + extra, hot.peak_rise_k
        );
    }

    #[test]
    fn zero_power_returns_ambient(
        pairs in 1u32..=5,
        n in 1usize..=6,
        sink in 0.2..3.0_f64,
    ) {
        let g = grid(100.0, n, pairs, sink);
        let s = solve_steady(&g, &PowerMap::zero(&g), &SolverConfig::default()).unwrap();
        prop_assert!(s.converged);
        prop_assert_eq!(s.peak_rise_k, 0.0);
        prop_assert!(s.t_k.iter().all(|&t| t == 0.0), "no spurious heat");
    }

    #[test]
    fn lateral_refinement_converges(
        p in 1.0..10.0_f64,
        pairs in 1u32..=3,
    ) {
        // Uniform heating of an adiabatic-sided die: the answer must be
        // grid-independent, so successive lateral refinements agree.
        let tight = SolverConfig { tol_k: 1.0e-9, ..SolverConfig::default() };
        let peaks: Vec<f64> = [2usize, 4, 8]
            .iter()
            .map(|&n| {
                let g = grid(100.0, n, pairs, 1.0);
                let s = solve_steady(&g, &PowerMap::uniform(&g, p), &tight).unwrap();
                assert!(s.converged);
                s.peak_rise_k
            })
            .collect();
        let coarse_gap = (peaks[1] - peaks[0]).abs() / peaks[0];
        let fine_gap = (peaks[2] - peaks[1]).abs() / peaks[1];
        prop_assert!(fine_gap < 1.0e-3, "refinement settles: {peaks:?}");
        prop_assert!(fine_gap <= coarse_gap + 1.0e-6, "gaps shrink: {peaks:?}");
    }

    #[test]
    fn rise_is_linear_in_power(
        p in 0.5..8.0_f64,
        factor in 1.5..4.0_f64,
        pairs in 1u32..=3,
    ) {
        // The RC network is linear: scaling every source scales the
        // whole field.
        let g = grid(100.0, 4, pairs, 1.0);
        let tight = SolverConfig { tol_k: 1.0e-9, ..SolverConfig::default() };
        let base = solve_steady(&g, &PowerMap::uniform(&g, p), &tight).unwrap();
        let scaled = solve_steady(&g, &PowerMap::uniform(&g, p).scaled(factor), &tight).unwrap();
        let ratio = scaled.peak_rise_k / base.peak_rise_k;
        prop_assert!(
            (ratio - factor).abs() / factor < 1.0e-3,
            "ratio {} vs factor {}", ratio, factor
        );
    }

    #[test]
    fn deeper_stacks_run_hotter(
        p in 1.0..8.0_f64,
    ) {
        // Same per-pair power, more pairs: total heat grows and upper
        // tiers sit behind more BEOL, so the peak is strictly monotone
        // in stack depth.
        let cfg = SolverConfig::default();
        let mut last = 0.0;
        for pairs in 1u32..=4 {
            let g = grid(100.0, 4, pairs, 1.0);
            let s = solve_steady(&g, &PowerMap::uniform(&g, p), &cfg).unwrap();
            prop_assert!(s.converged);
            prop_assert!(s.peak_rise_k > last, "pairs={pairs}: {} > {last}", s.peak_rise_k);
            last = s.peak_rise_k;
        }
    }
}
