#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, and the formatting check
# (a superset of the driver's gate, see ROADMAP.md, "Tier-1 verify").
# --workspace matters: a plain `cargo build` at the root only builds the
# facade package and would let bench-binary breakage through.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test -q --workspace
cargo fmt --check

# The thermal subsystem gets an explicit build+test pass of its own so a
# workspace-level feature or dependency slip cannot hide a broken crate.
cargo build --release -p m3d-thermal
cargo test -q -p m3d-thermal

# Determinism gate: the Obs. 10 JSON artifact must be byte-identical
# across runs and across worker counts (the report deliberately excludes
# wall-clock and job-count fields).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
M3D_JOBS=1 ./target/release/obs10_thermal --quick --json "$tmp/a.json" >/dev/null 2>&1
M3D_JOBS=7 ./target/release/obs10_thermal --quick --json "$tmp/b.json" >/dev/null 2>&1
if ! cmp -s "$tmp/a.json" "$tmp/b.json"; then
    echo "tier1: FAIL — obs10_thermal --json differs across M3D_JOBS" >&2
    diff "$tmp/a.json" "$tmp/b.json" >&2 || true
    exit 1
fi

echo "tier1: OK"
