#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, and the formatting check
# (a superset of the driver's gate, see ROADMAP.md, "Tier-1 verify").
# --workspace matters: a plain `cargo build` at the root only builds the
# facade package and would let bench-binary breakage through.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test -q --workspace
cargo fmt --check
echo "tier1: OK"
