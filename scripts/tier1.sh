#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, and the formatting check
# (a superset of the driver's gate, see ROADMAP.md, "Tier-1 verify").
# --workspace matters: a plain `cargo build` at the root only builds the
# facade package and would let bench-binary breakage through.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test -q --workspace
cargo fmt --check

# The thermal subsystem gets an explicit build+test pass of its own so a
# workspace-level feature or dependency slip cannot hide a broken crate.
cargo build --release -p m3d-thermal
cargo test -q -p m3d-thermal

# Static engine-port gate: every experiment binary must drive the typed
# case engine (RunArgs), and the retired pre-engine table helpers must
# stay deleted.
unported="$(grep -rL RunArgs crates/bench/src/bin/*.rs || true)"
if [ -n "$unported" ]; then
    echo "tier1: FAIL — binaries bypass the RunArgs case engine:" >&2
    echo "$unported" >&2
    exit 1
fi
if grep -rEn '\b(header|rule|pct)\(' crates/bench/src/ >&2; then
    echo "tier1: FAIL — pre-engine table helpers resurfaced in m3d-bench" >&2
    exit 1
fi

# Flow-cache shim gate: the deprecated FlowCache wrappers (`run`,
# `run_traced`, `run_report_traced`, `run_report_coalesced`) are
# deleted; no call site may use their shapes and cache.rs must not
# regrow them. (`Rtl2GdsFlow::run_traced` in m3d-pd is a different,
# zero-argument API and stays.)
if grep -rEn '\.run_report_traced\(|\.run_report_coalesced\(|flows\.run\(|flows\.run_traced\(' crates/ >&2; then
    echo "tier1: FAIL — retired FlowCache run* shims are back in use" >&2
    exit 1
fi
if grep -En 'fn run(_traced|_report_traced|_report_coalesced)?\(' crates/core/src/engine/cache.rs >&2; then
    echo "tier1: FAIL — m3d-core FlowCache regrew a deprecated run* shim" >&2
    exit 1
fi

# Determinism gate: the Obs. 10 JSON artifact must be byte-identical
# across runs and across worker counts (the report deliberately excludes
# wall-clock and job-count fields). The disk cache is detached so both
# runs compute from scratch with identical cache tallies.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
env -u M3D_CACHE_DIR M3D_JOBS=1 ./target/release/obs10_thermal --quick --json "$tmp/a.json" >/dev/null 2>&1
env -u M3D_CACHE_DIR M3D_JOBS=7 ./target/release/obs10_thermal --quick --json "$tmp/b.json" >/dev/null 2>&1
if ! cmp -s "$tmp/a.json" "$tmp/b.json"; then
    echo "tier1: FAIL — obs10_thermal --json differs across M3D_JOBS" >&2
    diff "$tmp/a.json" "$tmp/b.json" >&2 || true
    exit 1
fi

# Trace gate: --trace-json must emit a non-empty span tree that covers
# the pipeline stages with cache provenance, byte-identical across
# worker counts (the trace deliberately excludes wall-clock numbers).
M3D_JOBS=1 ./target/release/table1_resnet18 --quick --trace-json "$tmp/trace-a.json" >/dev/null 2>&1
M3D_JOBS=8 ./target/release/table1_resnet18 --quick --trace-json "$tmp/trace-b.json" >/dev/null 2>&1
for stage in '"arch-sim"' '"report"' '"provenance"'; do
    if ! grep -q "$stage" "$tmp/trace-a.json"; then
        echo "tier1: FAIL — table1_resnet18 trace is missing $stage" >&2
        exit 1
    fi
done
if ! cmp -s "$tmp/trace-a.json" "$tmp/trace-b.json"; then
    echo "tier1: FAIL — table1_resnet18 --trace-json differs across M3D_JOBS" >&2
    diff "$tmp/trace-a.json" "$tmp/trace-b.json" >&2 || true
    exit 1
fi

# Metrics gate: --metrics-text must emit a well-formed Prometheus text
# exposition carrying the engine's guaranteed counters. The grammar
# check admits exactly `# ...` comments and `name[{le="…"}] value`
# samples — anything else fails the run.
./target/release/table1_resnet18 --quick --metrics-text "$tmp/metrics.prom" >/dev/null 2>&1
for counter in '^engine_runs 1$' '^engine_stages ' '# TYPE engine_runs counter'; do
    if ! grep -q "$counter" "$tmp/metrics.prom"; then
        echo "tier1: FAIL — table1_resnet18 --metrics-text is missing $counter" >&2
        cat "$tmp/metrics.prom" >&2
        exit 1
    fi
done
if grep -Evq '^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]*"\})? [0-9]+)$' "$tmp/metrics.prom"; then
    echo "tier1: FAIL — table1_resnet18 --metrics-text has malformed lines:" >&2
    grep -Ev '^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]*"\})? [0-9]+)$' "$tmp/metrics.prom" >&2
    exit 1
fi

# Pd-flow sub-span gate: the fig2 trace must expose the flow internals
# (placement/opt/CTS/STA child spans with integer counters),
# byte-identical across worker counts.
env -u M3D_CACHE_DIR M3D_JOBS=1 ./target/release/fig2_physical_design --quick --trace-json "$tmp/fig2-a.json" >/dev/null 2>&1
env -u M3D_CACHE_DIR M3D_JOBS=4 ./target/release/fig2_physical_design --quick --trace-json "$tmp/fig2-b.json" >/dev/null 2>&1
for span in '"place"' '"cts"' '"sta"' '"counters"' '"signal_ilvs"'; do
    if ! grep -q "$span" "$tmp/fig2-a.json"; then
        echo "tier1: FAIL — fig2 trace is missing the $span sub-span data" >&2
        exit 1
    fi
done
if ! cmp -s "$tmp/fig2-a.json" "$tmp/fig2-b.json"; then
    echo "tier1: FAIL — fig2_physical_design --trace-json differs across M3D_JOBS" >&2
    diff "$tmp/fig2-a.json" "$tmp/fig2-b.json" >&2 || true
    exit 1
fi

# Corner-sweep gate: the multi-corner sign-off must carry one child span
# per corner with provenance, byte-identical across worker counts.
env -u M3D_CACHE_DIR M3D_JOBS=1 ./target/release/corners_signoff --quick --trace-json "$tmp/corners-a.json" >/dev/null 2>&1
env -u M3D_CACHE_DIR M3D_JOBS=2 ./target/release/corners_signoff --quick --trace-json "$tmp/corners-b.json" >/dev/null 2>&1
for span in '"corner:ss"' '"corner:tt"' '"corner:ff"' '"provenance"'; do
    if ! grep -q "$span" "$tmp/corners-a.json"; then
        echo "tier1: FAIL — corners_signoff trace is missing $span" >&2
        exit 1
    fi
done
if ! cmp -s "$tmp/corners-a.json" "$tmp/corners-b.json"; then
    echo "tier1: FAIL — corners_signoff --trace-json differs across M3D_JOBS" >&2
    diff "$tmp/corners-a.json" "$tmp/corners-b.json" >&2 || true
    exit 1
fi

# Warm-start determinism gate: the activity-sensitivity sweep warm-starts
# later grid points from the first point's placement seed (all points
# share a placement key). The --json and --trace-json artifacts must be
# byte-identical across worker counts — with jobs=1 the later points warm
# from the in-memory seed index, with jobs=7 they race and mostly anneal
# cold, so identity here proves warm == cold byte for byte.
env -u M3D_CACHE_DIR M3D_JOBS=1 ./target/release/flow_sensitivity --quick \
    --json "$tmp/sens-a.json" --trace-json "$tmp/sens-trace-a.json" >/dev/null 2>&1
env -u M3D_CACHE_DIR M3D_JOBS=7 ./target/release/flow_sensitivity --quick \
    --json "$tmp/sens-b.json" --trace-json "$tmp/sens-trace-b.json" >/dev/null 2>&1
if ! cmp -s "$tmp/sens-a.json" "$tmp/sens-b.json"; then
    echo "tier1: FAIL — flow_sensitivity --json differs across M3D_JOBS" >&2
    diff "$tmp/sens-a.json" "$tmp/sens-b.json" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/sens-trace-a.json" "$tmp/sens-trace-b.json"; then
    echo "tier1: FAIL — flow_sensitivity --trace-json differs across M3D_JOBS" >&2
    diff "$tmp/sens-trace-a.json" "$tmp/sens-trace-b.json" >&2 || true
    exit 1
fi

# Disk-tier warm-start gate: prewarm a fresh artifact cache with a
# *shifted* activity grid (neighbours only — no exact-key hits possible),
# then rerun the default grid against that cache. Every point must
# warm-start from a disk neighbour's seed (pd_flow_warm_runs > 0) and the
# payload must stay byte-identical to the detached-cache run above.
warm_cache="$tmp/warm-cache"
mkdir -p "$warm_cache"
M3D_CACHE_DIR="$warm_cache" M3D_JOBS=1 ./target/release/flow_sensitivity --quick \
    --set activity_lo_pct=12 >/dev/null 2>&1
M3D_CACHE_DIR="$warm_cache" M3D_JOBS=1 ./target/release/flow_sensitivity --quick \
    --json "$tmp/sens-warm.json" --metrics-text "$tmp/sens-warm.prom" >/dev/null 2>&1
if ! cmp -s "$tmp/sens-warm.json" "$tmp/sens-a.json"; then
    echo "tier1: FAIL — warm-started flow_sensitivity --json differs from cold" >&2
    diff "$tmp/sens-warm.json" "$tmp/sens-a.json" >&2 || true
    exit 1
fi
if ! grep -Eq '^pd_flow_warm_runs [1-9]' "$tmp/sens-warm.prom"; then
    echo "tier1: FAIL — prewarmed flow_sensitivity run never warm-started:" >&2
    grep -E '^(pd_flow|flow_cache)' "$tmp/sens-warm.prom" >&2 || true
    exit 1
fi

# Ingest gate: the checked-in example EDIF must flatten and implement
# deterministically — the --json artifact is byte-identical across
# worker counts — and the trace must carry the front-end counters.
env -u M3D_CACHE_DIR M3D_JOBS=1 ./target/release/ingest --quick --set file=examples/adder4.edif \
    --json "$tmp/ingest-a.json" --trace-json "$tmp/ingest-trace.json" >/dev/null 2>&1
env -u M3D_CACHE_DIR M3D_JOBS=6 ./target/release/ingest --quick --set file=examples/adder4.edif \
    --json "$tmp/ingest-b.json" >/dev/null 2>&1
if ! cmp -s "$tmp/ingest-a.json" "$tmp/ingest-b.json"; then
    echo "tier1: FAIL — ingest --json differs across M3D_JOBS" >&2
    diff "$tmp/ingest-a.json" "$tmp/ingest-b.json" >&2 || true
    exit 1
fi
for counter in '"ingest.cells"' '"ingest.nets"' '"ingest.flatten_depth"'; do
    if ! grep -q "$counter" "$tmp/ingest-trace.json"; then
        echo "tier1: FAIL — ingest trace is missing the $counter counter" >&2
        exit 1
    fi
done
# Malformed sources are bad-requests (exit 2) with a source position.
if ./target/release/ingest --set 'source=(edif broken' >/dev/null 2>"$tmp/ingest-err.txt"; then
    echo "tier1: FAIL — ingest accepted a malformed EDIF source" >&2
    exit 1
fi
if ! grep -q 'line 1, column' "$tmp/ingest-err.txt"; then
    echo "tier1: FAIL — ingest rejection lacks a line/column position:" >&2
    cat "$tmp/ingest-err.txt" >&2
    exit 1
fi

# Service smoke gate: boot m3d-serve on an ephemeral port, drive it
# with deterministic loadgen mixes, assert the dedup counts (cold
# computes all 12, the warm repeat computes 0, a 16-client identical
# burst computes exactly 1), and require a graceful drain (exit 0).
serve_smoke() {
    workers="$1"
    cold_json="$2"
    # Detached from the disk cache: the mixed gate below counts fresh
    # computes, which a pre-warmed M3D_CACHE_DIR would turn into hits.
    env -u M3D_CACHE_DIR ./target/release/m3d-serve --addr 127.0.0.1:0 --workers "$workers" \
        --queue-depth 64 >"$tmp/serve-w$workers.out" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*"listening":"\([^"]*\)".*/\1/p' "$tmp/serve-w$workers.out")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "tier1: FAIL — m3d-serve (workers=$workers) never announced its port" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    # The cold mix doubles as the metrics gate: --check-metrics asserts
    # the server's executed / cache_hits+coalesced counter deltas agree
    # with the client-side computed/reused tallies (spans.recorded /
    # spans.dropped accounting included), and --metrics-every polls the
    # `metrics` and — with --trace — `traces` wire cases mid-run,
    # cross-checking each inline trace against its flight-recorder copy.
    ./target/release/m3d-loadgen --addr "$addr" --clients 3 --requests 4 \
        --mix cold --expect-computed 12 --check-metrics --metrics-every 2 \
        --trace --json "$cold_json" >/dev/null
    ./target/release/m3d-loadgen --addr "$addr" --clients 3 --requests 4 \
        --mix cold --expect-computed 0 --check-metrics >/dev/null
    # One `metrics_text` scrape: loadgen validates the exposition parses
    # before writing it; the grep pins the request counters to the
    # Prometheus surface.
    ./target/release/m3d-loadgen --addr "$addr" --clients 4 --requests 4 \
        --mix repeated --expect-computed 1 \
        --metrics-text "$tmp/serve-w$workers.prom" >/dev/null
    for family in '^# TYPE executed counter$' '^# TYPE spans_dropped counter$' \
                  '^spans_recorded [1-9]'; do
        if ! grep -q "$family" "$tmp/serve-w$workers.prom"; then
            echo "tier1: FAIL — serve metrics_text (workers=$workers) lacks $family" >&2
            cat "$tmp/serve-w$workers.prom" >&2
            exit 1
        fi
    done
    # Ingest wire probe: a malformed EDIF upload must be refused by
    # validate-before-enqueue (bad-request with a source position, and
    # the `rejected` counter increments), and the same valid design
    # uploaded twice must answer the second time from cache.
    exec 3<>"/dev/tcp/${addr%%:*}/${addr##*:}"
    printf '%s\n' '{"id":9001,"case":"ingest","params":{"source":"(edif broken"}}' >&3
    IFS= read -r reply <&3
    case "$reply" in
        *'"code":"bad-request"'*'line 1'*) ;;
        *) echo "tier1: FAIL — malformed ingest upload was not refused: $reply" >&2
           exit 1 ;;
    esac
    printf '%s\n' '{"id":9002,"case":"metrics","params":{}}' >&3
    IFS= read -r reply <&3
    case "$reply" in
        *'"rejected":1'[!0-9]*) ;;
        *) echo "tier1: FAIL — ingest rejection did not bump the rejected counter: $reply" >&2
           exit 1 ;;
    esac
    probe='{"id":9003,"case":"ingest","params":{"source":"(edif probe (library work (cell top (view v (interface (port a (direction INPUT)) (port y (direction OUTPUT))) (contents (instance u1 (cellRef BUF_X1)) (net na (joined (portRef a) (portRef A (instanceRef u1)))) (net ny (joined (portRef Y (instanceRef u1)) (portRef y))))))) (design probe (cellRef top)))"}}'
    printf '%s\n' "$probe" >&3
    IFS= read -r reply <&3
    case "$reply" in
        *'"status":200'*'"cached":false'*) ;;
        *) echo "tier1: FAIL — first ingest upload did not compute: $reply" >&2
           exit 1 ;;
    esac
    printf '%s\n' "${probe/9003/9004}" >&3
    IFS= read -r reply <&3
    case "$reply" in
        *'"cached":true'*) ;;
        *) echo "tier1: FAIL — duplicate ingest upload missed the cache: $reply" >&2
           exit 1 ;;
    esac
    exec 3<&- 3>&-
    # The mixed mix samples the server's `cases` listing (registry
    # order) and uploads one inline-EDIF design: three fresh cases
    # compute (pd_flow defaults, the ingest upload, tier_sweep defaults)
    # and the cold/repeated shapes replay from the response cache.
    ./target/release/m3d-loadgen --addr "$addr" --clients 2 --requests 4 \
        --mix mixed --expect-computed 3 --shutdown >/dev/null
    if ! wait "$serve_pid"; then
        echo "tier1: FAIL — m3d-serve (workers=$workers) did not drain and exit 0" >&2
        exit 1
    fi
}
serve_smoke 1 "$tmp/cold-w1.json"
serve_smoke 4 "$tmp/cold-w4.json"

# Payload identity across worker counts: the deterministic loadgen
# artifact (counts + per-key payload digests) must be byte-identical.
if ! cmp -s "$tmp/cold-w1.json" "$tmp/cold-w4.json"; then
    echo "tier1: FAIL — loadgen --json differs across m3d-serve --workers" >&2
    diff "$tmp/cold-w1.json" "$tmp/cold-w4.json" >&2 || true
    exit 1
fi

# Traced-response determinism gate: the same traced request against two
# fresh single servers (M3D_JOBS=1 vs 7) must answer byte-identically —
# whole envelope including the inline trace, whose deterministic
# rendering deliberately excludes wall-clock timing.
for jobs in 1 7; do
    env -u M3D_CACHE_DIR M3D_JOBS="$jobs" ./target/release/m3d-serve --addr 127.0.0.1:0 \
        --workers 2 --queue-depth 16 >"$tmp/trace-serve-$jobs.out" 2>&1 &
    tpid=$!
    taddr=""
    for _ in $(seq 1 100); do
        taddr="$(sed -n 's/.*"listening":"\([^"]*\)".*/\1/p' "$tmp/trace-serve-$jobs.out")"
        [ -n "$taddr" ] && break
        sleep 0.1
    done
    if [ -z "$taddr" ]; then
        echo "tier1: FAIL — m3d-serve (M3D_JOBS=$jobs) never announced its port" >&2
        kill "$tpid" 2>/dev/null || true
        exit 1
    fi
    exec 5<>"/dev/tcp/${taddr%%:*}/${taddr##*:}"
    printf '%s\n' '{"id":7100,"case":"pd_flow","quick":true,"trace":true,"params":{"activity_pct":37.5}}' >&5
    IFS= read -r treply <&5
    printf '%s\n' "$treply" >"$tmp/traced-j$jobs.line"
    printf '%s\n' '{"id":7101,"case":"shutdown"}' >&5
    IFS= read -r _ <&5 || true
    exec 5<&- 5>&-
    if ! wait "$tpid"; then
        echo "tier1: FAIL — m3d-serve (M3D_JOBS=$jobs) did not drain after the traced probe" >&2
        exit 1
    fi
done
for part in '"trace_id"' '"name":"req:pd_flow"' '"name":"pd-flow"' '"name":"place"'; do
    if ! grep -qF "$part" "$tmp/traced-j1.line"; then
        echo "tier1: FAIL — single-server traced response lacks $part:" >&2
        cat "$tmp/traced-j1.line" >&2
        exit 1
    fi
done
if ! cmp -s "$tmp/traced-j1.line" "$tmp/traced-j7.line"; then
    echo "tier1: FAIL — traced pd_flow response differs across M3D_JOBS" >&2
    diff "$tmp/traced-j1.line" "$tmp/traced-j7.line" >&2 || true
    exit 1
fi

# Fleet smoke gate: m3d-gateway supervising 3 m3d-serve replicas over a
# shared on-disk artifact tier. Asserts consistent-hash affinity, the
# cross-replica byte-identity probe, payload identity against the
# single-server run, shared-tier disk hits across replicas, transparent
# retry + respawn after a SIGKILL mid-run, and the per-replica gauge
# families on the Prometheus surface.
fleet_cache="$tmp/fleet-cache"
mkdir -p "$fleet_cache"
env -u M3D_CACHE_DIR ./target/release/m3d-gateway --addr 127.0.0.1:0 --replicas 3 \
    --workers 2 --queue-depth 64 --serve-bin ./target/release/m3d-serve \
    --cache-dir "$fleet_cache" --probe-interval-ms 100 \
    >"$tmp/gateway.out" 2>"$tmp/gateway.err" &
gateway_pid=$!
gaddr=""
for _ in $(seq 1 150); do
    gaddr="$(sed -n 's/.*"listening":"\([^"]*\)".*/\1/p' "$tmp/gateway.out")"
    [ -n "$gaddr" ] && break
    sleep 0.1
done
if [ -z "$gaddr" ]; then
    echo "tier1: FAIL — m3d-gateway never announced its port" >&2
    cat "$tmp/gateway.err" >&2
    kill "$gateway_pid" 2>/dev/null || true
    exit 1
fi
ghost="${gaddr%%:*}"; gport="${gaddr##*:}"

# One shared helper: a single request/response over /dev/tcp.
gw_request() {
    exec 4<>"/dev/tcp/$ghost/$gport"
    printf '%s\n' "$1" >&4
    IFS= read -r gw_reply <&4
    exec 4<&- 4>&-
}

# Repeated mix through the gateway: 16 identical requests compute once
# fleet-wide (consistent-hash affinity concentrates them on one
# replica), the fleet `metrics` aggregation agrees with the client
# tallies, and --expect-replicas runs the cross-replica byte-identity
# probe (one request forced through every replica, digests compared).
./target/release/m3d-loadgen --addr "$gaddr" --clients 4 --requests 4 \
    --mix repeated --expect-computed 1 --expect-replicas 3 --check-metrics >/dev/null
gw_request '{"id":9101,"case":"stats"}'
max_routed="$(printf '%s' "$gw_reply" | grep -o '"routed":[0-9]*' | cut -d: -f2 | sort -n | tail -1)"
if [ -z "$max_routed" ] || [ "$max_routed" -lt 16 ]; then
    echo "tier1: FAIL — fleet affinity broken: no replica routed all 16 repeats: $gw_reply" >&2
    exit 1
fi

# Cold mix: 12 distinct requests all compute, and the deterministic
# artifact is byte-identical to the single-server (workers=1) run — the
# fleet topology must be invisible in payloads.
./target/release/m3d-loadgen --addr "$gaddr" --clients 3 --requests 4 \
    --mix cold --expect-computed 12 --json "$tmp/fleet-cold.json" >/dev/null
if ! cmp -s "$tmp/fleet-cold.json" "$tmp/cold-w1.json"; then
    echo "tier1: FAIL — loadgen --json differs between m3d-gateway fleet and single m3d-serve" >&2
    diff "$tmp/fleet-cold.json" "$tmp/cold-w1.json" >&2 || true
    exit 1
fi

# Mixed mix exercises real dispatch breadth through the router (three
# fresh cases compute, the rest replay response caches).
./target/release/m3d-loadgen --addr "$gaddr" --clients 2 --requests 4 \
    --mix mixed --expect-computed 3 >/dev/null

# Distributed-trace gate: a traced request through the gateway answers
# with ONE stitched tree — the gateway root span, its per-attempt child,
# the replica's request span and the pd-flow sub-spans beneath it — all
# under a single trace id, and the gateway's flight recorder must hold
# the same trace for the fleet-wide `traces` admin case.
gw_request '{"id":9401,"case":"pd_flow","quick":true,"trace":true,"params":{"activity_pct":41.5}}'
for part in '"name":"gateway"' '"attempts":1' '"name":"attempt:0"' \
            '"name":"req:pd_flow"' '"name":"pd-flow"' '"name":"place"'; do
    if ! printf '%s' "$gw_reply" | grep -qF "$part"; then
        echo "tier1: FAIL — stitched fleet trace lacks $part: $gw_reply" >&2
        exit 1
    fi
done
trace_ids="$(printf '%s' "$gw_reply" | grep -o '"trace_id":"[0-9a-f]\{32\}"' | sort -u)"
if [ "$(printf '%s\n' "$trace_ids" | grep -c .)" -ne 1 ]; then
    echo "tier1: FAIL — stitched trace does not carry exactly one trace id: $gw_reply" >&2
    exit 1
fi
tid="$(printf '%s' "$trace_ids" | cut -d'"' -f4)"
gw_request "{\"id\":9402,\"case\":\"traces\",\"params\":{\"trace_id\":\"$tid\"}}"
if ! printf '%s' "$gw_reply" | grep -qF "\"trace_id\":\"$tid\""; then
    echo "tier1: FAIL — gateway flight recorder does not hold trace $tid: $gw_reply" >&2
    exit 1
fi
if ! printf '%s' "$gw_reply" | grep -qF '"name":"gateway"'; then
    echo "tier1: FAIL — recorded fleet trace lost its gateway root: $gw_reply" >&2
    exit 1
fi

# Shared artifact tier: an ingest upload computed on replica 0 must be
# a cache hit on replica 1 — only the shared M3D_CACHE_DIR can carry it
# across processes (the `replica` delivery field pins the routing).
fprobe='{"id":9201,"case":"ingest","replica":0,"params":{"source":"(edif fleetprobe (library work (cell top (view v (interface (port a (direction INPUT)) (port y (direction OUTPUT))) (contents (instance u1 (cellRef BUF_X1)) (net na (joined (portRef a) (portRef A (instanceRef u1)))) (net ny (joined (portRef Y (instanceRef u1)) (portRef y))))))) (design fleetprobe (cellRef top)))"}}'
gw_request "$fprobe"
case "$gw_reply" in
    *'"status":200'*'"cached":false'*'"replica":0'*) ;;
    *) echo "tier1: FAIL — fleet ingest upload to replica 0 did not compute: $gw_reply" >&2
       exit 1 ;;
esac
gw_request "$(printf '%s' "$fprobe" | sed 's/9201/9202/; s/"replica":0/"replica":1/')"
case "$gw_reply" in
    *'"cached":true'*'"replica":1'*) ;;
    *) echo "tier1: FAIL — replica 1 missed the shared artifact tier: $gw_reply" >&2
       exit 1 ;;
esac

# Crash gate: SIGKILL one replica while a sleep-mix run is in flight.
# Every request must still resolve exactly once (24 distinct tags, all
# computed — the gateway's transparent retry may recompute internally
# but the client sees each answer once), and the supervisor must
# respawn the replica.
gw_request '{"id":9301,"case":"stats"}'
victim_pid="$(printf '%s' "$gw_reply" | grep -o '"pid":[0-9]*' | head -1 | cut -d: -f2)"
if [ -z "$victim_pid" ]; then
    echo "tier1: FAIL — fleet stats carries no replica pid: $gw_reply" >&2
    exit 1
fi
./target/release/m3d-loadgen --addr "$gaddr" --clients 4 --requests 6 \
    --mix sleep --expect-computed 24 >/dev/null &
loadgen_pid=$!
sleep 0.15
kill -9 "$victim_pid" 2>/dev/null || true
if ! wait "$loadgen_pid"; then
    echo "tier1: FAIL — requests were lost when a replica was SIGKILLed mid-run" >&2
    exit 1
fi
respawned=""
for _ in $(seq 1 100); do
    gw_request '{"id":9302,"case":"stats"}'
    case "$gw_reply" in
        *'"replicas_up":3'*)
            case "$gw_reply" in
                *'"restarts":1'*|*'"restarts":2'*) respawned=1; break ;;
            esac ;;
    esac
    sleep 0.1
done
if [ -z "$respawned" ]; then
    echo "tier1: FAIL — SIGKILLed replica was not respawned: $gw_reply" >&2
    exit 1
fi

# Fleet Prometheus surface: per-replica gauge families and the gateway
# counters must render (loadgen validates the exposition grammar before
# writing the file), then a shutdown request must drain the whole fleet
# to exit 0.
# (No --expect-computed here: whether this replays a cache depends on
# whether the SIGKILLed replica owned the repeated key.)
./target/release/m3d-loadgen --addr "$gaddr" --clients 1 --requests 1 \
    --mix repeated --metrics-text "$tmp/fleet.prom" \
    --shutdown >/dev/null
for family in '^# TYPE fleet_replica0_queue_len gauge$' '^fleet_replica0_up 1$' \
              '^fleet_replica2_up 1$' '^gateway_routed ' '^executed ' \
              '^gateway_spans_recorded [1-9]' '^# TYPE gateway_spans_dropped counter$' \
              '^spans_recorded [1-9]'; do
    if ! grep -q "$family" "$tmp/fleet.prom"; then
        echo "tier1: FAIL — fleet metrics_text lacks $family" >&2
        cat "$tmp/fleet.prom" >&2
        exit 1
    fi
done
if ! wait "$gateway_pid"; then
    echo "tier1: FAIL — m3d-gateway did not drain its fleet and exit 0" >&2
    cat "$tmp/gateway.err" >&2
    exit 1
fi

# Retry-visibility gate: under a slow health probe, SIGKILL a replica
# and keep sending cold traced requests — the consistent hash keeps
# routing a share of them at the dead socket, so one must fail its
# first attempt and retry on another replica. The stitched trace has to
# show both attempts: attempt:0 tagged failed, attempt:1 carrying the
# replica's request subtree.
retry_cache="$tmp/retry-cache"
mkdir -p "$retry_cache"
env -u M3D_CACHE_DIR ./target/release/m3d-gateway --addr 127.0.0.1:0 --replicas 3 \
    --workers 1 --queue-depth 64 --serve-bin ./target/release/m3d-serve \
    --cache-dir "$retry_cache" --probe-interval-ms 5000 \
    >"$tmp/retry-gw.out" 2>"$tmp/retry-gw.err" &
retry_gw_pid=$!
raddr=""
for _ in $(seq 1 150); do
    raddr="$(sed -n 's/.*"listening":"\([^"]*\)".*/\1/p' "$tmp/retry-gw.out")"
    [ -n "$raddr" ] && break
    sleep 0.1
done
if [ -z "$raddr" ]; then
    echo "tier1: FAIL — retry-gate m3d-gateway never announced its port" >&2
    cat "$tmp/retry-gw.err" >&2
    kill "$retry_gw_pid" 2>/dev/null || true
    exit 1
fi
rw_request() {
    exec 6<>"/dev/tcp/${raddr%%:*}/${raddr##*:}"
    printf '%s\n' "$1" >&6
    IFS= read -r rw_reply <&6
    exec 6<&- 6>&-
}
rw_request '{"id":9501,"case":"stats"}'
victim_pid="$(printf '%s' "$rw_reply" | grep -o '"pid":[0-9]*' | head -1 | cut -d: -f2)"
if [ -z "$victim_pid" ]; then
    echo "tier1: FAIL — retry-gate stats carries no replica pid: $rw_reply" >&2
    exit 1
fi
kill -9 "$victim_pid" 2>/dev/null || true
retry_seen=""
for i in $(seq 1 60); do
    rw_request "{\"id\":$((9510 + i)),\"case\":\"sensitivity\",\"quick\":true,\"trace\":true,\"params\":{\"seed\":$((52000 + i))}}"
    case "$rw_reply" in
        *'"name":"attempt:1"'*) retry_seen=1; break ;;
    esac
done
if [ -z "$retry_seen" ]; then
    echo "tier1: FAIL — no retry became visible after 60 traced requests past a SIGKILL" >&2
    exit 1
fi
case "$rw_reply" in
    *'"attempts":2'*'"retries":1'*'"failed":1'*'"name":"attempt:1"'*'"name":"req:sensitivity"'*) ;;
    *) echo "tier1: FAIL — retry trace lacks the failed-then-won attempt pair: $rw_reply" >&2
       exit 1 ;;
esac
rw_request '{"id":9599,"case":"shutdown"}'
if ! wait "$retry_gw_pid"; then
    echo "tier1: FAIL — retry-gate m3d-gateway did not drain and exit 0" >&2
    cat "$tmp/retry-gw.err" >&2
    exit 1
fi

# Bench smoke: the flow bench's warm-vs-cold pair must run, pass its
# internal warm==cold identity assertions, and emit the warm-start
# summary artifact. Only non-timing facts are asserted — medians land in
# the JSON for humans and dashboards, never for gating.
bench_json="$tmp/BENCH_warmstart.json"
M3D_BENCH_WARMSTART_JSON="$bench_json" cargo bench -q -p m3d-bench --bench flow >"$tmp/bench.out" 2>&1
if [ ! -s "$bench_json" ]; then
    echo "tier1: FAIL — flow bench did not emit BENCH_warmstart.json" >&2
    cat "$tmp/bench.out" >&2
    exit 1
fi
for fld in '"bench": "flow_sweep_warm_vs_cold"' '"grid_points"' '"cold_ms_median"' \
           '"warm_ms_median"' '"speedup"'; do
    if ! grep -q "$fld" "$bench_json"; then
        echo "tier1: FAIL — BENCH_warmstart.json lacks $fld:" >&2
        cat "$bench_json" >&2
        exit 1
    fi
done

echo "tier1: OK"
